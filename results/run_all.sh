#!/bin/bash
# Regenerates every experiment output under results/.
set -x
cd /root/repo
B=target/release
$B/table2 > results/table2.txt 2>/dev/null
$B/fig6a > results/fig6a.txt 2>/dev/null
$B/fig6b > results/fig6b.txt 2>/dev/null
$B/table1 > results/table1.txt 2>results/table1.log
$B/cost_table > results/cost_table.txt 2>results/cost_table.log
$B/fig8 --seeds 10 > results/fig8.txt 2>results/fig8.log
$B/fig9 --seeds 10 > results/fig9.txt 2>results/fig9.log
$B/fig10 --seeds 10 > results/fig10.txt 2>results/fig10.log
$B/detection_sweep --seeds 10 > results/detection_sweep.txt 2>results/detection_sweep.log
echo ALL_DONE
# ablations appended
$B/ablations --seeds 5 > results/ablations.txt 2>results/ablations.log
echo ABLATIONS_DONE
