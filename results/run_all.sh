#!/bin/bash
# Regenerates every experiment output under results/.
#
# Fails fast: the first binary that exits nonzero aborts the script with a
# clear "FAILED at <step>" line instead of silently producing a partial
# results/ tree. Each step's stderr goes to results/<step>.log.
set -euo pipefail

cd "$(dirname "$0")/.."
B=target/release
OUT=results

if [ ! -x "$B/table2" ]; then
    echo "error: release binaries missing; run 'cargo build --release' first" >&2
    exit 1
fi

# step <name> [args...]: runs $B/<name>, stdout to results/<name>.txt,
# stderr to results/<name>.log, and reports pass/fail with timing.
step() {
    local name=$1
    shift
    local start=$SECONDS
    echo "== $name $* " >&2
    local rc=0
    "$B/$name" "$@" > "$OUT/$name.txt" 2> "$OUT/$name.log" || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "FAILED at $name (exit $rc); see $OUT/$name.log" >&2
        tail -n 20 "$OUT/$name.log" >&2 || true
        exit "$rc"
    fi
    echo "   ok: $name (${SECONDS}s total, +$((SECONDS - start))s)" >&2
}

step table2
step fig6a
step fig6b
step table1
step cost_table
step fig8 --seeds 10
step fig9 --seeds 10
step fig10 --seeds 10
step detection_sweep --seeds 10
step ablations --seeds 5
step chaos_fuzz --smoke

echo ALL_DONE
