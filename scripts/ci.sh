#!/usr/bin/env bash
# Repo CI entry point: everything must pass offline (the workspace has no
# external dependencies, so --offline is a guarantee, not an optimization).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline, whole workspace)"
# --workspace matters here too: a bare build covers only the root
# package, leaving member binaries (lint, chaos_fuzz, the figure CLIs,
# liteworp-served, liteworp-load) unbuilt for the gates below.
cargo build --release --workspace --offline

echo "==> cargo test (offline, whole workspace)"
# --workspace matters: the root manifest is both the workspace and the
# liteworp-repro package, so a bare `cargo test` would cover only the
# root package's integration tests and skip every member crate's suites
# (including the lint engine's fixture corpus).
cargo test --workspace --offline -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> lint (determinism / panic-hygiene / structure gate)"
./target/release/lint --root .

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --all-targets --offline -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline -q

echo "==> bench regression gate (runs the release benches, compares baselines)"
./scripts/bench_gate.sh

echo "==> scale smoke (10k-node wormhole run: bounds, digest, wall budget)"
./scripts/scale_smoke.sh

echo "==> chaos_fuzz smoke (fixed-seed fault-injection gate)"
./target/release/chaos_fuzz --smoke --no-cache

echo "==> resilience smoke (resume / deterministic retries / cache self-heal)"
./scripts/resilience_smoke.sh

echo "==> served smoke (daemon + load generator drain determinism)"
./scripts/served_smoke.sh

echo "==> obs smoke (daemon stats op, folded self-profile, span overhead)"
./scripts/obs_smoke.sh

echo "CI OK"
