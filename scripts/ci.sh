#!/usr/bin/env bash
# Repo CI entry point: everything must pass offline (the workspace has no
# external dependencies, so --offline is a guarantee, not an optimization).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --offline

echo "==> cargo test (offline)"
cargo test --offline -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --all-targets --offline -- -D warnings

echo "==> benches compile (offline)"
cargo build --benches --offline

echo "==> chaos_fuzz smoke (fixed-seed fault-injection gate)"
./target/release/chaos_fuzz --smoke --no-cache

echo "CI OK"
