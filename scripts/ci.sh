#!/usr/bin/env bash
# Repo CI entry point: everything must pass offline (the workspace has no
# external dependencies, so --offline is a guarantee, not an optimization).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline, whole workspace)"
# --workspace matters here too: a bare build covers only the root
# package, leaving member binaries (lint, chaos_fuzz, the figure CLIs,
# liteworp-served, liteworp-load) unbuilt for the gates below.
cargo build --release --workspace --offline

echo "==> cargo test (offline, whole workspace)"
# --workspace matters: the root manifest is both the workspace and the
# liteworp-repro package, so a bare `cargo test` would cover only the
# root package's integration tests and skip every member crate's suites
# (including the lint engine's fixture corpus).
cargo test --workspace --offline -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> lint (determinism / panic-hygiene / lock-discipline / structure gate)"
# The thread-chunked scan keeps the whole-workspace pass cheap even with
# the call-graph families; hold it to a wall-clock budget so an
# accidentally quadratic rule (or a lost parallel phase) fails CI
# instead of silently eating minutes. Override with LINT_BUDGET_SECS.
LINT_BUDGET_SECS="${LINT_BUDGET_SECS:-30}"
lint_start_ns=$(date +%s%N)
./target/release/lint --root .
lint_elapsed_ms=$(( ($(date +%s%N) - lint_start_ns) / 1000000 ))
echo "lint: whole-workspace scan in ${lint_elapsed_ms} ms (budget ${LINT_BUDGET_SECS}s)"
if [ "$lint_elapsed_ms" -gt $(( LINT_BUDGET_SECS * 1000 )) ]; then
    echo "lint: scan blew the ${LINT_BUDGET_SECS}s wall-clock budget" >&2
    exit 1
fi

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --all-targets --offline -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline -q

echo "==> bench regression gate (runs the release benches, compares baselines)"
./scripts/bench_gate.sh

echo "==> scale smoke (10k-node wormhole run: bounds, digest, wall budget)"
./scripts/scale_smoke.sh

echo "==> chaos_fuzz smoke (fixed-seed fault-injection gate)"
./target/release/chaos_fuzz --smoke --no-cache

echo "==> resilience smoke (resume / deterministic retries / cache self-heal)"
./scripts/resilience_smoke.sh

echo "==> served smoke (daemon + load generator drain determinism)"
./scripts/served_smoke.sh

echo "==> shard smoke (front + workers, kill -9 mid-sweep, digest identity)"
./scripts/shard_smoke.sh

echo "==> obs smoke (daemon stats op, folded self-profile, span overhead)"
./scripts/obs_smoke.sh

echo "CI OK"
