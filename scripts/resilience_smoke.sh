#!/usr/bin/env bash
# Failure-domain smoke for the supervised experiment engine, run against
# the release fig8 binary with a deliberately small configuration:
#
#   1. resume: journal a sweep, simulate a crash by truncating the
#      journal mid-entry, resume, and require the byte-identical digest;
#   2. deterministic retries: inject transient engine faults recovered by
#      --max-retries and require the digest of the clean sweep;
#   3. self-healing cache: flip one byte of a cache entry and require the
#      rerun to quarantine it, recompute, and reproduce the digest.
#
# Digests are compared via the `digest=<fnv64>` token of the manifest
# summary line (stderr); whole-output comparison would trip on wall-clock
# timings.
set -euo pipefail
cd "$(dirname "$0")/.."

FIG8=./target/release/fig8
SMALL=(--seeds 2 --nodes 30 --duration 200 --sample 100)
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

digest_of() {
    # Last summary line wins (the binary prints exactly one).
    grep -o 'digest=[0-9a-f]*' "$1" | tail -n 1
}

run_fig8() {
    local log=$1
    shift
    "$FIG8" "${SMALL[@]}" "$@" >/dev/null 2>"$log" || {
        echo "fig8 $* failed:" >&2
        cat "$log" >&2
        exit 1
    }
}

echo "==> baseline journaled sweep"
run_fig8 "$TMP/full.log" --no-cache --journal "$TMP/full.journal"
BASE=$(digest_of "$TMP/full.log")
[ -n "$BASE" ] || { echo "no digest in summary line" >&2; exit 1; }

echo "==> resume smoke: kill (truncated journal) + --resume"
# Keep the header plus three completed entries, then a torn partial line —
# what a kill -9 during an append leaves behind.
head -n 4 "$TMP/full.journal" > "$TMP/crash.journal"
printf '{"key":"torn' >> "$TMP/crash.journal"
run_fig8 "$TMP/resume.log" --no-cache --journal "$TMP/crash.journal" --resume
grep -q 'journal hits' "$TMP/resume.log" || {
    echo "resumed sweep replayed nothing from the journal" >&2
    cat "$TMP/resume.log" >&2
    exit 1
}
RESUMED=$(digest_of "$TMP/resume.log")
[ "$RESUMED" = "$BASE" ] || {
    echo "resume digest mismatch: $RESUMED != $BASE" >&2
    exit 1
}

echo "==> deterministic-retry smoke: transient faults + --max-retries"
run_fig8 "$TMP/faults.log" --no-cache --engine-faults 0.5 --engine-fault-seed 7 --max-retries 2
grep -q 'retried' "$TMP/faults.log" || {
    echo "no injected fault fired; the proof is vacuous" >&2
    cat "$TMP/faults.log" >&2
    exit 1
}
FAULTY=$(digest_of "$TMP/faults.log")
[ "$FAULTY" = "$BASE" ] || {
    echo "retry digest mismatch: $FAULTY != $BASE" >&2
    exit 1
}

echo "==> corrupt-cache smoke: bit flip -> quarantine + recompute"
run_fig8 "$TMP/cold.log" --cache-dir "$TMP/cache"
COLD=$(digest_of "$TMP/cold.log")
[ "$COLD" = "$BASE" ] || {
    echo "cached digest mismatch: $COLD != $BASE" >&2
    exit 1
}
ENTRY=$(find "$TMP/cache" -maxdepth 1 -name '*.json' | sort | head -n 1)
[ -n "$ENTRY" ] || { echo "no cache entries written" >&2; exit 1; }
# A NUL byte never appears in a JSON entry, so this is always corruption.
dd if=/dev/zero of="$ENTRY" bs=1 count=1 seek=5 conv=notrunc status=none
run_fig8 "$TMP/healed.log" --cache-dir "$TMP/cache"
grep -qi 'quarantin' "$TMP/healed.log" || {
    echo "corrupt entry was not quarantined" >&2
    cat "$TMP/healed.log" >&2
    exit 1
}
[ -n "$(ls -A "$TMP/cache/.quarantine" 2>/dev/null)" ] || {
    echo "quarantine directory is empty" >&2
    exit 1
}
HEALED=$(digest_of "$TMP/healed.log")
[ "$HEALED" = "$BASE" ] || {
    echo "healed digest mismatch: $HEALED != $BASE" >&2
    exit 1
}

echo "resilience smoke OK (digest $BASE)"
