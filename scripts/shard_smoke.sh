#!/usr/bin/env bash
# Shard-fabric smoke: the front's failure ladder, end to end against the
# release binaries.
#
#   1. Run the seeded load generator against a plain daemon — the
#      reference digest set.
#   2. Start a shard front with 2 workers and a zero restart budget,
#      start the same seeded load in the background, and kill -9 one
#      worker mid-sweep (pid read from the front's shards.json
#      manifest). The front must quarantine the victim, reroute its
#      orphaned requests to the survivor (or the embedded local engine),
#      and the load run must still pass — with the reference digest set,
#      byte for byte.
#   3. Require the front's stats to confess the damage: a non-empty
#      reroutes_total counter and a quarantined shard in the health
#      block.
set -euo pipefail
cd "$(dirname "$0")/.."

SERVED=./target/release/liteworp-served
LOAD=./target/release/liteworp-load
TMP=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    # The front reaps its workers on shutdown; a stray kill here only
    # matters if the front itself died mid-smoke.
    rm -rf "$TMP"
}
trap cleanup EXIT

start_served() {
    local out=$2
    "$SERVED" "${@:3}" --addr 127.0.0.1:0 --state-dir "$1" >"$out" 2>"$out.err" &
    DAEMON_PID=$!
    ADDR=""
    for _ in $(seq 1 400); do
        ADDR=$(sed -n 's/^listening on //p' "$out" | head -n 1)
        [ -n "$ADDR" ] && return 0
        kill -0 "$DAEMON_PID" 2>/dev/null || {
            echo "liteworp-served died on startup:" >&2
            cat "$out" "$out.err" >&2
            exit 1
        }
        sleep 0.05
    done
    echo "liteworp-served never announced its address" >&2
    exit 1
}

echo "==> shard smoke reference (plain daemon + seeded load)"
start_served "$TMP/state-ref" "$TMP/ref.out"
"$LOAD" --addr "$ADDR" --requests 60 --connections 4 --seed 42 \
    --cancel-fraction 0.2 --digests "$TMP/digests-ref.txt" --shutdown
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "==> shard smoke fabric (front + 2 workers, kill -9 one mid-sweep)"
start_served "$TMP/state-front" "$TMP/front.out" \
    --front --shards 2 --max-restarts 0 --worker-drainers 2 \
    --ping-interval-ms 200 --ping-timeout-ms 1000 --seed 42
"$LOAD" --addr "$ADDR" --requests 60 --connections 4 --seed 42 \
    --cancel-fraction 0.2 --digests "$TMP/digests-fabric.txt" \
    --shards 2 --stats-json "$TMP/stats.json" --shutdown &
LOAD_PID=$!

# Let the fabric take real work, then murder worker 0 mid-sweep.
sleep 1
MANIFEST="$TMP/state-front/shards.json"
[ -f "$MANIFEST" ] || { echo "front never wrote $MANIFEST" >&2; exit 1; }
VICTIM_PID=$(python3 - "$MANIFEST" <<'EOF'
import json, sys
manifest = json.load(open(sys.argv[1]))
print(manifest["shards"][0]["pid"])
EOF
)
echo "    killing worker 0 (pid $VICTIM_PID)"
kill -9 "$VICTIM_PID"

wait "$LOAD_PID" || { echo "load generator failed against the fabric" >&2; cat "$TMP/front.out.err" >&2; exit 1; }
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

[ -s "$TMP/digests-ref.txt" ] || { echo "reference run produced no digests" >&2; exit 1; }
if ! cmp -s "$TMP/digests-ref.txt" "$TMP/digests-fabric.txt"; then
    echo "fabric determinism violated — digest sets differ from the plain daemon:" >&2
    diff "$TMP/digests-ref.txt" "$TMP/digests-fabric.txt" >&2 || true
    exit 1
fi

python3 - "$TMP/stats.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
assert stats.get("role") == "front", f"stats came from a {stats.get('role')}, not a front"
reroutes = stats.get("reroutes_total", 0)
assert reroutes >= 1, f"kill -9 left no trace: reroutes_total={reroutes}"
health = [s.get("health") for s in stats.get("shards", [])]
assert "quarantined" in health, f"victim not quarantined: {health}"
print(f"    stats OK: reroutes_total={reroutes}, health={health}")
EOF

echo "shard smoke OK ($(wc -l < "$TMP/digests-fabric.txt") digests identical to the plain daemon, kill -9 absorbed)"
