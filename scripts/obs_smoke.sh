#!/usr/bin/env bash
# Observability smoke: the obs plane's three exits, end to end against
# the release binaries.
#
#   1. Daemon introspection: run the load generator against a fresh
#      daemon (with --metrics-interval on) and fetch the `stats` op via
#      --stats-json. The response must carry the documented keys and
#      nonzero drain counters.
#   2. Self-profiler: run a small fig8 with --profile-folded. The folded
#      profile must be non-empty, every frame name must be in the
#      scripts/obs_allowlist.txt span registry, and each phase's
#      inclusive time must fit inside the total job time.
#   3. Overhead: re-run the microbench suite and require the
#      span-instrumented malc workload within 5% of the uninstrumented
#      one from the very same run (the disabled-plane cost contract).
set -euo pipefail
cd "$(dirname "$0")/.."

SERVED=./target/release/liteworp-served
LOAD=./target/release/liteworp-load
FIG8=./target/release/fig8
TMP=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "==> obs smoke 1: live daemon stats via the JSONL protocol"
"$SERVED" --addr 127.0.0.1:0 --state-dir "$TMP/state" --metrics-interval 0.2 \
    >"$TMP/daemon.out" 2>"$TMP/daemon.err" &
DAEMON_PID=$!
ADDR=""
for _ in $(seq 1 200); do
    ADDR=$(sed -n 's/^listening on //p' "$TMP/daemon.out" | head -n 1)
    [ -n "$ADDR" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "daemon died on startup:" >&2
        cat "$TMP/daemon.out" "$TMP/daemon.err" >&2
        exit 1
    }
    sleep 0.05
done
[ -n "$ADDR" ] || { echo "daemon never announced its address" >&2; exit 1; }

"$LOAD" --addr "$ADDR" --requests 40 --connections 4 --seed 42 \
    --digests "$TMP/digests.txt" --stats-json "$TMP/stats.json" --shutdown || {
    echo "load generator failed" >&2
    exit 1
}
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

[ -s "$TMP/stats.json" ] || { echo "stats op wrote nothing" >&2; exit 1; }
for key in uptime_ms queue_depth drainers active_drains requests jobs \
    wal_bytes phase_latency_us metrics; do
    grep -q "\"$key\"" "$TMP/stats.json" || {
        echo "stats response missing \"$key\":" >&2
        cat "$TMP/stats.json" >&2
        exit 1
    }
done
# The drain counters must reflect the traffic just served: every distinct
# spec reached done, jobs actually executed, and the request/sweep spans
# fed the per-phase latency histograms.
if command -v python3 >/dev/null 2>&1; then
    python3 - "$TMP/stats.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
assert stats["requests"]["done"] >= 24, stats["requests"]
assert stats["jobs"]["total"] >= 24, stats["jobs"]
assert stats["phase_latency_us"]["sweep"]["count"] >= 1, stats["phase_latency_us"]
EOF
else
    # No python3: at least require a nonzero done counter in the text.
    if grep -q '"done":0[,}]' "$TMP/stats.json"; then
        echo "stats reports zero drained requests:" >&2
        cat "$TMP/stats.json" >&2
        exit 1
    fi
fi
echo "    stats OK: $(head -c 200 "$TMP/stats.json")..."

echo "==> obs smoke 2: folded self-profile from a small fig8 run"
"$FIG8" --nodes 40 --seeds 2 --duration 200 --sample 100 --no-cache \
    --profile-folded "$TMP/fig8.folded" >/dev/null 2>"$TMP/fig8.err" || {
    echo "fig8 run failed:" >&2
    cat "$TMP/fig8.err" >&2
    exit 1
}
[ -s "$TMP/fig8.folded" ] || { echo "folded profile is empty" >&2; exit 1; }

# Every frame name in the profile must be a registered span name.
awk '{sub(/ [0-9]+$/, ""); gsub(/;/, "\n"); print}' "$TMP/fig8.folded" \
    | sort -u > "$TMP/frames.txt"
if comm -23 "$TMP/frames.txt" scripts/obs_allowlist.txt | grep -q .; then
    echo "unregistered frame name(s) in the folded profile:" >&2
    comm -23 "$TMP/frames.txt" scripts/obs_allowlist.txt >&2
    exit 1
fi
echo "    frame names OK: $(paste -sd, "$TMP/frames.txt")"

# Per-phase inclusive time (prefix sums of self time) must fit inside
# the total time spent under job stacks.
awk '
    {
        count = $NF
        stack = $0
        sub(/ [0-9]+$/, "", stack)
        n = split(stack, frames, ";")
        if (frames[1] == "job") total += count
        for (i = 1; i <= n; i++) {
            prefix = frames[1]
            for (j = 2; j <= i; j++) prefix = prefix ";" frames[j]
            inclusive[prefix] += count
        }
    }
    END {
        if (total <= 0) { print "no job stacks in profile" > "/dev/stderr"; exit 1 }
        for (p in inclusive) {
            if (index(p, "job;") == 1 && inclusive[p] > total) {
                printf "phase %s inclusive %d us exceeds job total %d us\n", \
                    p, inclusive[p], total > "/dev/stderr"
                exit 1
            }
        }
        printf "    phase totals OK: job=%d us across %d stacks\n", total, NR
    }
' "$TMP/fig8.folded"

echo "==> obs smoke 3: disabled-plane overhead within 5% (same-run pair)"
LITEWORP_BENCH_DIR="$TMP/bench" cargo bench -p liteworp-bench --bench microbench \
    --offline >/dev/null 2>&1
plain=$(sed -n 's/.*"value":\([0-9.eE+-]*\).*/\1/p' "$TMP/bench/BENCH_malc_update_windowed.json")
spanned=$(sed -n 's/.*"value":\([0-9.eE+-]*\).*/\1/p' "$TMP/bench/BENCH_malc_update_windowed_spanned.json")
awk -v plain="$plain" -v spanned="$spanned" 'BEGIN {
    ratio = spanned / plain
    printf "    malc/update/windowed %.1f ns, spanned %.1f ns, ratio %.3f\n", plain, spanned, ratio
    if (ratio > 1.05) {
        print "disabled-plane span overhead exceeds 5%" > "/dev/stderr"
        exit 1
    }
}'

echo "obs smoke OK"
