#!/usr/bin/env bash
# Served-mode smoke: the daemon's drain-determinism contract, end to end
# against the release binaries.
#
#   1. Start a fresh `liteworp-served` daemon on an ephemeral port and a
#      throwaway state dir, and run the deterministic load generator
#      against it (mixed kinds, duplicate submissions, a cancel
#      fraction). The generator itself asserts: every request answered
#      `ok`, every duplicated submission deduplicated at least once,
#      every experiment drained to `done`.
#   2. Do the same against a second fresh daemon, same seed.
#   3. Require the two sorted digest files to be byte-identical: whatever
#      the socket interleaving was, the served results are a pure
#      function of the request set and seeds.
set -euo pipefail
cd "$(dirname "$0")/.."

SERVED=./target/release/liteworp-served
LOAD=./target/release/liteworp-load
TMP=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

# Starts a daemon on 127.0.0.1:0, waits for its address line, and sets
# ADDR/DAEMON_PID. The load generator's --shutdown flag stops it.
start_daemon() {
    local state_dir=$1
    local out=$2
    "$SERVED" --addr 127.0.0.1:0 --state-dir "$state_dir" >"$out" 2>"$out.err" &
    DAEMON_PID=$!
    ADDR=""
    for _ in $(seq 1 200); do
        ADDR=$(sed -n 's/^listening on //p' "$out" | head -n 1)
        [ -n "$ADDR" ] && return 0
        kill -0 "$DAEMON_PID" 2>/dev/null || {
            echo "daemon died on startup:" >&2
            cat "$out" "$out.err" >&2
            exit 1
        }
        sleep 0.05
    done
    echo "daemon never announced its address" >&2
    exit 1
}

run_load() {
    local digests=$1
    "$LOAD" --addr "$ADDR" --requests 60 --connections 4 --seed 42 \
        --cancel-fraction 0.2 --digests "$digests" --shutdown || {
        echo "load generator failed" >&2
        exit 1
    }
    wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""
}

echo "==> served smoke run A (fresh daemon + seeded load)"
start_daemon "$TMP/state-a" "$TMP/daemon-a.out"
run_load "$TMP/digests-a.txt"

echo "==> served smoke run B (second fresh daemon, same seed)"
start_daemon "$TMP/state-b" "$TMP/daemon-b.out"
run_load "$TMP/digests-b.txt"

[ -s "$TMP/digests-a.txt" ] || { echo "run A produced no digests" >&2; exit 1; }
if ! cmp -s "$TMP/digests-a.txt" "$TMP/digests-b.txt"; then
    echo "drain determinism violated — digest sets differ:" >&2
    diff "$TMP/digests-a.txt" "$TMP/digests-b.txt" >&2 || true
    exit 1
fi

echo "served smoke OK ($(wc -l < "$TMP/digests-a.txt") identical digests)"
