#!/usr/bin/env bash
# Benchmark regression gate.
#
# Re-runs the release benchmark suite into a temporary LITEWORP_BENCH_DIR
# and compares every committed baseline record under
# crates/bench/baseline/BENCH_*.json against the fresh measurement:
#
#   fresh_value <= baseline_value * BENCH_GATE_TOLERANCE
#
# The tolerance band (default 5x) is deliberately loose: CI machines and
# developer laptops differ wildly, and this gate exists to catch
# order-of-magnitude regressions (an accidentally quadratic hot path, a
# lost cache), not percent-level drift. Tighten locally with e.g.
# BENCH_GATE_TOLERANCE=1.5 when hunting a specific regression.
#
# The gate also fails when a baseline record has no fresh counterpart
# (a bench was deleted or renamed without refreshing the baseline) and
# when a fresh record has no baseline (a new bench shipped without
# committing its baseline: rerun with
# LITEWORP_BENCH_DIR=$PWD/crates/bench/baseline — an absolute path,
# because cargo runs bench binaries from the package directory — and
# commit the result).
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_GATE_TOLERANCE:-5.0}"
BASELINE_DIR="crates/bench/baseline"
FRESH_DIR="$(mktemp -d)"
trap 'rm -rf "$FRESH_DIR"' EXIT

if ! ls "$BASELINE_DIR"/BENCH_*.json >/dev/null 2>&1; then
    echo "bench gate: no baselines in $BASELINE_DIR — generate them with:"
    echo "  LITEWORP_BENCH_DIR=\$PWD/$BASELINE_DIR cargo bench -p liteworp-bench --offline"
    exit 1
fi

echo "bench gate: running release benches (tolerance ${TOLERANCE}x)"
LITEWORP_BENCH_DIR="$FRESH_DIR" cargo bench -p liteworp-bench --offline

# Records are single-line flat JSON objects written by the std-only
# timing harness; "value" is the headline number (ns/iter or mean ms).
extract_value() {
    sed -n 's/.*"value":\([0-9.eE+-]*\).*/\1/p' "$1"
}

fail=0
checked=0
for baseline in "$BASELINE_DIR"/BENCH_*.json; do
    name="$(basename "$baseline")"
    fresh="$FRESH_DIR/$name"
    if [ ! -f "$fresh" ]; then
        echo "bench gate: FAIL $name — baseline has no fresh record (bench deleted or renamed?)"
        fail=1
        continue
    fi
    base_value="$(extract_value "$baseline")"
    fresh_value="$(extract_value "$fresh")"
    if [ -z "$base_value" ] || [ -z "$fresh_value" ]; then
        echo "bench gate: FAIL $name — cannot parse 'value' (baseline='$base_value' fresh='$fresh_value')"
        fail=1
        continue
    fi
    checked=$((checked + 1))
    if awk -v fresh="$fresh_value" -v base="$base_value" -v tol="$TOLERANCE" \
        'BEGIN { exit !(fresh <= base * tol) }'; then
        ratio="$(awk -v f="$fresh_value" -v b="$base_value" 'BEGIN { printf "%.2f", f / b }')"
        echo "bench gate: ok   $name  (${ratio}x of baseline)"
    else
        echo "bench gate: FAIL $name — fresh $fresh_value vs baseline $base_value exceeds ${TOLERANCE}x"
        fail=1
    fi
done

for fresh in "$FRESH_DIR"/BENCH_*.json; do
    name="$(basename "$fresh")"
    if [ ! -f "$BASELINE_DIR/$name" ]; then
        echo "bench gate: FAIL $name — new bench has no committed baseline; regenerate $BASELINE_DIR"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "bench gate: FAILED"
    exit 1
fi
echo "bench gate: OK (${checked} benches within ${TOLERANCE}x of baseline)"
