#!/usr/bin/env bash
# Scale smoke: one 10 000-node wormhole run (scale_sweep --smoke) under a
# wall-clock budget, digest-checked.
#
# Three failure modes are gated here:
#
#   * Correctness at scale — scale_sweep itself exits nonzero when the
#     simulated detection rate or the measured guard coverage violates
#     the closed-form CI bounds.
#   * Determinism at scale — the runner's order-sensitive results digest
#     over the seed outcomes must equal the pinned value below; any
#     divergence in the spatially indexed simulator (grid query order, a
#     lost (time, seq) tie-break) changes it.
#   * Asymptotics — the run must finish within SCALE_SMOKE_BUDGET_SECS
#     (default 120 s; ~7 s on the reference machine). An accidentally
#     quadratic hot path turns a 10⁴-node run from seconds into minutes,
#     which this budget catches long before the 10⁵ acceptance run would.
#
# When a simulator behavior change is intentional, re-pin: run
# `./target/release/scale_sweep --smoke --no-cache`, copy the digest from
# the "runner:" line, and update PINNED_DIGEST.
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET="${SCALE_SMOKE_BUDGET_SECS:-120}"
PINNED_DIGEST="31bb22e637c95e38"

cargo build --release --offline -q -p liteworp-bench --bin scale_sweep

SECONDS=0
out="$(./target/release/scale_sweep --smoke --no-cache 2>&1)" || {
    printf '%s\n' "$out"
    echo "scale smoke: FAIL — scale_sweep exited nonzero (closed-form bound violation or crash)"
    exit 1
}
elapsed="$SECONDS"
printf '%s\n' "$out"

digest="$(printf '%s\n' "$out" | sed -n 's/.*digest=\([0-9a-f]\{16\}\).*/\1/p' | head -n 1)"
if [ -z "$digest" ]; then
    echo "scale smoke: FAIL — no results digest in output"
    exit 1
fi
if [ "$digest" != "$PINNED_DIGEST" ]; then
    echo "scale smoke: FAIL — results digest $digest != pinned $PINNED_DIGEST"
    echo "  (simulator behavior changed at scale; if intentional, re-pin per the header comment)"
    exit 1
fi

if [ "$elapsed" -gt "$BUDGET" ]; then
    echo "scale smoke: FAIL — ${elapsed}s exceeds the ${BUDGET}s budget"
    exit 1
fi

echo "scale smoke: OK (digest $digest, ${elapsed}s within ${BUDGET}s budget)"
