//! Incremental deployment (Section 7): a node deployed long after the
//! network boots runs the HELLO / reply / announce handshake plus a
//! `ListRequest`, acquires full two-hop knowledge, and becomes a routable
//! member of the protected network.

use liteworp::types::NodeId as CoreId;
use liteworp_netsim::field::{Field, NodeId as SimId, Position};
use liteworp_netsim::prelude::{RadioConfig, SimDuration, SimTime, Simulator};
use liteworp_netsim::rng::Pcg32;
use liteworp_routing::bootstrap::preload_liteworp;
use liteworp_routing::node::ProtocolNode;
use liteworp_routing::params::{DiscoveryMode, NodeParams};
use liteworp_routing::Packet;

/// Builds a connected 20-node field plus one extra position (the joiner)
/// placed next to node 0. Returns `(veterans_only, full)` so the veterans
/// can be bootstrapped without any knowledge of the joiner.
fn field_with_joiner() -> (Field, Field) {
    let mut rng = Pcg32::seed_from_u64(71);
    let base = Field::connected_with_average_neighbors(20, 8.0, 30.0, 200, &mut rng)
        .expect("connected deployment");
    let mut positions: Vec<Position> = base.positions().to_vec();
    let anchor = positions[0];
    let side = base.side();
    positions.push(Position::new(
        (anchor.x + 12.0).min(side),
        (anchor.y + 6.0).min(side),
    ));
    (base, Field::from_positions(side, 30.0, positions))
}

#[test]
fn late_joiner_builds_two_hop_tables_and_routes() {
    let (veterans_field, field) = field_with_joiner();
    let nodes = field.len();
    let joiner = CoreId(nodes as u32 - 1);

    let params = NodeParams {
        total_nodes: nodes as u32,
        data_interval_mean: None, // keep the channel quiet for clarity
        ..NodeParams::default()
    };
    let mut sim = Simulator::<Packet>::new(field, RadioConfig::default(), 71);
    for i in 0..nodes {
        let id = CoreId(i as u32);
        let mut node = if id == joiner {
            ProtocolNode::new(
                id,
                NodeParams {
                    discovery: DiscoveryMode::LateJoin {
                        collect: SimDuration::from_secs(2),
                    },
                    ..params.clone()
                },
            )
        } else {
            ProtocolNode::new(id, params.clone())
        };
        if id != joiner {
            // The established network was bootstrapped at deployment —
            // from the veterans-only geometry, so nobody knows the joiner
            // yet (it was not there at T_CT).
            let lw = node.liteworp_mut().expect("protected");
            preload_liteworp(lw, SimId(i as u32), &veterans_field);
        }
        sim.push_node(Box::new(node));
    }
    // The joiner arrives at t = 100 s.
    sim.set_start_time(SimId(joiner.0), SimTime::from_secs_f64(100.0));
    sim.run_until(SimTime::from_secs_f64(120.0));

    // The joiner discovered its real neighbors...
    let truth: Vec<CoreId> = sim
        .field()
        .in_range_of(SimId(joiner.0))
        .into_iter()
        .map(|n| CoreId(n.0))
        .collect();
    assert!(!truth.is_empty(), "joiner placed next to node 0");
    let jn: &ProtocolNode = sim
        .logic(SimId(joiner.0))
        .as_any()
        .downcast_ref()
        .expect("protocol node");
    let table = jn.liteworp().expect("protected").table();
    let discovered: Vec<CoreId> = table.active_neighbors().collect();
    assert!(
        !discovered.is_empty(),
        "joiner discovered nothing: {discovered:?}"
    );
    for n in &discovered {
        assert!(truth.contains(n), "spurious neighbor {n}");
    }
    // ...and, thanks to the ListRequest, their lists too (second hop).
    let with_lists = discovered
        .iter()
        .filter(|n| table.neighbor_list_of(**n).is_some())
        .count();
    assert!(
        with_lists > 0,
        "no re-announced lists received by the joiner"
    );
    // The veterans adopted the joiner as a neighbor.
    let adopted = truth
        .iter()
        .filter(|&&n| {
            let v: &ProtocolNode = sim.logic(SimId(n.0)).as_any().downcast_ref().unwrap();
            v.liteworp().unwrap().table().is_active_neighbor(joiner)
        })
        .count();
    assert!(adopted > 0, "no veteran adopted the joiner");
}

#[test]
fn list_request_from_a_stranger_is_ignored() {
    use liteworp::discovery::Discovery;
    use liteworp::keys::KeyStore;
    use liteworp::neighbor::NeighborTable;

    let disc = Discovery::new(KeyStore::new(7, CoreId(0)));
    let mut table = NeighborTable::new(CoreId(0));
    table.add_neighbor(CoreId(1));
    // Node 9 never completed the handshake: no list for it.
    assert!(disc.on_list_request(&table, CoreId(9)).is_none());
    // A verified neighbor gets a unicast re-announcement.
    assert!(disc.on_list_request(&table, CoreId(1)).is_some());
}
