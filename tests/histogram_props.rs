//! Property tests for `liteworp_telemetry::Histogram` under deterministic
//! random workloads: merge is associative and commutative, and quantiles
//! are monotone in `q` and bounded by the observed min/max.

use liteworp_runner::{Pcg32, Rng};
use liteworp_telemetry::Histogram;

/// A histogram of `n` samples drawn from a seeded mix of scales, so every
/// power-of-two bucket range gets traffic.
fn random_hist(rng: &mut Pcg32, n: usize) -> Histogram {
    let mut h = Histogram::default();
    for _ in 0..n {
        let magnitude = rng.gen_range(0u32..40);
        h.record(rng.gen_range(0u64..=(1u64 << magnitude)));
    }
    h
}

#[test]
fn merge_is_commutative() {
    let mut rng = Pcg32::seed_from_u64(81);
    for trial in 0..50 {
        let a = random_hist(&mut rng, 1 + trial % 200);
        let b = random_hist(&mut rng, 1 + (trial * 7) % 200);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "trial {trial}: a.merge(b) != b.merge(a)");
    }
}

#[test]
fn merge_is_associative() {
    let mut rng = Pcg32::seed_from_u64(82);
    for trial in 0..50 {
        let a = random_hist(&mut rng, 1 + trial % 150);
        let b = random_hist(&mut rng, 1 + (trial * 3) % 150);
        let c = random_hist(&mut rng, 1 + (trial * 11) % 150);
        // (a ⊔ b) ⊔ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊔ (b ⊔ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "trial {trial}: merge is not associative");
    }
}

#[test]
fn merge_with_empty_is_identity() {
    let mut rng = Pcg32::seed_from_u64(83);
    for trial in 0..20 {
        let a = random_hist(&mut rng, 1 + trial * 13);
        let mut merged = a.clone();
        merged.merge(&Histogram::default());
        assert_eq!(merged, a, "trial {trial}: merging empty changed state");
        let mut from_empty = Histogram::default();
        from_empty.merge(&a);
        assert_eq!(from_empty, a, "trial {trial}: empty.merge(a) != a");
    }
}

#[test]
fn quantiles_are_monotone_and_bounded() {
    let mut rng = Pcg32::seed_from_u64(84);
    for trial in 0..50 {
        let h = random_hist(&mut rng, 1 + trial * 17);
        let (min, max) = (h.min().unwrap(), h.max().unwrap());
        let mut prev = 0u64;
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let v = h.quantile(q).unwrap();
            assert!(
                v >= prev,
                "trial {trial}: quantile({q}) = {v} < quantile at previous step {prev}"
            );
            assert!(
                (min..=max).contains(&v),
                "trial {trial}: quantile({q}) = {v} outside observed [{min}, {max}]"
            );
            prev = v;
        }
        assert_eq!(h.quantile(1.0), Some(max), "trial {trial}: q=1 is the max");
    }
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let h = Histogram::default();
    assert_eq!(h.quantile(0.5), None);
    assert_eq!(h.min(), None);
    assert_eq!(h.max(), None);
}
