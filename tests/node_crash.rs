//! Fail-stop behavior: a relay that silently dies mid-run.
//!
//! A crashed node looks exactly like a data/control blackhole to its
//! guards, so LITEWORP revokes it through drop detection — which is the
//! *correct* outcome (a dead relay should not stay in anyone's routing
//! state), and routing recovers around it.

use liteworp::types::NodeId as CoreId;
use liteworp_netsim::field::NodeId as SimId;
use liteworp_netsim::prelude::{Context, Frame, NodeLogic, SimTime};
use liteworp_routing::node::ProtocolNode;
use liteworp_routing::Packet;
use std::any::Any;

/// Wraps an honest node; after `dies_at` it neither processes nor sends
/// anything (fail-stop).
struct CrashingNode {
    inner: ProtocolNode,
    dies_at: SimTime,
}

impl NodeLogic<Packet> for CrashingNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        self.inner.handle_start(ctx);
    }
    fn on_frame(&mut self, ctx: &mut Context<'_, Packet>, frame: &Frame<Packet>) {
        if ctx.now() < self.dies_at {
            self.inner.handle_frame(ctx, frame);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Packet>, token: u64) {
        if ctx.now() < self.dies_at {
            self.inner.handle_timer(ctx, token);
        }
    }
    fn on_collision(&mut self, ctx: &mut Context<'_, Packet>) {
        if ctx.now() < self.dies_at {
            self.inner.handle_collision(ctx);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn network_survives_a_relay_crash() {
    use liteworp_netsim::field::Field;
    use liteworp_netsim::prelude::{RadioConfig, SimDuration, Simulator};
    use liteworp_netsim::rng::Pcg32;
    use liteworp_routing::bootstrap::preload_liteworp;
    use liteworp_routing::params::NodeParams;

    let mut rng = Pcg32::seed_from_u64(81);
    let nodes = 40usize;
    let field = Field::connected_with_average_neighbors(nodes, 8.0, 30.0, 200, &mut rng)
        .expect("connected deployment");
    // Crash the best-connected node (worst case for routing).
    let crash_victim = (0..nodes as u32)
        .max_by_key(|&i| field.in_range_of(SimId(i)).len())
        .expect("non-empty field");
    let params = NodeParams {
        total_nodes: nodes as u32,
        ..NodeParams::default()
    };
    let mut sim = Simulator::<Packet>::new(field, RadioConfig::default(), 81);
    for i in 0..nodes as u32 {
        let mut inner = ProtocolNode::new(CoreId(i), params.clone());
        preload_liteworp(inner.liteworp_mut().unwrap(), SimId(i), sim.field());
        if i == crash_victim {
            sim.push_node(Box::new(CrashingNode {
                inner,
                dies_at: SimTime::from_secs_f64(200.0),
            }));
        } else {
            sim.push_node(Box::new(inner));
        }
        let _ = SimDuration::ZERO;
    }
    sim.run_until(SimTime::from_secs_f64(800.0));

    // Traffic keeps flowing after the crash.
    let sent = sim.metrics().get("data_sent");
    let delivered = sim.metrics().get("data_delivered");
    assert!(
        delivered as f64 > 0.5 * sent as f64,
        "delivery collapsed after the crash: {delivered}/{sent}"
    );
    // The dead node is the only one anyone revoked (drop detection doing
    // its job), and no *live* node was isolated.
    for iso in sim.trace().isolations() {
        assert_eq!(
            iso.suspect.0, crash_victim,
            "live node {} was isolated after the crash",
            iso.suspect
        );
    }
}
