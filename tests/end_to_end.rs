//! End-to-end reproduction of the paper's headline claims on a mid-size
//! network: the wormhole devastates the unprotected baseline, while
//! LITEWORP detects it, isolates the colluders at every honest neighbor,
//! and caps the damage.

use liteworp_bench::Scenario;

fn scenario(protected: bool, seed: u64) -> Scenario {
    Scenario {
        nodes: 50,
        malicious: 2,
        protected,
        seed,
        ..Scenario::default()
    }
}

#[test]
fn baseline_wormhole_attracts_routes_and_drops_data() {
    let mut run = scenario(false, 21).build();
    run.run_until_secs(600.0);
    let (total, bad) = run.route_counts();
    assert!(total > 100, "routing should be functional: {total}");
    assert!(
        bad as f64 / total as f64 > 0.1,
        "the wormhole should attract a sizable route share: {bad}/{total}"
    );
    assert!(
        run.wormhole_dropped() > 100,
        "dropped only {}",
        run.wormhole_dropped()
    );
    // And nobody notices: the baseline has no detection machinery.
    assert_eq!(run.sim().trace().isolations().count(), 0);
}

#[test]
fn liteworp_detects_isolates_and_caps_damage() {
    let mut base = scenario(false, 21).build();
    let mut prot = scenario(true, 21).build();
    base.run_until_secs(600.0);
    prot.run_until_secs(600.0);

    // 100% detection.
    assert!(prot.all_detected(), "colluders not detected");
    // Complete isolation by every honest neighbor, reasonably fast.
    let latency = prot
        .isolation_latency_secs()
        .expect("isolation should complete");
    assert!(latency < 300.0, "isolation took {latency} s");
    // Damage an order of magnitude below baseline.
    assert!(
        (prot.wormhole_dropped() as f64) < 0.3 * base.wormhole_dropped() as f64,
        "protected {} vs baseline {}",
        prot.wormhole_dropped(),
        base.wormhole_dropped()
    );
    // No honest node is ever isolated.
    let malicious: Vec<u32> = prot.malicious().iter().map(|m| m.0).collect();
    for iso in prot.sim().trace().isolations() {
        assert!(
            malicious.contains(&iso.suspect.0),
            "honest node {} was falsely isolated",
            iso.suspect
        );
    }
}

#[test]
fn drops_plateau_after_isolation_but_grow_in_baseline() {
    let mut base = scenario(false, 22).build();
    let mut prot = scenario(true, 22).build();
    // Sample cumulative drops at two late instants.
    base.run_until_secs(600.0);
    prot.run_until_secs(600.0);
    let (b1, p1) = (base.wormhole_dropped(), prot.wormhole_dropped());
    base.run_until_secs(1200.0);
    prot.run_until_secs(1200.0);
    let (b2, p2) = (base.wormhole_dropped(), prot.wormhole_dropped());
    assert!(b2 > b1, "baseline drops should keep growing: {b1} -> {b2}");
    let prot_growth = p2 - p1;
    let base_growth = b2 - b1;
    assert!(
        (prot_growth as f64) < 0.2 * base_growth as f64,
        "protected drops should have flattened: +{prot_growth} vs baseline +{base_growth}"
    );
}

#[test]
fn traffic_keeps_flowing_under_protection() {
    let mut run = scenario(true, 23).build();
    run.run_until_secs(600.0);
    let delivered = run.data_delivered() as f64 / run.data_sent().max(1) as f64;
    assert!(
        delivered > 0.5,
        "delivery collapsed under protection: {delivered:.2}"
    );
}

#[test]
fn four_colluders_are_all_detected_and_isolated() {
    // The paper's heavier case (M = 4, Figures 8 and 9): every endpoint of
    // the multi-party wormhole is caught.
    let mut run = Scenario {
        nodes: 60,
        malicious: 4,
        protected: true,
        seed: 26,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(800.0);
    assert_eq!(run.malicious().len(), 4);
    assert!(run.all_detected(), "all four colluders must be detected");
    assert!(
        run.isolation_latency_secs().is_some(),
        "isolation should complete for all four"
    );
    let malicious: Vec<u32> = run.malicious().iter().map(|m| m.0).collect();
    for iso in run.sim().trace().isolations() {
        assert!(
            malicious.contains(&iso.suspect.0),
            "honest victim {}",
            iso.suspect
        );
    }
}

#[test]
fn data_plane_monitoring_stays_clean_without_attackers() {
    // The monitor-data extension watches every data hop; in an honest
    // network it must not manufacture accusations.
    use liteworp::config::Config;
    let mut run = Scenario {
        nodes: 40,
        malicious: 0,
        protected: true,
        seed: 25,
        liteworp: Config {
            monitor_data: true,
            ..Config::default()
        },
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(600.0);
    assert_eq!(
        run.sim().trace().isolations().count(),
        0,
        "data-plane monitoring isolated an honest node"
    );
    assert!(run.data_delivered() > 0);
}

#[test]
fn the_cure_is_not_worse_than_the_disease() {
    // With no attackers at all, LITEWORP must not degrade the network:
    // no isolations, delivery comparable to the baseline.
    let clean = |protected| Scenario {
        nodes: 50,
        malicious: 0,
        protected,
        seed: 24,
        ..Scenario::default()
    };
    let mut base = clean(false).build();
    let mut prot = clean(true).build();
    base.run_until_secs(600.0);
    prot.run_until_secs(600.0);
    assert_eq!(prot.sim().trace().isolations().count(), 0);
    let base_rate = base.data_delivered() as f64 / base.data_sent().max(1) as f64;
    let prot_rate = prot.data_delivered() as f64 / prot.data_sent().max(1) as f64;
    assert!(
        prot_rate > base_rate - 0.15,
        "protection cost too high: {prot_rate:.2} vs {base_rate:.2}"
    );
}
