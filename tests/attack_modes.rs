//! Integration coverage of every attack mode in the Table 1 taxonomy.

use liteworp::types::NodeId;
use liteworp_bench::{Scenario, ScenarioAttack};

fn total_rejected(run: &liteworp_bench::ScenarioRun, nodes: u32) -> u64 {
    (0..nodes)
        .map(|i| run.protocol_node(NodeId(i)).stats().frames_rejected)
        .sum()
}

#[test]
fn encapsulation_wormhole_is_detected() {
    // Mode 1: tunnel with multihop latency; hop count still lies.
    let mut run = Scenario {
        nodes: 40,
        malicious: 2,
        protected: true,
        seed: 31,
        tunnel_latency: 0.08,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(400.0);
    assert!(run.all_detected(), "encapsulation colluders undetected");
}

#[test]
fn out_of_band_wormhole_is_detected_and_beaten_vs_baseline() {
    // Mode 2: instantaneous tunnel (the paper's main simulated mode).
    let build = |protected| {
        Scenario {
            nodes: 40,
            malicious: 2,
            protected,
            seed: 32,
            ..Scenario::default()
        }
        .build()
    };
    let mut base = build(false);
    let mut prot = build(true);
    base.run_until_secs(500.0);
    prot.run_until_secs(500.0);
    assert!(prot.all_detected());
    assert!(prot.wormhole_dropped() < base.wormhole_dropped());
}

#[test]
fn high_power_frames_are_rejected_and_no_fake_links_form() {
    // Mode 3.
    let mut run = Scenario {
        nodes: 40,
        malicious: 1,
        protected: true,
        seed: 33,
        attack: ScenarioAttack::HighPower(3.0),
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(400.0);
    assert!(
        total_rejected(&run, 40) > 0,
        "out-of-range frames should be rejected"
    );
    assert_eq!(run.fake_link_routes(), 0, "no fake-link route may form");
}

#[test]
fn high_power_fools_the_unprotected_baseline() {
    // Without neighbor checks the boosted requests are accepted.
    let mut run = Scenario {
        nodes: 40,
        malicious: 1,
        protected: false,
        seed: 33,
        attack: ScenarioAttack::HighPower(3.0),
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(400.0);
    assert!(
        run.sim().metrics().get("highpower_requests") > 0,
        "the attack never fired"
    );
    // Baseline receivers accept the long-range copies (no rejection
    // machinery exists at all).
    assert_eq!(total_rejected(&run, 40), 0);
}

#[test]
fn relay_attack_is_neutralized_by_neighbor_lists() {
    // Mode 4.
    let mut run = Scenario {
        nodes: 40,
        malicious: 1,
        protected: true,
        seed: 34,
        attack: ScenarioAttack::Relay,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(400.0);
    assert!(run.sim().metrics().get("relay_retransmissions") > 0);
    assert!(
        total_rejected(&run, 40) > 0,
        "relayed frames should be rejected"
    );
    assert_eq!(run.fake_link_routes(), 0);
}

#[test]
fn relay_attack_creates_fake_links_in_the_baseline() {
    let mut run = Scenario {
        nodes: 40,
        malicious: 1,
        protected: false,
        seed: 34,
        attack: ScenarioAttack::Relay,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(400.0);
    assert!(
        run.fake_link_routes() > 0,
        "the baseline should build routes over relayed (fake) links"
    );
}

#[test]
fn rushing_attack_slips_past_liteworp() {
    // Mode 5: the documented gap.
    let mut run = Scenario {
        nodes: 40,
        malicious: 1,
        protected: true,
        seed: 35,
        attack: ScenarioAttack::Rushing { drop_data: true },
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(400.0);
    assert!(
        run.sim().metrics().get("rushed_requests") > 0,
        "the rusher never rushed"
    );
    assert!(
        run.sim().metrics().get("rushing_dropped") > 0,
        "the rusher attracted no data"
    );
    assert!(
        !run.all_detected(),
        "LITEWORP should NOT detect protocol deviation (paper 4.2.3)"
    );
}

#[test]
fn smart_reply_dodges_drop_detection_but_not_fabrication() {
    // The paper's "smarter M2" forwards tunneled replies through the slow
    // legitimate path too, so reply-drop detection never fires — but its
    // forged rebroadcasts still convict it.
    let mut run = Scenario {
        nodes: 40,
        malicious: 2,
        protected: true,
        seed: 39,
        smart_reply: true,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(500.0);
    assert!(
        run.all_detected(),
        "fabrication detection must still catch smart-reply colluders"
    );
}

#[test]
fn data_plane_monitoring_catches_the_rushing_blackhole() {
    // LITEWORP proper cannot detect the rusher (its forwards are genuine,
    // and data drops are invisible to control-plane monitoring). The
    // data-plane extension arms watch entries for data packets too, so
    // the swallowed data convicts it.
    use liteworp::config::Config;
    let build = |monitor_data| {
        Scenario {
            nodes: 40,
            malicious: 1,
            protected: true,
            seed: 38,
            attack: ScenarioAttack::Rushing { drop_data: true },
            liteworp: Config {
                monitor_data,
                ..Config::default()
            },
            ..Scenario::default()
        }
        .build()
    };
    let mut plain = build(false);
    plain.run_until_secs(500.0);
    assert!(
        plain.sim().metrics().get("rushing_dropped") > 0,
        "the rusher must attract and drop data for the comparison to mean anything"
    );
    assert!(!plain.all_detected(), "control-plane-only must miss it");

    let mut extended = build(true);
    extended.run_until_secs(500.0);
    assert!(
        extended.sim().metrics().get("rushing_dropped") > 0,
        "rusher inactive in the extended run"
    );
    assert!(
        extended.all_detected(),
        "data-plane monitoring should convict the blackhole via drop detection"
    );
}

#[test]
fn fastest_path_routing_blunts_encapsulation() {
    // The Section 3.1 remark: ARAN-style fastest-path routing takes the
    // first reply, so an encapsulation tunnel with real multihop latency
    // loses the race it would otherwise win on hop count.
    use liteworp_routing::params::RouteSelection;
    // Aggregated over a few topologies: any single deployment is noisy
    // (the tunnel endpoints may land where the race barely matters).
    let run = |selection, seed| {
        let mut run = Scenario {
            nodes: 40,
            malicious: 2,
            protected: false, // isolate the routing-policy effect
            seed,
            tunnel_latency: 0.25, // slow encapsulation tunnel
            route_selection: selection,
            ..Scenario::default()
        }
        .build();
        run.run_until_secs(500.0);
        run.route_counts()
    };
    let frac = |selection| {
        let (total, bad) = [40u64, 41, 56]
            .iter()
            .map(|&seed| run(selection, seed))
            .fold((0u64, 0u64), |(t, b), (total, bad)| (t + total, b + bad));
        bad as f64 / total.max(1) as f64
    };
    let fastest = frac(RouteSelection::FirstReply);
    let shortest = frac(RouteSelection::ShortestHops);
    assert!(
        fastest < shortest,
        "fastest-path should blunt the slow tunnel: {fastest:.3} vs {shortest:.3}"
    );
}
