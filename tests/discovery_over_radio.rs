//! Message-level neighbor discovery integration: the HELLO / reply /
//! announce exchange running over the simulated radio, with no oracle
//! preloading — and LITEWORP still catching a wormhole on the tables it
//! builds itself.

use liteworp::types::NodeId as CoreId;
use liteworp_attacks::wormhole::{ForgeStrategy, WormholeConfig, WormholeNode};
use liteworp_netsim::field::{Field, NodeId as SimId};
use liteworp_netsim::prelude::{RadioConfig, SimDuration, SimTime, Simulator};
use liteworp_netsim::rng::Pcg32;
use liteworp_routing::node::ProtocolNode;
use liteworp_routing::params::{DiscoveryMode, NodeParams};
use liteworp_routing::Packet;

fn message_params(nodes: u32) -> NodeParams {
    NodeParams {
        total_nodes: nodes,
        discovery: DiscoveryMode::Messages {
            collect: SimDuration::from_secs(2),
        },
        ..NodeParams::default()
    }
}

#[test]
fn discovered_tables_match_geometry() {
    let mut rng = Pcg32::seed_from_u64(41);
    let nodes = 25;
    let field = Field::connected_with_average_neighbors(nodes, 8.0, 30.0, 200, &mut rng)
        .expect("connected deployment");
    let mut params = message_params(nodes as u32);
    params.data_interval_mean = None; // discovery only
    let mut sim = Simulator::<Packet>::new(field, RadioConfig::default(), 41);
    for i in 0..nodes {
        sim.push_node(Box::new(ProtocolNode::new(
            CoreId(i as u32),
            params.clone(),
        )));
    }
    sim.stagger_starts(SimDuration::from_secs(3));
    sim.run_until(SimTime::from_secs_f64(10.0));

    let mut discovered_links = 0usize;
    let mut true_links = 0usize;
    let mut spurious = 0usize;
    for i in 0..nodes as u32 {
        let truth: Vec<CoreId> = sim
            .field()
            .in_range_of(SimId(i))
            .into_iter()
            .map(|n| CoreId(n.0))
            .collect();
        let node: &ProtocolNode = sim.logic(SimId(i)).as_any().downcast_ref().unwrap();
        let table = node.liteworp().unwrap().table();
        true_links += truth.len();
        for n in table.active_neighbors() {
            if truth.contains(&n) {
                discovered_links += 1;
            } else {
                spurious += 1;
            }
        }
    }
    assert_eq!(spurious, 0, "discovery must never invent a neighbor");
    let completeness = discovered_links as f64 / true_links as f64;
    assert!(
        completeness > 0.85,
        "only {completeness:.2} of true links discovered"
    );
}

#[test]
fn wormhole_detected_on_self_built_tables() {
    // Full pipeline: message discovery, traffic, out-of-band wormhole.
    let mut rng = Pcg32::seed_from_u64(43);
    let nodes = 30usize;
    let field = Field::connected_with_average_neighbors(nodes, 8.0, 30.0, 200, &mut rng)
        .expect("connected deployment");
    // Colluders: picked manually, far apart.
    let (m1, m2) = pick_far_pair(&field).expect("far pair");
    let params = message_params(nodes as u32);
    let mut sim = Simulator::<Packet>::new(field, RadioConfig::default(), 43);
    for i in 0..nodes {
        let id = CoreId(i as u32);
        let inner = ProtocolNode::new(id, params.clone());
        if id == m1 || id == m2 {
            let attack = WormholeConfig {
                colluders: vec![if id == m1 { m2 } else { m1 }],
                active_from: SimTime::from_secs_f64(60.0),
                tunnel_latency: SimDuration::ZERO,
                forge: ForgeStrategy::RotatingNeighbors,
                smart_reply: false,
            };
            sim.push_node(Box::new(WormholeNode::new(inner, attack)));
        } else {
            sim.push_node(Box::new(inner));
        }
    }
    sim.stagger_starts(SimDuration::from_secs(3));
    sim.run_until(SimTime::from_secs_f64(500.0));

    let detected_m1 = sim.trace().isolations().any(|i| i.suspect.0 == m1.0);
    let detected_m2 = sim.trace().isolations().any(|i| i.suspect.0 == m2.0);
    assert!(
        detected_m1 || detected_m2,
        "no colluder detected on self-built tables; trace: {:?}",
        sim.trace().events().take(20).collect::<Vec<_>>()
    );
}

fn pick_far_pair(field: &Field) -> Option<(CoreId, CoreId)> {
    for a in 0..field.len() as u32 {
        for b in (a + 1)..field.len() as u32 {
            if field
                .hop_distance(SimId(a), SimId(b))
                .is_some_and(|h| h > 3)
                && !field.in_range_of(SimId(a)).is_empty()
                && !field.in_range_of(SimId(b)).is_empty()
            {
                return Some((CoreId(a), CoreId(b)));
            }
        }
    }
    None
}
