//! Golden-metric regression tests: fixed-seed aggregate statistics of the
//! headline experiments (Figure 8, Figure 9, Table 2) compared against
//! baselines committed in `tests/golden/`.
//!
//! The simulator is deterministic, so a drift beyond the tolerances below
//! means simulator or protocol behavior changed. If the change is
//! intentional, regenerate the baselines and commit them:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_metrics
//! ```

use liteworp_bench::exec::ExecOptions;
use liteworp_bench::experiments::{fig8, fig9, tables};
use liteworp_runner::Json;
use std::path::PathBuf;

/// Absolute tolerance for packet counts (fig8 cumulative drops).
const TOL_COUNT: f64 = 1e-6;
/// Absolute tolerance for fractions in [0, 1] (fig9 rates and CIs).
const TOL_FRACTION: f64 = 1e-9;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Loads the committed baseline, or rewrites it from `actual` when
/// `UPDATE_GOLDEN` is set.
fn baseline(name: &str, actual: &Json) -> Json {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual.dump() + "\n").unwrap();
        eprintln!("updated baseline {}", path.display());
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing baseline {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test --test golden_metrics",
            path.display()
        )
    });
    Json::parse(&text).expect("baseline is valid JSON")
}

fn field(row: &Json, key: &str) -> f64 {
    row.get(key)
        .unwrap_or_else(|| panic!("baseline row missing {key:?}"))
        .as_f64()
        .unwrap_or_else(|| panic!("baseline field {key:?} is not a number"))
}

fn assert_close(label: &str, expected: f64, actual: f64, tol: f64) {
    assert!(
        (expected - actual).abs() <= tol,
        "{label}: baseline {expected} vs actual {actual} (tolerance {tol}); \
         if this change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test golden_metrics"
    );
}

/// Small fixed-seed Figure 8 cell: cumulative wormhole drops over time,
/// M = 2, baseline vs LITEWORP.
#[test]
fn fig8_drop_series_matches_baseline() {
    let cfg = fig8::Fig8Config {
        nodes: 50,
        colluder_counts: vec![2],
        seeds: 2,
        duration: 400.0,
        sample_every: 100.0,
    };
    let (series, _) = fig8::run_with(&cfg, &ExecOptions::default());
    let actual = Json::Arr(series.iter().map(|s| s.to_json()).collect());
    let expected = baseline("fig8.json", &actual);
    let (exp, act) = (expected.as_arr().unwrap(), actual.as_arr().unwrap());
    assert_eq!(exp.len(), act.len(), "series count changed");
    for (e, a) in exp.iter().zip(act) {
        let label = format!(
            "fig8 m={} protected={}",
            field(e, "colluders"),
            e.get("protected").unwrap().as_bool().unwrap()
        );
        let exp_drops = e.get("dropped").unwrap().as_arr().unwrap();
        let act_drops = a.get("dropped").unwrap().as_arr().unwrap();
        assert_eq!(exp_drops.len(), act_drops.len(), "{label}: sample count");
        for (i, (ed, ad)) in exp_drops.iter().zip(act_drops).enumerate() {
            assert_close(
                &format!("{label} sample {i}"),
                ed.as_f64().unwrap(),
                ad.as_f64().unwrap(),
                TOL_COUNT,
            );
        }
    }
}

/// Small fixed-seed Figure 9 snapshot: fraction of data dropped and of
/// routes through the wormhole, M ∈ {0, 2}.
#[test]
fn fig9_fractions_match_baseline() {
    let cfg = fig9::Fig9Config {
        nodes: 50,
        colluder_counts: vec![0, 2],
        seeds: 2,
        duration: 400.0,
    };
    let (rows, _) = fig9::run_with(&cfg, &ExecOptions::default());
    let actual = Json::Arr(rows.iter().map(|r| r.to_json()).collect());
    let expected = baseline("fig9.json", &actual);
    let (exp, act) = (expected.as_arr().unwrap(), actual.as_arr().unwrap());
    assert_eq!(exp.len(), act.len(), "row count changed");
    for (e, a) in exp.iter().zip(act) {
        let label = format!(
            "fig9 m={} protected={}",
            field(e, "colluders"),
            e.get("protected").unwrap().as_bool().unwrap()
        );
        for key in [
            "fraction_dropped",
            "fraction_dropped_ci95",
            "fraction_malicious_routes",
            "fraction_malicious_routes_ci95",
        ] {
            assert_close(
                &format!("{label} {key}"),
                field(e, key),
                field(a, key),
                TOL_FRACTION,
            );
        }
    }
}

/// Table 2 is a parameter dump of the live defaults: any drift here means
/// the reproduction silently changed a paper parameter.
#[test]
fn table2_parameters_match_baseline() {
    let rows = tables::table2();
    let actual = Json::Arr(
        rows.iter()
            .map(|r| {
                Json::object([
                    ("parameter", Json::from(r.parameter.as_str())),
                    ("paper", Json::from(r.paper.as_str())),
                    ("ours", Json::from(r.ours.as_str())),
                ])
            })
            .collect(),
    );
    let expected = baseline("table2.json", &actual);
    assert_eq!(
        expected.dump(),
        actual.dump(),
        "Table 2 parameters drifted from the committed baseline; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
