//! Reproducibility: identical seeds produce bit-identical runs, and
//! different seeds genuinely differ.

use liteworp_bench::Scenario;
use liteworp_chaos::{FaultPlan, Injector};

type Fingerprint = (u64, u64, u64, u64, Vec<(u64, u32, String)>);

fn fingerprint(seed: u64) -> Fingerprint {
    let mut run = Scenario {
        nodes: 30,
        malicious: 2,
        protected: true,
        seed,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(300.0);
    let m = run.sim().metrics();
    let trace: Vec<(u64, u32, String)> = run
        .sim()
        .trace()
        .events()
        .map(|e| (e.time_us, e.node, format!("{:?}", e.kind)))
        .collect();
    (
        m.frames_sent,
        m.frames_collided,
        run.data_delivered(),
        run.wormhole_dropped(),
        trace,
    )
}

#[test]
fn same_seed_same_world() {
    assert_eq!(fingerprint(51), fingerprint(51));
}

/// A chaos-injected run is exactly as reproducible as a clean one: two
/// runs with the same (scenario seed, fault plan) pair serialize
/// byte-identical trace logs. This is the determinism discipline the lint
/// gate's D-rules exist to protect, exercised end to end through the
/// fault-injection seam.
#[test]
fn chaos_injected_trace_is_byte_identical() {
    fn jsonl() -> String {
        let mut run = Scenario {
            nodes: 25,
            malicious: 2,
            protected: true,
            seed: 97,
            ..Scenario::default()
        }
        .build();
        let plan = FaultPlan {
            seed: 11,
            drop: 0.05,
            duplicate: 0.03,
            delay: 0.04,
            max_jitter_us: 20_000,
            ..FaultPlan::default()
        };
        plan.validate().expect("plan within documented bounds");
        run.sim_mut().set_fault_hook(Box::new(Injector::new(plan)));
        run.run_until_secs(120.0);
        run.sim().trace().log().to_jsonl()
    }
    let a = jsonl();
    let b = jsonl();
    assert!(!a.is_empty(), "chaos run produced no trace events");
    assert_eq!(
        a, b,
        "chaos-injected traces diverged between identical runs"
    );
}

#[test]
fn different_seeds_different_worlds() {
    let a = fingerprint(52);
    let b = fingerprint(53);
    assert_ne!(
        (a.0, a.1, a.2),
        (b.0, b.1, b.2),
        "two seeds produced identical traffic counts — suspicious"
    );
}
