//! Reproducibility: identical seeds produce bit-identical runs, and
//! different seeds genuinely differ.

use liteworp_bench::Scenario;
use liteworp_chaos::{FaultPlan, Injector};
use liteworp_runner::cache::fnv64;

type Fingerprint = (u64, u64, u64, u64, Vec<(u64, u32, String)>);

fn fingerprint(seed: u64) -> Fingerprint {
    let mut run = Scenario {
        nodes: 30,
        malicious: 2,
        protected: true,
        seed,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(300.0);
    let m = run.sim().metrics();
    let trace: Vec<(u64, u32, String)> = run
        .sim()
        .trace()
        .events()
        .map(|e| (e.time_us, e.node, format!("{:?}", e.kind)))
        .collect();
    (
        m.frames_sent,
        m.frames_collided,
        run.data_delivered(),
        run.wormhole_dropped(),
        trace,
    )
}

#[test]
fn same_seed_same_world() {
    assert_eq!(fingerprint(51), fingerprint(51));
}

/// Serialized trace of a fixed chaos-injected run — the worst case for
/// determinism (fault verdicts consume their own RNG stream, crash windows
/// defer events, jitter reorders deliveries).
fn chaos_trace_jsonl() -> String {
    let mut run = Scenario {
        nodes: 25,
        malicious: 2,
        protected: true,
        seed: 97,
        ..Scenario::default()
    }
    .build();
    let plan = FaultPlan {
        seed: 11,
        drop: 0.05,
        duplicate: 0.03,
        delay: 0.04,
        max_jitter_us: 20_000,
        ..FaultPlan::default()
    };
    plan.validate().expect("plan within documented bounds");
    run.sim_mut().set_fault_hook(Box::new(Injector::new(plan)));
    run.run_until_secs(120.0);
    run.sim().trace().log().to_jsonl()
}

/// A chaos-injected run is exactly as reproducible as a clean one: two
/// runs with the same (scenario seed, fault plan) pair serialize
/// byte-identical trace logs. This is the determinism discipline the lint
/// gate's D-rules exist to protect, exercised end to end through the
/// fault-injection seam.
#[test]
fn chaos_injected_trace_is_byte_identical() {
    let a = chaos_trace_jsonl();
    let b = chaos_trace_jsonl();
    assert!(!a.is_empty(), "chaos run produced no trace events");
    assert_eq!(
        a, b,
        "chaos-injected traces diverged between identical runs"
    );
}

/// Digest of the chaos-injected trace above, captured on the brute-force
/// (pre-spatial-index, AoS-state) simulator. The spatial grid, the indexed
/// medium, the SoA node state, and the extracted event queue are pure
/// indexing changes: every query answer, every RNG draw, and every event
/// order must be exactly what the O(N²) code produced. A digest change
/// here means the refactor altered behavior, not just speed.
///
/// Re-pinned when the watch-expiry tick became demand-armed: the tick
/// grid is now anchored at each node's first observation instead of at
/// t=0, which shifts expiry timestamps (never verdicts) within one
/// `expire_tick` and re-bases the event-sequence numbers in the trace.
const PRE_INDEX_CHAOS_TRACE_FNV: &str = "6fb3518194a33114";

/// Digest of a clean (fault-free) run fingerprint, captured on the same
/// pre-refactor code (re-pinned with the demand-armed expiry tick, as
/// above). Covers the no-hook fast path.
const PRE_INDEX_CLEAN_FNV: &str = "1afc7086215b1426";

/// The index swap is behavior-preserving: same-seed runs digest to the
/// values captured before the refactor. Unlike `same_seed_same_world`
/// (which only proves self-consistency), this pins the *absolute* byte
/// stream across code versions.
#[test]
fn index_refactor_preserves_pinned_digests() {
    let chaos = format!("{:016x}", fnv64(chaos_trace_jsonl().as_bytes()));
    assert_eq!(
        chaos, PRE_INDEX_CHAOS_TRACE_FNV,
        "chaos-injected trace digest drifted from the pre-refactor baseline"
    );
    let clean = format!(
        "{:016x}",
        fnv64(format!("{:?}", fingerprint(51)).as_bytes())
    );
    assert_eq!(
        clean, PRE_INDEX_CLEAN_FNV,
        "clean-run fingerprint digest drifted from the pre-refactor baseline"
    );
}

#[test]
fn different_seeds_different_worlds() {
    let a = fingerprint(52);
    let b = fingerprint(53);
    assert_ne!(
        (a.0, a.1, a.2),
        (b.0, b.1, b.2),
        "two seeds produced identical traffic counts — suspicious"
    );
}
