//! Reproducibility: identical seeds produce bit-identical runs, and
//! different seeds genuinely differ.

use liteworp_bench::Scenario;

type Fingerprint = (u64, u64, u64, u64, Vec<(u64, u32, String)>);

fn fingerprint(seed: u64) -> Fingerprint {
    let mut run = Scenario {
        nodes: 30,
        malicious: 2,
        protected: true,
        seed,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(300.0);
    let m = run.sim().metrics();
    let trace: Vec<(u64, u32, String)> = run
        .sim()
        .trace()
        .events()
        .map(|e| (e.time_us, e.node, format!("{:?}", e.kind)))
        .collect();
    (
        m.frames_sent,
        m.frames_collided,
        run.data_delivered(),
        run.wormhole_dropped(),
        trace,
    )
}

#[test]
fn same_seed_same_world() {
    assert_eq!(fingerprint(51), fingerprint(51));
}

#[test]
fn different_seeds_different_worlds() {
    let a = fingerprint(52);
    let b = fingerprint(53);
    assert_ne!(
        (a.0, a.1, a.2),
        (b.0, b.1, b.2),
        "two seeds produced identical traffic counts — suspicious"
    );
}
