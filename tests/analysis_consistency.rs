//! Cross-checks between the closed-form analysis (Section 5) and the
//! simulator: the analysis' assumptions should be in the same regime as
//! what the simulation actually produces.

use liteworp::types::NodeId;
use liteworp_analysis::cost::CostModel;
use liteworp_analysis::geometry::GuardGeometry;
use liteworp_bench::Scenario;
use liteworp_netsim::field::{Field, NodeId as SimId};
use liteworp_netsim::rng::Pcg32;

#[test]
fn simulated_collision_rate_is_in_the_analysis_regime() {
    // The Figure 6 analysis assumes P_C around 0.05-0.15 at the paper's
    // density; the simulated channel should land in the same regime.
    let mut run = Scenario {
        nodes: 50,
        malicious: 0,
        protected: true,
        seed: 61,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(400.0);
    let p_c = run.sim().metrics().collision_fraction();
    assert!(
        (0.005..0.25).contains(&p_c),
        "collision fraction {p_c} far outside the analysis regime"
    );
}

#[test]
fn empirical_guard_count_tracks_the_geometry() {
    // Count actual guards (common neighbors of link endpoints) over many
    // random links and compare with the lens-area expectation.
    let mut rng = Pcg32::seed_from_u64(62);
    let field = Field::with_average_neighbors(600, 8.0, 30.0, &mut rng);
    let geo = GuardGeometry::new(30.0);
    let mut total_guards = 0usize;
    let mut links = 0usize;
    for a in 0..600u32 {
        for b in field.in_range_of(SimId(a)) {
            if b.0 <= a {
                continue;
            }
            let na = field.in_range_of(SimId(a));
            let nb = field.in_range_of(b);
            // Guards of the link a -> b: common neighbors (plus a itself,
            // which we exclude here to count *third-party* guards).
            let common = na.iter().filter(|n| nb.contains(n) && n.0 != a).count();
            total_guards += common;
            links += 1;
        }
    }
    let mean_guards = total_guards as f64 / links as f64;
    // Exact geometry predicts E[guards] ≈ (E[lens]/π r²)·N_B ≈ 0.59·N_B
    // minus the two endpoints; edge effects push the empirical value
    // somewhat lower. The paper's engineering value is 0.51·N_B.
    let predicted = geo.exact_guards_from_neighbors(8.0);
    assert!(
        (mean_guards - predicted).abs() < 2.0,
        "mean guards {mean_guards:.2} vs predicted {predicted:.2}"
    );
}

#[test]
fn live_state_footprint_matches_the_cost_model_scale() {
    let nodes = 50usize;
    let mut run = Scenario {
        nodes,
        malicious: 2,
        protected: true,
        seed: 63,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(300.0);
    let geo = GuardGeometry::new(30.0);
    let model = CostModel {
        range: 30.0,
        density: geo.density_from_neighbors(8.0),
        total_nodes: nodes,
        avg_route_hops: 4.0,
        routes_per_time_unit: nodes as f64 / 50.0,
        confidence_index: 2,
    };
    let analytic_neighbor_bytes = model.neighbor_storage_bytes();
    for i in 0..nodes as u32 {
        let lw = run
            .protocol_node(NodeId(i))
            .liteworp()
            .expect("protected run");
        let measured = lw.storage_bytes() as f64;
        // Within an order of magnitude of the closed-form neighbor
        // storage (the live number adds the watch and alert buffers and
        // varies with local density).
        assert!(
            measured < 20.0 * analytic_neighbor_bytes + 4096.0,
            "node {i} uses {measured} B, analytic scale {analytic_neighbor_bytes} B"
        );
    }
}

#[test]
fn paper_guard_ratio_is_between_zero_and_exact() {
    // Sanity relation used throughout: 0 < 0.51 (paper) < 0.59 (exact).
    let geo = GuardGeometry::new(30.0);
    let exact = geo.exact_guards_from_neighbors(1.0);
    assert!(GuardGeometry::PAPER_GUARD_RATIO < exact);
    let paper_ratio = GuardGeometry::PAPER_GUARD_RATIO;
    assert!(paper_ratio > 0.3, "paper ratio {paper_ratio}");
}
