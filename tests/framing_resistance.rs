//! Framing resistance: can insiders (who hold valid keys) get an honest
//! node isolated with false alerts?
//!
//! The protocol's defenses, per Section 4.2.2: alerts are authenticated
//! pairwise, a recipient only accepts alerts about its *own neighbors*,
//! only from *plausible guards* of the suspect (members of the suspect's
//! announced neighbor list), and needs γ *distinct* accusers. Colluding
//! wormhole endpoints sit more than two hops apart, so at most one of
//! them can be a plausible guard of any given victim: with γ = 2 they
//! cannot frame anyone by alerts alone.

use liteworp::prelude::*;

const SEED: u64 = 7;

/// Node 0 with neighbors {1 (victim), 2, 5}; the victim's announced list
/// is {0, 2, 5} — nodes 3 and 9 are NOT in it.
fn target_node() -> Liteworp {
    let mut lw = Liteworp::new(Config::default(), KeyStore::new(SEED, NodeId(0)));
    let t = lw.table_mut();
    t.add_neighbor(NodeId(1));
    t.add_neighbor(NodeId(2));
    t.add_neighbor(NodeId(5));
    t.set_neighbor_list(NodeId(1), [NodeId(0), NodeId(2), NodeId(5)]);
    t.set_neighbor_list(NodeId(2), [NodeId(0), NodeId(1)]);
    t.set_neighbor_list(NodeId(5), [NodeId(0), NodeId(1)]);
    lw
}

fn alert_from(guard: u32, victim: u32) -> (NodeId, NodeId, liteworp::keys::Mac) {
    let g = KeyStore::new(SEED, NodeId(guard));
    let mac = g.tag(
        NodeId(0),
        &Liteworp::alert_bytes(NodeId(guard), NodeId(victim)),
    );
    (NodeId(guard), NodeId(victim), mac)
}

#[test]
fn a_single_insider_cannot_frame() {
    let mut lw = target_node();
    // Insider 2 is a plausible guard of victim 1 and accuses falsely.
    let (g, v, mac) = alert_from(2, 1);
    assert_eq!(
        lw.handle_alert(g, v, mac, Micros(0)),
        AlertDisposition::Counted
    );
    // Repeating the same accusation never advances the count.
    for i in 1..10 {
        assert_eq!(
            lw.handle_alert(g, v, mac, Micros(i)),
            AlertDisposition::Ignored
        );
    }
    assert!(!lw.is_isolated(NodeId(1)), "one accuser must never isolate");
}

#[test]
fn a_distant_colluder_is_not_a_plausible_guard() {
    let mut lw = target_node();
    // Insider 9 holds valid keys but is not in the victim's neighbor
    // list: its alert is rejected outright.
    let (g, v, mac) = alert_from(9, 1);
    assert_eq!(
        lw.handle_alert(g, v, mac, Micros(0)),
        AlertDisposition::Rejected
    );
    // So the wormhole pair (2 plausible, 9 distant) cannot reach gamma=2.
    let (g2, v2, mac2) = alert_from(2, 1);
    lw.handle_alert(g2, v2, mac2, Micros(1));
    assert!(!lw.is_isolated(NodeId(1)));
}

#[test]
fn outsiders_without_keys_cannot_frame_at_all() {
    let mut lw = target_node();
    let outsider = KeyStore::new(999, NodeId(2)); // wrong seed
    let mac = outsider.tag(NodeId(0), &Liteworp::alert_bytes(NodeId(2), NodeId(1)));
    assert_eq!(
        lw.handle_alert(NodeId(2), NodeId(1), mac, Micros(0)),
        AlertDisposition::Rejected
    );
}

#[test]
fn alerts_about_strangers_are_not_ours_to_act_on() {
    let mut lw = target_node();
    // Node 7 is not our neighbor: even a well-formed alert about it is
    // refused (isolation is a local decision among the suspect's
    // neighbors).
    let g = KeyStore::new(SEED, NodeId(2));
    let mac = g.tag(NodeId(0), &Liteworp::alert_bytes(NodeId(2), NodeId(7)));
    assert_eq!(
        lw.handle_alert(NodeId(2), NodeId(7), mac, Micros(0)),
        AlertDisposition::Rejected
    );
}

#[test]
fn an_alert_cannot_be_replayed_by_a_different_guard() {
    let mut lw = target_node();
    // Guard 2's genuine tag, replayed with guard 5 named as the accuser:
    // the tag binds the accusing guard, so verification fails.
    let g2 = KeyStore::new(SEED, NodeId(2));
    let mac = g2.tag(NodeId(0), &Liteworp::alert_bytes(NodeId(2), NodeId(1)));
    assert_eq!(
        lw.handle_alert(NodeId(5), NodeId(1), mac, Micros(0)),
        AlertDisposition::Rejected
    );
}

#[test]
fn two_genuine_guards_do_isolate() {
    // The flip side: the checks must not block legitimate isolation.
    let mut lw = target_node();
    let (g, v, mac) = alert_from(2, 1);
    assert_eq!(
        lw.handle_alert(g, v, mac, Micros(0)),
        AlertDisposition::Counted
    );
    let (g5, v5, mac5) = alert_from(5, 1);
    assert_eq!(
        lw.handle_alert(g5, v5, mac5, Micros(1)),
        AlertDisposition::Isolated
    );
    assert!(lw.is_isolated(NodeId(1)));
}
