//! Differential test: the closed-form detection and false-alarm models of
//! `crates/analysis` (Section 5) against the full protocol simulation of
//! `crates/netsim`, at three density points.
//!
//! The analysis and the simulator share no code beyond the protocol
//! constants, so agreement here means the reproduction's two halves
//! describe the same protocol.

use liteworp_analysis::detection::{CollisionModel, DetectionModel};
use liteworp_analysis::false_alarm::FalseAlarmModel;
use liteworp_bench::exec::{run_cells, ExecOptions, SimCell};
use liteworp_bench::experiments::scale_sweep;
use liteworp_bench::experiments::sweep::{run_with, SweepConfig};
use liteworp_bench::Scenario;

/// Densities (average neighbor counts) compared. All are above the
/// paper's detection knee, where both model and simulation should sit
/// near certain detection.
const DENSITIES: [f64; 3] = [6.0, 8.0, 12.0];
/// Allowed |model − simulation| gap on detection probability.
const DETECTION_BOUND: f64 = 0.15;
/// Runs per density cell.
const SEEDS: u64 = 6;

/// The analytical model at the protocol's γ, fed the *simulated* collision
/// probability measured at this density.
fn model_at(p_c: f64) -> DetectionModel {
    DetectionModel {
        window: 7,
        detections_needed: 5,
        confidence_index: Scenario::default().liteworp.confidence_index as u64,
        collisions: CollisionModel::Constant(p_c),
    }
}

/// Empirical collision probability of an attack-free channel at the given
/// density — the one free parameter the analysis takes from measurement.
fn measured_collision_fraction(n_b: f64) -> f64 {
    let mut run = Scenario {
        nodes: 50,
        avg_neighbors: n_b,
        malicious: 0,
        protected: true,
        seed: 71,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(200.0);
    run.sim().metrics().collision_fraction()
}

#[test]
fn analytical_detection_matches_simulated_rate() {
    let cfg = SweepConfig {
        node_counts: vec![50],
        densities: DENSITIES.to_vec(),
        seeds: SEEDS,
        duration: 400.0,
    };
    let (rows, _) = run_with(&cfg, &ExecOptions::default());
    assert_eq!(rows.len(), DENSITIES.len());
    for row in rows {
        let p_c = measured_collision_fraction(row.avg_neighbors);
        let model = model_at(p_c);
        let predicted = model.detection_probability_with(model.guards(row.avg_neighbors), p_c);
        assert!(
            (predicted - row.detection_rate).abs() <= DETECTION_BOUND,
            "density {}: model predicts {predicted:.3}, simulation measured {:.3} \
             (P_C = {p_c:.4}, bound {DETECTION_BOUND})",
            row.avg_neighbors,
            row.detection_rate,
        );
    }
}

/// The same model-vs-simulation comparison an order of magnitude past the
/// paper's field sizes: a 1 000-node deployment driven through the scale
/// pipeline (capped traffic sources, TTL-scoped discovery, unconnected
/// deployments accepted) must still match both closed forms — detection
/// probability and per-link guard coverage — within the scale-sweep CI
/// bounds. This is the differential gate for the spatially indexed
/// simulator: the closed forms know nothing about grids or event queues,
/// so agreement here is independent of the index implementation.
#[test]
fn thousand_node_scale_case_matches_closed_forms() {
    let cfg = scale_sweep::ScaleSweepConfig {
        node_counts: vec![1_000],
        seeds: 3,
        ..scale_sweep::ScaleSweepConfig::default()
    };
    let (rows, _) = scale_sweep::run_with(&cfg, &ExecOptions::default());
    assert_eq!(rows.len(), 1);
    let violations = scale_sweep::check(&rows);
    assert!(
        violations.is_empty(),
        "N=1000 bound violations: {violations:?}"
    );
    // The wormhole must actually have been exercised, not vacuously
    // undetected: every seed isolates the colluders.
    assert_eq!(rows[0].detection_rate, 1.0, "attack not detected at N=1000");
}

#[test]
fn analytical_false_alarms_match_simulated_rate() {
    // Model side: at the measured collision rates, the closed form says a
    // false network-wide isolation is essentially impossible.
    let mut expected_total = 0.0;
    for &n_b in &DENSITIES {
        let p_c = measured_collision_fraction(n_b);
        let model = FalseAlarmModel::new(model_at(p_c));
        let p_fi = model.false_isolation_probability_with(model.detection_model().guards(n_b), p_c);
        assert!(
            p_fi < 1e-3,
            "density {n_b}: analytical false-isolation probability {p_fi} \
             is not negligible (P_C = {p_c:.4})"
        );
        expected_total += p_fi * SEEDS as f64 * 50.0;
    }
    // Simulation side: attack-free runs at the same three densities must
    // show zero false isolations — consistent with a per-node-per-run
    // probability whose expected count over the whole batch is << 1.
    assert!(
        expected_total < 0.5,
        "batch too large for a zero-count test"
    );
    let cells: Vec<SimCell> = DENSITIES
        .iter()
        .map(|&n_b| {
            SimCell::snapshot(
                format!("false-alarm nb={n_b}"),
                Scenario {
                    nodes: 50,
                    avg_neighbors: n_b,
                    malicious: 0,
                    protected: true,
                    ..Scenario::default()
                },
                SEEDS,
                9000,
                400.0,
            )
        })
        .collect();
    let batch = run_cells(&cells, &ExecOptions::default());
    for (cell, outcomes) in cells.iter().zip(&batch.outcomes) {
        assert_eq!(outcomes.len(), SEEDS as usize, "{}: lost runs", cell.label);
        let false_isolations: f64 = outcomes.iter().map(|o| o.false_isolations).sum();
        assert_eq!(
            false_isolations, 0.0,
            "{}: simulated honest isolations where the model predicts none",
            cell.label
        );
    }
}
