//! Property-based tests of the routing layer over random small
//! topologies, driven by the in-repo deterministic PCG32 generator.

use liteworp::types::NodeId as CoreId;
use liteworp_netsim::field::{Field, NodeId as SimId, Position};
use liteworp_netsim::prelude::{RadioConfig, SimDuration, SimTime, Simulator};
use liteworp_netsim::rng::{Pcg32, Rng};
use liteworp_routing::bootstrap::preload_liteworp;
use liteworp_routing::node::ProtocolNode;
use liteworp_routing::params::NodeParams;
use liteworp_routing::Packet;

const CASES: u64 = 12;

fn arb_field(rng: &mut Pcg32, n: usize) -> Field {
    let positions = (0..n)
        .map(|_| Position::new(rng.gen_range(0.0f64..120.0), rng.gen_range(0.0f64..120.0)))
        .collect();
    Field::from_positions(120.0, 30.0, positions)
}

fn build(field: &Field, seed: u64, traffic_mean: f64) -> Simulator<Packet> {
    let n = field.len();
    let params = NodeParams {
        total_nodes: n as u32,
        data_interval_mean: Some(SimDuration::from_secs_f64(traffic_mean)),
        traffic_warmup: SimDuration::from_secs(5),
        ..NodeParams::default()
    };
    let mut sim = Simulator::new(field.clone(), RadioConfig::default(), seed);
    for i in 0..n {
        let mut node = ProtocolNode::new(CoreId(i as u32), params.clone());
        preload_liteworp(node.liteworp_mut().unwrap(), SimId(i as u32), sim.field());
        sim.push_node(Box::new(node));
    }
    sim
}

fn node(sim: &Simulator<Packet>, i: u32) -> &ProtocolNode {
    sim.logic(SimId(i)).as_any().downcast_ref().expect("node")
}

/// No route is ever established to a destination the source cannot
/// reach in the disc graph, and every route's relay chain is
/// physically realizable (consecutive relays in radio range).
#[test]
fn routes_only_exist_where_physics_allows() {
    let mut rng = Pcg32::seed_from_u64(0x7274_6501);
    for _ in 0..CASES {
        let field = arb_field(&mut rng, 12);
        let seed = rng.gen_range(0u64..1000);
        let mut sim = build(&field, seed, 8.0);
        sim.run_until(SimTime::from_secs_f64(120.0));
        for i in 0..12u32 {
            for rec in node(&sim, i).route_log() {
                // Reachability.
                assert!(
                    field.hop_distance(SimId(i), SimId(rec.dest.0)).is_some(),
                    "route from n{i} to unreachable {:?}",
                    rec.dest
                );
                // Physical realizability of the reply path.
                let mut path: Vec<CoreId> = rec.relays.clone();
                path.push(CoreId(i));
                for w in path.windows(2) {
                    assert!(
                        field.in_range(SimId(w[0].0), SimId(w[1].0)),
                        "impossible hop {w:?} in honest route {rec:?}"
                    );
                }
            }
        }
    }
}

/// In an all-honest network, nobody is ever suspected or isolated,
/// regardless of topology or timing.
#[test]
fn honest_networks_never_accuse() {
    let mut rng = Pcg32::seed_from_u64(0x7274_6502);
    for _ in 0..CASES {
        let field = arb_field(&mut rng, 10);
        let seed = rng.gen_range(0u64..1000);
        let mut sim = build(&field, seed, 6.0);
        sim.run_until(SimTime::from_secs_f64(150.0));
        assert_eq!(sim.trace().isolations().count(), 0);
        assert_eq!(sim.metrics().get("alerts_sent"), 0);
    }
}

/// Data conservation: packets delivered never exceed packets sent,
/// and every delivery happened at its true destination.
#[test]
fn data_accounting_is_conserved() {
    let mut rng = Pcg32::seed_from_u64(0x7274_6503);
    for _ in 0..CASES {
        let field = arb_field(&mut rng, 10);
        let seed = rng.gen_range(0u64..1000);
        let mut sim = build(&field, seed, 5.0);
        sim.run_until(SimTime::from_secs_f64(120.0));
        let sent = sim.metrics().get("data_sent");
        let delivered = sim.metrics().get("data_delivered");
        assert!(delivered <= sent, "{delivered} > {sent}");
        let per_node_delivered: u64 = (0..10u32)
            .map(|i| node(&sim, i).stats().data_delivered)
            .sum();
        assert_eq!(per_node_delivered, delivered);
        let per_node_sent: u64 = (0..10u32)
            .map(|i| node(&sim, i).stats().data_originated)
            .sum();
        assert_eq!(per_node_sent, sent);
    }
}
