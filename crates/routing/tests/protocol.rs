//! Integration tests of the on-demand routing protocol over the simulated
//! radio: flood propagation, reverse-path replies, route caching and
//! eviction, data forwarding, and the LITEWORP admission interplay.

use liteworp::types::NodeId as CoreId;
use liteworp_netsim::field::{Field, NodeId as SimId, Position};
use liteworp_netsim::prelude::{RadioConfig, SimDuration, SimTime, Simulator};
use liteworp_routing::bootstrap::preload_liteworp;
use liteworp_routing::node::ProtocolNode;
use liteworp_routing::params::NodeParams;
use liteworp_routing::Packet;

/// A 6-node chain, 25 m spacing (range 30 m): 0-1-2-3-4-5.
fn chain_field(n: usize) -> Field {
    Field::from_positions(
        1000.0,
        30.0,
        (0..n)
            .map(|i| Position::new(25.0 * i as f64, 0.0))
            .collect(),
    )
}

fn build_chain(n: usize, protected: bool, seed: u64) -> Simulator<Packet> {
    let field = chain_field(n);
    let params = NodeParams {
        total_nodes: n as u32,
        liteworp: protected.then(Default::default),
        data_interval_mean: None, // tests drive traffic explicitly
        ..NodeParams::default()
    };
    let mut sim = Simulator::new(field, RadioConfig::default(), seed);
    for i in 0..n {
        let mut node = ProtocolNode::new(CoreId(i as u32), params.clone());
        if protected {
            preload_liteworp(
                node.liteworp_mut().expect("protected"),
                SimId(i as u32),
                sim.field(),
            );
        }
        sim.push_node(Box::new(node));
    }
    sim
}

fn node(sim: &Simulator<Packet>, i: u32) -> &ProtocolNode {
    sim.logic(SimId(i)).as_any().downcast_ref().expect("node")
}

/// Node 0 is the only traffic source; with random destinations over the
/// whole chain, multihop routes must form and data must flow end to end.
#[test]
fn route_forms_along_the_chain_and_data_flows() {
    let n = 6;
    let field = chain_field(n);
    let params = |traffic| NodeParams {
        total_nodes: n as u32,
        liteworp: Some(Default::default()),
        data_interval_mean: traffic,
        ..NodeParams::default()
    };
    let mut sim = Simulator::new(field, RadioConfig::default(), 3);
    for i in 0..n {
        let traffic = if i == 0 {
            Some(SimDuration::from_secs(5))
        } else {
            None
        };
        let mut node = ProtocolNode::new(CoreId(i as u32), params(traffic));
        preload_liteworp(node.liteworp_mut().unwrap(), SimId(i as u32), sim.field());
        sim.push_node(Box::new(node));
    }
    sim.run_until(SimTime::from_secs_f64(300.0));
    let src = node(&sim, 0);
    assert!(
        !src.route_log().is_empty(),
        "source never established a route"
    );
    // Every route from node 0 must use node 1 as next hop (chain).
    for rec in src.route_log() {
        if rec.dest != CoreId(1) {
            assert!(
                rec.relays.contains(&CoreId(1)) || rec.dest == CoreId(1),
                "chain routes pass node 1: {rec:?}"
            );
        }
    }
    assert!(
        sim.metrics().get("data_delivered") > 0,
        "no data delivered over the chain"
    );
}

#[test]
fn routes_expire_and_are_rediscovered() {
    let n = 4;
    let field = chain_field(n);
    let params = NodeParams {
        total_nodes: 2, // node 0 can only ever pick node 1
        liteworp: Some(Default::default()),
        data_interval_mean: Some(SimDuration::from_secs(8)),
        route_timeout: SimDuration::from_secs(20),
        traffic_warmup: SimDuration::from_secs(1),
        ..NodeParams::default()
    };
    let mut sim = Simulator::new(field, RadioConfig::default(), 5);
    for i in 0..n {
        let traffic = i == 0;
        let mut p = params.clone();
        if !traffic {
            p.data_interval_mean = None;
        }
        let mut node = ProtocolNode::new(CoreId(i as u32), p);
        preload_liteworp(node.liteworp_mut().unwrap(), SimId(i as u32), sim.field());
        sim.push_node(Box::new(node));
    }
    sim.run_until(SimTime::from_secs_f64(200.0));
    // With a 20 s route lifetime and steady traffic, several discoveries
    // must have happened.
    let discoveries = node(&sim, 0).stats().discoveries;
    assert!(
        discoveries >= 3,
        "expected repeated rediscovery, got {discoveries}"
    );
    let delivered = sim.metrics().get("data_delivered");
    let sent = sim.metrics().get("data_sent");
    assert!(
        delivered * 10 >= sent * 8,
        "chain delivery should be reliable: {delivered}/{sent}"
    );
}

#[test]
fn non_neighbor_unicasts_are_rejected_by_protected_nodes() {
    // Craft a frame from node 0 addressed to node 2 (50 m away, out of
    // range normally) using high power — node 2 must reject it at
    // admission because node 0 is not its neighbor.
    use liteworp_netsim::prelude::{Context, Dest, FrameSpec, NodeLogic};
    use std::any::Any;

    struct Impostor;
    impl NodeLogic<Packet> for Impostor {
        fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
            let pkt = Packet::Data {
                origin: CoreId(0),
                target: CoreId(2),
                seq: 1,
                sender: CoreId(0),
                prev: None,
                next: CoreId(2),
            };
            let bytes = pkt.wire_bytes();
            ctx.send(FrameSpec::new(Dest::Unicast(SimId(2)), pkt, bytes).with_high_power(3.0));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let field = chain_field(3);
    let params = NodeParams {
        total_nodes: 3,
        liteworp: Some(Default::default()),
        data_interval_mean: None,
        ..NodeParams::default()
    };
    let mut sim = Simulator::new(field, RadioConfig::default(), 7);
    sim.push_node(Box::new(Impostor));
    for i in 1..3 {
        let mut node = ProtocolNode::new(CoreId(i), params.clone());
        preload_liteworp(node.liteworp_mut().unwrap(), SimId(i), sim.field());
        sim.push_node(Box::new(node));
    }
    sim.run_until(SimTime::from_secs_f64(5.0));
    let victim = node(&sim, 2);
    assert_eq!(victim.stats().data_delivered, 0, "impostor data accepted");
    assert!(
        victim.stats().frames_rejected > 0,
        "the high-power frame should be rejected at admission"
    );
}

#[test]
fn baseline_accepts_what_protection_rejects() {
    // Same impostor against an unprotected node: accepted.
    use liteworp_netsim::prelude::{Context, Dest, FrameSpec, NodeLogic};
    use std::any::Any;

    struct Impostor;
    impl NodeLogic<Packet> for Impostor {
        fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
            let pkt = Packet::Data {
                origin: CoreId(0),
                target: CoreId(2),
                seq: 1,
                sender: CoreId(0),
                prev: None,
                next: CoreId(2),
            };
            let bytes = pkt.wire_bytes();
            ctx.send(FrameSpec::new(Dest::Unicast(SimId(2)), pkt, bytes).with_high_power(3.0));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let field = chain_field(3);
    let params = NodeParams {
        total_nodes: 3,
        liteworp: None,
        data_interval_mean: None,
        ..NodeParams::default()
    };
    let mut sim = Simulator::new(field, RadioConfig::default(), 7);
    sim.push_node(Box::new(Impostor));
    for i in 1..3 {
        sim.push_node(Box::new(ProtocolNode::new(CoreId(i), params.clone())));
    }
    sim.run_until(SimTime::from_secs_f64(5.0));
    assert_eq!(node(&sim, 2).stats().data_delivered, 1);
}

#[test]
fn protected_chain_matches_baseline_throughput() {
    // LITEWORP should not tax a clean chain measurably.
    let run = |protected: bool| {
        let n = 5;
        let field = chain_field(n);
        let mut sim = Simulator::new(field, RadioConfig::default(), 9);
        for i in 0..n {
            let mut p = NodeParams {
                total_nodes: 2,
                liteworp: protected.then(Default::default),
                data_interval_mean: (i == 0).then(|| SimDuration::from_secs(4)),
                traffic_warmup: SimDuration::from_secs(1),
                ..NodeParams::default()
            };
            if i != 0 {
                p.data_interval_mean = None;
            }
            let mut node = ProtocolNode::new(CoreId(i as u32), p);
            if protected {
                preload_liteworp(node.liteworp_mut().unwrap(), SimId(i as u32), sim.field());
            }
            sim.push_node(Box::new(node));
        }
        sim.run_until(SimTime::from_secs_f64(120.0));
        (
            sim.metrics().get("data_sent"),
            sim.metrics().get("data_delivered"),
        )
    };
    let (bs, bd) = run(false);
    let (ps, pd) = run(true);
    assert!(bs > 0 && ps > 0);
    let base_rate = bd as f64 / bs as f64;
    let prot_rate = pd as f64 / ps as f64;
    assert!(
        (base_rate - prot_rate).abs() < 0.25,
        "throughput diverged: baseline {base_rate:.2} vs protected {prot_rate:.2}"
    );
}

#[test]
fn route_error_absolves_and_purges() {
    // With data-plane monitoring on: a forwarder whose route expired
    // broadcasts a RouteError instead of silently failing; guards waive
    // its obligation and the upstream node drops its stale route.
    use liteworp::config::Config;
    use liteworp::types::{PacketKind, PacketSig};
    use liteworp_netsim::prelude::{Context, Dest, FrameSpec, NodeLogic};
    use std::any::Any;

    // Node 0 injects a data packet to node 1 addressed onward to node 2;
    // node 1 has no route to node 2's target, so it must emit a RouteError.
    struct Injector;
    impl NodeLogic<Packet> for Injector {
        fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
            let pkt = Packet::Data {
                origin: CoreId(0),
                target: CoreId(2),
                seq: 1,
                sender: CoreId(0),
                prev: None,
                next: CoreId(1),
            };
            let bytes = pkt.wire_bytes();
            ctx.send(FrameSpec::new(Dest::Unicast(SimId(1)), pkt, bytes));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let field = chain_field(3);
    let params = NodeParams {
        total_nodes: 3,
        liteworp: Some(Config {
            monitor_data: true,
            ..Config::default()
        }),
        data_interval_mean: None,
        ..NodeParams::default()
    };
    let mut sim = Simulator::new(field, RadioConfig::default(), 13);
    sim.push_node(Box::new(Injector));
    for i in 1..3 {
        let mut node = ProtocolNode::new(CoreId(i), params.clone());
        preload_liteworp(node.liteworp_mut().unwrap(), SimId(i), sim.field());
        sim.push_node(Box::new(node));
    }
    sim.run_until(SimTime::from_secs_f64(10.0));
    // Node 1 could not forward (it never discovered a route to node 2)
    // and announced it.
    assert_eq!(node(&sim, 1).stats().data_no_route, 1);
    // No guard charged node 1 with a drop after the absolution.
    assert_eq!(sim.metrics().get("suspicions"), 0);
    // The RouteError named exactly the packet that could not be carried.
    let expected_sig = PacketSig {
        kind: PacketKind::Data,
        origin: CoreId(0),
        target: CoreId(2),
        seq: 1,
    };
    assert_eq!(expected_sig.kind, PacketKind::Data);
}

#[test]
fn reverse_pointers_and_next_hops_are_queryable() {
    let mut sim = build_chain(4, true, 11);
    sim.run_until(SimTime::from_secs_f64(1.0));
    let n0 = node(&sim, 0);
    assert_eq!(n0.route_next_hop(CoreId(3)), None, "no traffic, no route");
    assert_eq!(n0.reverse_hop(CoreId(3), 1), None);
    assert!(n0.route_relays(CoreId(3)).is_none());
}
