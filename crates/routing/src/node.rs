//! The honest protocol node: on-demand routing + traffic generation +
//! LITEWORP integration.
//!
//! This is the "data exchange protocol" of Section 6: a generic on-demand
//! shortest-path routing protocol that floods route requests, unicasts
//! route replies along the reverse path, caches routes for `TOut_Route`,
//! and announces the previous hop of every forwarded control packet so
//! guards can monitor.
//!
//! With LITEWORP enabled the node additionally:
//!
//! * runs (or is preloaded with) secure two-hop neighbor discovery,
//! * refuses packets from non-neighbors, revoked nodes, or with an
//!   implausible previous hop,
//! * feeds every overheard control packet to the local monitor and sends
//!   the resulting authenticated alerts,
//! * isolates nodes on γ distinct guard alerts and purges routes through
//!   them.

use crate::packet::Packet;
use crate::params::{DiscoveryMode, NodeParams, RouteSelection};
use crate::stats::{NodeStats, RouteRecord};
use liteworp::discovery::{DiscoveryMsg, DiscoveryOut};
use liteworp::monitor::PacketObs;
use liteworp::prelude::{Admission, AlertDisposition, Config, Effect, KeyStore, Liteworp};
use liteworp::types::{Micros, NodeId, PacketKind, PacketSig};
use liteworp_netsim::prelude::{
    Context, Dest, Frame, FrameSpec, MalcReason, NodeLogic, SimDuration, SimTime, TraceKind,
};
use liteworp_netsim::rng::Rng;
use liteworp_obs as obs;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Converts a core node id to the simulator's id type.
pub fn sim_id(n: NodeId) -> liteworp_netsim::field::NodeId {
    liteworp_netsim::field::NodeId(n.0)
}

/// Converts a simulator node id to the core id type.
pub fn core_id(n: liteworp_netsim::field::NodeId) -> NodeId {
    NodeId(n.0)
}

/// Converts simulator time to the core crate's local-clock microseconds.
pub fn micros(t: SimTime) -> Micros {
    Micros(t.as_micros())
}

/// Timer token kinds (encoded in the top byte of the `u64` token).
mod timer {
    pub const ANNOUNCE: u64 = 1;
    pub const EXPIRE: u64 = 2;
    pub const TRAFFIC: u64 = 3;
    pub const DEST_CHANGE: u64 = 4;
    pub const REQ_RETRY: u64 = 5;
    pub const FORWARD_REQ: u64 = 6;

    pub fn encode(kind: u64, payload: u64) -> u64 {
        (kind << 56) | (payload & 0x00ff_ffff_ffff_ffff)
    }
    pub fn kind(token: u64) -> u64 {
        token >> 56
    }
    pub fn payload(token: u64) -> u64 {
        token & 0x00ff_ffff_ffff_ffff
    }
}

#[derive(Debug, Clone)]
struct RouteEntry {
    next: NodeId,
    hops: u8,
    established: SimTime,
    relays: Vec<NodeId>,
}

/// The honest protocol node.
///
/// Implements [`NodeLogic<Packet>`]; the processing methods are `pub` so
/// the attack crate can wrap a `ProtocolNode` and keep honest behavior for
/// everything it does not subvert.
pub struct ProtocolNode {
    me: NodeId,
    params: NodeParams,
    lw: Option<Liteworp>,
    monitoring: bool,
    /// Whether an EXPIRE timer is outstanding. The tick is armed lazily
    /// when the watch buffer first becomes non-empty and lapses when it
    /// drains, so idle nodes (most of a large network, most of the
    /// time) schedule no periodic events at all.
    expire_armed: bool,
    seq: u64,
    seen_reqs: BTreeSet<(NodeId, u64)>,
    replied: BTreeSet<(NodeId, u64)>,
    reverse: BTreeMap<(NodeId, u64), NodeId>,
    routes: BTreeMap<NodeId, RouteEntry>,
    pending_data: BTreeMap<NodeId, VecDeque<u64>>,
    discovering: BTreeSet<NodeId>,
    retry_attempts: BTreeMap<NodeId, u32>,
    pending_forwards: BTreeMap<u64, (Dest, Packet)>,
    next_forward_token: u64,
    current_dest: Option<NodeId>,
    stats: NodeStats,
    route_log: Vec<RouteRecord>,
}

impl ProtocolNode {
    /// Creates a node. When `params.liteworp` is `Some`, a fresh LITEWORP
    /// instance is built (tables empty — use message discovery or
    /// [`ProtocolNode::liteworp_mut`] to preload).
    pub fn new(me: NodeId, params: NodeParams) -> Self {
        let lw = params
            .liteworp
            .as_ref()
            .map(|cfg: &Config| Liteworp::new(cfg.clone(), KeyStore::new(params.key_seed, me)));
        ProtocolNode {
            me,
            params,
            lw,
            monitoring: true,
            expire_armed: false,
            seq: 0,
            seen_reqs: BTreeSet::new(),
            replied: BTreeSet::new(),
            reverse: BTreeMap::new(),
            routes: BTreeMap::new(),
            pending_data: BTreeMap::new(),
            discovering: BTreeSet::new(),
            retry_attempts: BTreeMap::new(),
            pending_forwards: BTreeMap::new(),
            next_forward_token: 0,
            current_dest: None,
            stats: NodeStats::default(),
            route_log: Vec::new(),
        }
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The parameters this node runs with.
    pub fn params(&self) -> &NodeParams {
        &self.params
    }

    /// Per-node statistics.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Routes established at this node as a source, in order.
    pub fn route_log(&self) -> &[RouteRecord] {
        &self.route_log
    }

    /// The embedded LITEWORP instance, if protection is enabled.
    pub fn liteworp(&self) -> Option<&Liteworp> {
        self.lw.as_ref()
    }

    /// Mutable access to LITEWORP (oracle bootstrap of neighbor tables).
    pub fn liteworp_mut(&mut self) -> Option<&mut Liteworp> {
        self.lw.as_mut()
    }

    /// Enables or disables the *guard* role (local monitoring, drop
    /// detection, alerting). Admission checks and alert handling keep
    /// working. Attack wrappers switch this off: a compromised node does
    /// not volunteer to run the defense, and its half-informed monitor
    /// would otherwise accuse its own honest neighbors for refusing the
    /// packets its attack layer injects.
    pub fn set_monitoring(&mut self, on: bool) {
        self.monitoring = on;
    }

    /// The next hop this node would use toward `dest` right now, if any.
    pub fn route_next_hop(&self, dest: NodeId) -> Option<NodeId> {
        self.routes.get(&dest).map(|r| r.next)
    }

    /// Ground-truth relays of the currently installed route to `dest`
    /// (telemetry for experiments; honest logic never reads it).
    pub fn route_relays(&self, dest: NodeId) -> Option<&[NodeId]> {
        self.routes.get(&dest).map(|r| r.relays.as_slice())
    }

    /// The reverse-path next hop recorded for discovery `(src, seq)`.
    pub fn reverse_hop(&self, src: NodeId, seq: u64) -> Option<NodeId> {
        self.reverse.get(&(src, seq)).copied()
    }

    // ------------------------------------------------------------------
    // NodeLogic plumbing (public so wrappers can delegate).
    // ------------------------------------------------------------------

    /// Start-of-life behavior: discovery, expiry tick, traffic timers.
    pub fn handle_start(&mut self, ctx: &mut Context<'_, Packet>) {
        if let (
            DiscoveryMode::Messages { collect } | DiscoveryMode::LateJoin { collect },
            Some(lw),
        ) = (self.params.discovery, self.lw.as_mut())
        {
            let (disc, _table) = lw.discovery_mut();
            let out = disc.begin();
            self.emit_discovery(ctx, out);
            ctx.set_timer(collect, timer::encode(timer::ANNOUNCE, 0));
        }
        // The EXPIRE tick is not armed here: the watch buffer starts
        // empty, and `monitor_packet` arms the timer the moment the
        // first entry appears.
        if let Some(mean) = self.params.data_interval_mean {
            self.pick_new_destination(ctx);
            let warmup_us = self.params.traffic_warmup.as_micros();
            let warmup = SimDuration::from_micros(ctx.rng().gen_range(0..=warmup_us));
            let delay = warmup + exp_sample(ctx, mean);
            ctx.set_timer(delay, timer::encode(timer::TRAFFIC, 0));
            let change = exp_sample(ctx, self.params.dest_change_mean);
            ctx.set_timer(change, timer::encode(timer::DEST_CHANGE, 0));
        }
    }

    /// Frame reception (addressed or overheard).
    pub fn handle_frame(&mut self, ctx: &mut Context<'_, Packet>, frame: &Frame<Packet>) {
        // 1. Local monitoring sees *every* overheard control packet.
        self.monitor_packet(ctx, &frame.payload);

        // 2. Protocol processing of packets addressed to us.
        match &frame.payload {
            Packet::Discovery { sender, msg } => {
                self.handle_discovery(ctx, *sender, msg);
            }
            Packet::RouteRequest {
                sig,
                sender,
                prev,
                hops,
            } => {
                if !self.admitted(*sender, *prev) {
                    return;
                }
                self.handle_request(ctx, *sig, *sender, *hops);
            }
            Packet::RouteReply {
                sig,
                sender,
                prev,
                next,
                hops,
                relays,
            } => {
                if *next != self.me {
                    return; // merely overheard
                }
                if !self.admitted(*sender, *prev) {
                    return;
                }
                self.handle_reply(ctx, *sig, *sender, *hops, relays.clone());
            }
            Packet::Data {
                origin,
                target,
                seq,
                sender,
                prev,
                next,
            } => {
                if *next != self.me {
                    return;
                }
                if !self.admitted(*sender, *prev) {
                    return;
                }
                self.handle_data(ctx, *origin, *target, *seq, *sender);
            }
            Packet::RouteError { sender, sig } => {
                if let Some(lw) = self.lw.as_mut() {
                    lw.absolve(*sender, sig);
                }
                // Purge a stale route that points at the failing node.
                if self.route_next_hop(sig.target) == Some(*sender) {
                    self.routes.remove(&sig.target);
                }
            }
            Packet::Alert {
                guard,
                suspect,
                to,
                mac,
            } => {
                if *to != self.me {
                    // Relay an alert link-addressed to us toward its
                    // recipient if that recipient is our active neighbor
                    // (one relay hop only: guard -> relay -> recipient).
                    if self.params.relay_alerts && frame.dest == Dest::Unicast(sim_id(self.me)) {
                        if let Some(lw) = self.lw.as_ref() {
                            if lw.table().is_active_neighbor(*to) && *guard != self.me {
                                ctx.metrics().incr("alerts_relayed");
                                let pkt = frame.payload.clone();
                                let bytes = pkt.wire_bytes();
                                ctx.send(FrameSpec::new(Dest::Unicast(sim_id(*to)), pkt, bytes));
                            }
                        }
                    }
                    return;
                }
                let Some(lw) = self.lw.as_mut() else { return };
                let disposition = lw.handle_alert(*guard, *suspect, *mac, micros(ctx.now()));
                let accepted = matches!(
                    disposition,
                    AlertDisposition::Isolated | AlertDisposition::Counted
                );
                ctx.trace(TraceKind::AlertReceived {
                    guard: guard.0,
                    suspect: suspect.0,
                    accepted,
                });
                match disposition {
                    AlertDisposition::Isolated => {
                        self.stats.alerts_accepted += 1;
                        ctx.metrics().incr("isolations");
                        ctx.trace(TraceKind::Isolated {
                            suspect: suspect.0,
                            by_alerts: true,
                        });
                        self.purge_routes_through(*suspect);
                    }
                    AlertDisposition::Counted => {
                        self.stats.alerts_accepted += 1;
                    }
                    AlertDisposition::Ignored | AlertDisposition::Rejected => {}
                }
            }
        }
    }

    /// Collision indication from the radio.
    pub fn handle_collision(&mut self, ctx: &mut Context<'_, Packet>) {
        if let Some(lw) = self.lw.as_mut() {
            lw.note_collision(micros(ctx.now()));
        }
    }

    /// Timer dispatch.
    pub fn handle_timer(&mut self, ctx: &mut Context<'_, Packet>, token: u64) {
        match timer::kind(token) {
            timer::ANNOUNCE => {
                if let Some(lw) = self.lw.as_mut() {
                    let (disc, table) = lw.discovery_mut();
                    let out = disc.announce(table);
                    self.emit_discovery(ctx, out);
                    if matches!(self.params.discovery, DiscoveryMode::LateJoin { .. }) {
                        // Ask established neighbors for their lists so we
                        // gain second-hop knowledge despite missing their
                        // original announcements.
                        let me = self.me;
                        let pkt = Packet::Discovery {
                            sender: me,
                            msg: DiscoveryMsg::ListRequest,
                        };
                        let bytes = pkt.wire_bytes();
                        ctx.send(FrameSpec::new(Dest::Broadcast, pkt, bytes));
                    }
                }
            }
            timer::EXPIRE => {
                let now = micros(ctx.now());
                if self.monitoring {
                    if let Some(lw) = self.lw.as_mut() {
                        let effects = lw.expire(now);
                        self.apply_effects(ctx, effects);
                    }
                }
                // Re-arm only while entries remain (even with monitoring
                // paused, so a re-enabled monitor still expires them);
                // otherwise the tick lapses until the next observation.
                if self
                    .lw
                    .as_ref()
                    .is_some_and(|lw| !lw.monitor().watch().is_empty())
                {
                    ctx.set_timer(self.params.expire_tick, timer::encode(timer::EXPIRE, 0));
                } else {
                    self.expire_armed = false;
                }
            }
            timer::TRAFFIC => {
                self.generate_data(ctx);
                if let Some(mean) = self.params.data_interval_mean {
                    let delay = exp_sample(ctx, mean);
                    ctx.set_timer(delay, timer::encode(timer::TRAFFIC, 0));
                }
            }
            timer::DEST_CHANGE => {
                self.pick_new_destination(ctx);
                let change = exp_sample(ctx, self.params.dest_change_mean);
                ctx.set_timer(change, timer::encode(timer::DEST_CHANGE, 0));
            }
            timer::FORWARD_REQ => {
                if let Some((dest, pkt)) = self.pending_forwards.remove(&timer::payload(token)) {
                    self.send_control(ctx, dest, pkt);
                }
            }
            timer::REQ_RETRY => {
                let dest = NodeId(timer::payload(token) as u32);
                let has_route = self.fresh_route(ctx.now(), dest).is_some();
                let has_pending = self.pending_data.get(&dest).is_some_and(|q| !q.is_empty());
                self.discovering.remove(&dest);
                if !has_route && has_pending {
                    self.start_discovery(ctx, dest);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Discovery.
    // ------------------------------------------------------------------

    fn emit_discovery(&mut self, ctx: &mut Context<'_, Packet>, out: DiscoveryOut) {
        let me = self.me;
        let (dest, msg) = match out {
            DiscoveryOut::Broadcast(msg) => (Dest::Broadcast, msg),
            DiscoveryOut::Unicast(to, msg) => (Dest::Unicast(sim_id(to)), msg),
        };
        if matches!(msg, DiscoveryMsg::Hello) {
            ctx.trace(TraceKind::HelloSent);
        }
        let pkt = Packet::Discovery { sender: me, msg };
        let bytes = pkt.wire_bytes();
        ctx.send(FrameSpec::new(dest, pkt, bytes));
    }

    fn handle_discovery(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        sender: NodeId,
        msg: &DiscoveryMsg,
    ) {
        let Some(lw) = self.lw.as_mut() else { return };
        let was_neighbor = lw.table().is_neighbor(sender);
        let mut added = false;
        let now_outs: Vec<DiscoveryOut> = {
            let (disc, table) = lw.discovery_mut();
            match msg {
                DiscoveryMsg::Hello => vec![disc.on_hello(sender)],
                DiscoveryMsg::HelloReply { mac } => {
                    added = disc.on_hello_reply(table, sender, *mac);
                    vec![]
                }
                DiscoveryMsg::ListAnnounce { list, tags } => {
                    added = disc.on_list_announce(table, sender, list, tags);
                    vec![]
                }
                DiscoveryMsg::ListRequest => {
                    disc.on_list_request(table, sender).into_iter().collect()
                }
            }
        };
        if added && !was_neighbor {
            ctx.trace(TraceKind::NeighborAdded { peer: sender.0 });
        }
        for out in now_outs {
            self.emit_discovery(ctx, out);
        }
    }

    // ------------------------------------------------------------------
    // LITEWORP integration.
    // ------------------------------------------------------------------

    fn monitor_packet(&mut self, ctx: &mut Context<'_, Packet>, pkt: &Packet) {
        if !self.monitoring {
            return;
        }
        let Some(lw) = self.lw.as_mut() else { return };
        let obs = match pkt {
            Packet::Data {
                origin,
                target,
                seq,
                sender,
                prev,
                next,
            } if lw.config().monitor_data => PacketObs {
                sender: *sender,
                claimed_prev: *prev,
                link_dst: Some(*next),
                sig: PacketSig {
                    kind: PacketKind::Data,
                    origin: *origin,
                    target: *target,
                    seq: *seq,
                },
                terminal: *next == *target,
            },
            Packet::RouteRequest {
                sig, sender, prev, ..
            } => PacketObs {
                sender: *sender,
                claimed_prev: *prev,
                link_dst: None,
                sig: *sig,
                terminal: false,
            },
            Packet::RouteReply {
                sig,
                sender,
                prev,
                next,
                ..
            } => PacketObs {
                sender: *sender,
                claimed_prev: *prev,
                link_dst: Some(*next),
                sig: *sig,
                terminal: *next == sig.target,
            },
            _ => return,
        };
        let effects = {
            let _span = obs::span("watch_buffer");
            lw.observe_packet(&obs, micros(ctx.now()))
        };
        self.apply_effects(ctx, effects);
        if !self.expire_armed
            && self
                .lw
                .as_ref()
                .is_some_and(|lw| !lw.monitor().watch().is_empty())
        {
            self.expire_armed = true;
            ctx.set_timer(self.params.expire_tick, timer::encode(timer::EXPIRE, 0));
        }
    }

    /// Defers a control send by a uniform random delay in `[0, jitter]`.
    fn send_control_jittered(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        dest: Dest,
        pkt: Packet,
        jitter: SimDuration,
    ) {
        let token = self.next_forward_token;
        self.next_forward_token += 1;
        self.pending_forwards.insert(token, (dest, pkt));
        let delay = SimDuration::from_micros(ctx.rng().gen_range(0..=jitter.as_micros()));
        ctx.set_timer(delay, timer::encode(timer::FORWARD_REQ, token));
    }

    /// Sends a control packet and feeds it to our own monitor: per the
    /// paper, a node is the guard of all its outgoing links, so its own
    /// transmissions must be in its watch buffer (both to validate
    /// neighbors' forwards of them and to catch a next hop dropping them).
    fn send_control(&mut self, ctx: &mut Context<'_, Packet>, dest: Dest, pkt: Packet) {
        self.monitor_packet(ctx, &pkt);
        let bytes = pkt.wire_bytes();
        ctx.send(FrameSpec::new(dest, pkt, bytes));
    }

    fn apply_effects(&mut self, ctx: &mut Context<'_, Packet>, effects: Vec<Effect>) {
        if effects.is_empty() {
            return;
        }
        let _span = obs::span("detection");
        let (fabrication_weight, drop_weight) = self
            .lw
            .as_ref()
            .map(|lw| (lw.config().fabrication_weight, lw.config().drop_weight))
            .unwrap_or((0, 0));
        for effect in effects {
            match effect {
                Effect::SendAlert {
                    suspect,
                    recipient,
                    mac,
                } => {
                    self.stats.alerts_sent += 1;
                    ctx.metrics().incr("alerts_sent");
                    ctx.trace(TraceKind::AlertSent {
                        suspect: suspect.0,
                        recipient: recipient.0,
                    });
                    let pkt = Packet::Alert {
                        guard: self.me,
                        suspect,
                        to: recipient,
                        mac,
                    };
                    let link = self.alert_link_hop(recipient, suspect);
                    let bytes = pkt.wire_bytes();
                    ctx.send(FrameSpec::new(Dest::Unicast(sim_id(link)), pkt, bytes));
                }
                Effect::Isolated { suspect } => {
                    ctx.metrics().incr("isolations");
                    ctx.trace(TraceKind::Isolated {
                        suspect: suspect.0,
                        by_alerts: false,
                    });
                    self.purge_routes_through(suspect);
                }
                Effect::Suspected {
                    suspect,
                    kind,
                    malc,
                } => {
                    ctx.metrics().incr("suspicions");
                    ctx.metrics().incr(match kind {
                        liteworp::types::Misbehavior::Fabrication => "suspected_fabrication",
                        liteworp::types::Misbehavior::Drop => "suspected_drop",
                    });
                    let (delta, reason) = match kind {
                        liteworp::types::Misbehavior::Fabrication => {
                            (fabrication_weight, MalcReason::Fabrication)
                        }
                        liteworp::types::Misbehavior::Drop => (drop_weight, MalcReason::Drop),
                    };
                    ctx.trace(TraceKind::MalcIncrement {
                        suspect: suspect.0,
                        delta,
                        malc,
                        reason,
                    });
                    ctx.trace(TraceKind::Suspected { suspect: suspect.0 });
                }
                Effect::WatchExpired { expired } => {
                    ctx.metrics().add("watch_expiries", expired as u64);
                    ctx.trace(TraceKind::WatchBufferExpired { expired });
                }
            }
        }
    }

    /// Picks the link-layer next hop for an alert to `recipient` (a
    /// neighbor of `suspect`). Recipients beyond our own range — they can
    /// be up to two hops away — are reached through a common neighbor
    /// that neighbors the recipient (the paper's "multiple unicasts").
    fn alert_link_hop(&self, recipient: NodeId, suspect: NodeId) -> NodeId {
        let Some(lw) = self.lw.as_ref() else {
            return recipient;
        };
        if !self.params.relay_alerts {
            return recipient;
        }
        let table = lw.table();
        if table.is_active_neighbor(recipient) {
            return recipient;
        }
        for relay in table.active_neighbors() {
            if relay == suspect {
                continue;
            }
            if table
                .neighbor_list_of(relay)
                .is_some_and(|l| l.contains(&recipient))
            {
                return relay;
            }
        }
        recipient // no relay known; try directly and hope for range
    }

    fn admitted(&mut self, sender: NodeId, prev: Option<NodeId>) -> bool {
        match &self.lw {
            None => true,
            Some(lw) => match lw.admit(sender, prev) {
                Admission::Accept => true,
                Admission::Reject(_) => {
                    self.stats.frames_rejected += 1;
                    false
                }
            },
        }
    }

    fn purge_routes_through(&mut self, suspect: NodeId) {
        self.routes.retain(|_, r| r.next != suspect);
    }

    // ------------------------------------------------------------------
    // Routing.
    // ------------------------------------------------------------------

    fn handle_request(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        sig: PacketSig,
        sender: NodeId,
        hops: u8,
    ) {
        let key = (sig.origin, sig.seq);
        if self.seen_reqs.contains(&key) {
            return;
        }
        self.seen_reqs.insert(key);
        self.reverse.insert(key, sender);
        if sig.target == self.me {
            // Destination: generate the reply (first request copy only).
            if self.replied.insert(key) {
                let reply_sig = PacketSig {
                    kind: PacketKind::RouteReply,
                    origin: self.me,
                    target: sig.origin,
                    seq: sig.seq,
                };
                let pkt = Packet::RouteReply {
                    sig: reply_sig,
                    sender: self.me,
                    prev: None,
                    next: sender,
                    hops: hops.saturating_add(1),
                    relays: vec![self.me],
                };
                let jitter = self.params.rep_forward_jitter;
                self.send_control_jittered(ctx, Dest::Unicast(sim_id(sender)), pkt, jitter);
            }
            return;
        }
        // TTL-scoped discovery: a rebroadcast that would exceed the TTL
        // is consumed here (the reverse path above still stands, and a
        // destination at the edge already replied).
        if self
            .params
            .rreq_ttl
            .is_some_and(|ttl| hops.saturating_add(1) > ttl)
        {
            return;
        }
        // Rebroadcast the flood, announcing the hop we got it from —
        // after the protocol-mandated random backoff (Section 3.5), which
        // spreads the flood in time and keeps collisions rare.
        let pkt = Packet::RouteRequest {
            sig,
            sender: self.me,
            prev: Some(sender),
            hops: hops.saturating_add(1),
        };
        let jitter = self.params.req_forward_jitter;
        self.send_control_jittered(ctx, Dest::Broadcast, pkt, jitter);
    }

    fn handle_reply(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        sig: PacketSig,
        sender: NodeId,
        hops: u8,
        mut relays: Vec<NodeId>,
    ) {
        // The reply travels D -> ... -> S; sig.origin = D, sig.target = S.
        let dest = sig.origin;
        let am_source = sig.target == self.me;
        self.install_route(ctx, dest, sender, hops, relays.clone(), am_source);
        if am_source {
            return;
        }
        // Forward along the reverse path toward S.
        let key = (sig.target, sig.seq);
        let Some(next) = self.reverse.get(&key).copied() else {
            return; // reverse entry lost (e.g. evicted); drop silently
        };
        relays.push(self.me);
        let pkt = Packet::RouteReply {
            sig,
            sender: self.me,
            prev: Some(sender),
            next,
            hops,
            relays,
        };
        let jitter = self.params.rep_forward_jitter;
        self.send_control_jittered(ctx, Dest::Unicast(sim_id(next)), pkt, jitter);
    }

    fn install_route(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        dest: NodeId,
        next: NodeId,
        hops: u8,
        relays: Vec<NodeId>,
        am_source: bool,
    ) {
        if dest == self.me {
            return;
        }
        if let Some(lw) = &self.lw {
            if lw.is_isolated(next) {
                return;
            }
        }
        let now = ctx.now();
        let replace = match self.fresh_route(now, dest) {
            None => true,
            Some(existing) => match self.params.route_selection {
                RouteSelection::FirstReply => false,
                RouteSelection::ShortestHops => hops < existing.hops,
            },
        };
        if !replace {
            return;
        }
        self.discovering.remove(&dest);
        self.routes.insert(
            dest,
            RouteEntry {
                next,
                hops,
                established: now,
                relays: relays.clone(),
            },
        );
        if am_source {
            self.retry_attempts.remove(&dest);
            ctx.metrics().incr("routes_established");
            ctx.trace(TraceKind::RouteEstablished {
                dest: dest.0,
                hops: hops as u32,
            });
            self.route_log.push(RouteRecord {
                time: now,
                dest,
                hops,
                relays,
            });
            self.flush_pending(ctx, dest);
        }
    }

    fn fresh_route(&self, now: SimTime, dest: NodeId) -> Option<&RouteEntry> {
        self.routes
            .get(&dest)
            .filter(|r| now.saturating_since(r.established) < self.params.route_timeout)
    }

    // ------------------------------------------------------------------
    // Data plane.
    // ------------------------------------------------------------------

    fn handle_data(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        origin: NodeId,
        target: NodeId,
        seq: u64,
        from: NodeId,
    ) {
        if target == self.me {
            self.stats.data_delivered += 1;
            ctx.metrics().incr("data_delivered");
            return;
        }
        let next = self
            .fresh_route(ctx.now(), target)
            .map(|r| r.next)
            .filter(|&n| self.lw.as_ref().is_none_or(|lw| !lw.is_isolated(n)));
        match next {
            Some(next) => {
                self.stats.data_forwarded += 1;
                let pkt = Packet::Data {
                    origin,
                    target,
                    seq,
                    sender: self.me,
                    prev: Some(from),
                    next,
                };
                self.send_data(ctx, next, pkt);
            }
            None => {
                self.stats.data_no_route += 1;
                ctx.metrics().incr("data_no_route");
                // With data-plane monitoring on, tell the neighborhood
                // why we are not forwarding: guards waive our obligation
                // and the upstream node purges its stale route through
                // us. (Off by default — the paper's protocol has no
                // route-error signaling.)
                if self.lw.as_ref().is_some_and(|lw| lw.config().monitor_data) {
                    let pkt = Packet::RouteError {
                        sender: self.me,
                        sig: PacketSig {
                            kind: PacketKind::Data,
                            origin,
                            target,
                            seq,
                        },
                    };
                    let bytes = pkt.wire_bytes();
                    ctx.send(FrameSpec::new(Dest::Broadcast, pkt, bytes));
                }
            }
        }
    }

    /// Transmits a data packet, feeding it to our own monitor when
    /// data-plane monitoring is enabled (we guard our own outgoing links).
    fn send_data(&mut self, ctx: &mut Context<'_, Packet>, next: NodeId, pkt: Packet) {
        self.monitor_packet(ctx, &pkt);
        let bytes = pkt.wire_bytes();
        ctx.send(FrameSpec::new(Dest::Unicast(sim_id(next)), pkt, bytes));
    }

    fn generate_data(&mut self, ctx: &mut Context<'_, Packet>) {
        let Some(dest) = self.current_dest else {
            return;
        };
        self.seq += 1;
        let seq = self.seq;
        self.stats.data_originated += 1;
        ctx.metrics().incr("data_sent");
        if self.fresh_route(ctx.now(), dest).is_some() {
            let next = self.routes[&dest].next;
            let pkt = Packet::Data {
                origin: self.me,
                target: dest,
                seq,
                sender: self.me,
                prev: None,
                next,
            };
            self.send_data(ctx, next, pkt);
        } else {
            let q = self.pending_data.entry(dest).or_default();
            if q.len() >= self.params.pending_queue_cap {
                q.pop_front();
                ctx.metrics().incr("data_queue_overflow");
            }
            q.push_back(seq);
            self.start_discovery(ctx, dest);
        }
    }

    fn flush_pending(&mut self, ctx: &mut Context<'_, Packet>, dest: NodeId) {
        let Some(queue) = self.pending_data.remove(&dest) else {
            return;
        };
        let Some(next) = self.fresh_route(ctx.now(), dest).map(|r| r.next) else {
            self.pending_data.insert(dest, queue);
            return;
        };
        for seq in queue {
            let pkt = Packet::Data {
                origin: self.me,
                target: dest,
                seq,
                sender: self.me,
                prev: None,
                next,
            };
            self.send_data(ctx, next, pkt);
        }
    }

    fn start_discovery(&mut self, ctx: &mut Context<'_, Packet>, dest: NodeId) {
        if self.discovering.contains(&dest) {
            return;
        }
        self.discovering.insert(dest);
        self.stats.discoveries += 1;
        ctx.metrics().incr("route_requests");
        self.seq += 1;
        let sig = PacketSig {
            kind: PacketKind::RouteRequest,
            origin: self.me,
            target: dest,
            seq: self.seq,
        };
        self.seen_reqs.insert((self.me, self.seq));
        let pkt = Packet::RouteRequest {
            sig,
            sender: self.me,
            prev: None,
            hops: 0,
        };
        self.send_control(ctx, Dest::Broadcast, pkt);
        // Exponential backoff across consecutive failed discoveries for
        // the same destination keeps a partitioned or congested network
        // from locking itself into a flood storm.
        let attempt = self.retry_attempts.entry(dest).or_insert(0);
        let backoff = self
            .params
            .request_retry
            .mul_f64(f64::from(1 << (*attempt).min(4)));
        *attempt = attempt.saturating_add(1);
        ctx.set_timer(backoff, timer::encode(timer::REQ_RETRY, dest.0 as u64));
    }

    fn pick_new_destination(&mut self, ctx: &mut Context<'_, Packet>) {
        if let Some(pool) = &self.params.dest_pool {
            // A pool with no usable entry (empty, or only ourselves)
            // leaves the node destination-less: it relays and guards but
            // originates nothing.
            self.current_dest = None;
            if pool.iter().all(|&d| d == self.me) {
                return;
            }
            loop {
                let candidate = pool[ctx.rng().gen_range(0..pool.len())];
                if candidate != self.me {
                    self.current_dest = Some(candidate);
                    return;
                }
            }
        }
        let n = self.params.total_nodes;
        if n < 2 {
            self.current_dest = None;
            return;
        }
        loop {
            let candidate = NodeId(ctx.rng().gen_range(0..n));
            if candidate != self.me {
                self.current_dest = Some(candidate);
                return;
            }
        }
    }
}

/// Samples an exponential delay with the given mean, clamped to ≥ 1 µs.
fn exp_sample(ctx: &mut Context<'_, Packet>, mean: SimDuration) -> SimDuration {
    let u: f64 = ctx.rng().gen_range(f64::EPSILON..1.0);
    let secs = -mean.as_secs_f64() * u.ln();
    SimDuration::from_micros((secs * 1e6).max(1.0) as u64)
}

impl NodeLogic<Packet> for ProtocolNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        self.handle_start(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Context<'_, Packet>, frame: &Frame<Packet>) {
        self.handle_frame(ctx, frame);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Packet>, token: u64) {
        self.handle_timer(ctx, token);
    }

    fn on_collision(&mut self, ctx: &mut Context<'_, Packet>) {
        self.handle_collision(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_token_round_trip() {
        let t = timer::encode(timer::REQ_RETRY, 42);
        assert_eq!(timer::kind(t), timer::REQ_RETRY);
        assert_eq!(timer::payload(t), 42);
    }

    #[test]
    fn id_conversions() {
        assert_eq!(sim_id(NodeId(7)).0, 7);
        assert_eq!(core_id(liteworp_netsim::field::NodeId(9)), NodeId(9));
        assert_eq!(micros(SimTime::from_micros(5)).0, 5);
    }

    #[test]
    fn node_construction_respects_liteworp_flag() {
        let protected = ProtocolNode::new(NodeId(0), NodeParams::default());
        assert!(protected.liteworp().is_some());
        let baseline = ProtocolNode::new(
            NodeId(0),
            NodeParams {
                liteworp: None,
                ..NodeParams::default()
            },
        );
        assert!(baseline.liteworp().is_none());
    }

    #[test]
    fn route_queries_start_empty() {
        let n = ProtocolNode::new(NodeId(0), NodeParams::default());
        assert_eq!(n.route_next_hop(NodeId(1)), None);
        assert_eq!(n.reverse_hop(NodeId(1), 1), None);
        assert!(n.route_log().is_empty());
        assert_eq!(n.stats().data_originated, 0);
    }
}
