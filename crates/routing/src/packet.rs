//! The wire packets of the simulated data-exchange protocol (Section 6).
//!
//! The protocol is the paper's "generic on-demand shortest path routing
//! that floods route requests and unicasts route replies in the reverse
//! direction", carrying the previous-hop announcement LITEWORP's local
//! monitoring requires, plus the discovery and alert messages.
//!
//! All identities inside packets are **announced** values: the radio does
//! not authenticate who really transmitted a frame, so honest logic must
//! trust only packet contents (that is what makes relay/spoofing attacks
//! expressible in the simulator).

use liteworp::discovery::DiscoveryMsg;
use liteworp::keys::Mac;
use liteworp::types::{NodeId, PacketSig};

/// A protocol packet (the netsim payload type of this reproduction).
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// Neighbor-discovery traffic.
    Discovery {
        /// Announced sender.
        sender: NodeId,
        /// The discovery message.
        msg: DiscoveryMsg,
    },
    /// Flooded route request.
    RouteRequest {
        /// Hop-independent identity: `origin` is the route source `S`,
        /// `target` the sought destination `D`.
        sig: PacketSig,
        /// Announced transmitter of this copy.
        sender: NodeId,
        /// Announced previous hop (`None` at the origin).
        prev: Option<NodeId>,
        /// Hops traversed so far.
        hops: u8,
    },
    /// Route reply, unicast hop-by-hop along the reverse path.
    RouteReply {
        /// `origin` is the destination `D` that generated the reply,
        /// `target` the route source `S` it travels to; `seq` matches the
        /// request.
        sig: PacketSig,
        /// Announced transmitter of this copy.
        sender: NodeId,
        /// Announced previous hop (`None` at `D`).
        prev: Option<NodeId>,
        /// Link-layer next hop.
        next: NodeId,
        /// Hop count of the discovered forward route (from the request).
        hops: u8,
        /// Ground-truth relay list, appended by every node that carries
        /// the reply. **Telemetry only** — honest logic never reads it;
        /// experiments use it to classify established routes as malicious.
        relays: Vec<NodeId>,
    },
    /// Application data, unicast hop-by-hop along an established route.
    Data {
        /// The node that generated the data.
        origin: NodeId,
        /// Final destination.
        target: NodeId,
        /// Origin-assigned sequence number.
        seq: u64,
        /// Announced transmitter of this copy.
        sender: NodeId,
        /// Announced previous hop (`None` at the origin). Used only when
        /// data-plane monitoring is enabled.
        prev: Option<NodeId>,
        /// Link-layer next hop.
        next: NodeId,
    },
    /// Route error: the sender could not forward the identified data
    /// packet (no fresh route). Guards waive its forward obligation, and
    /// upstream nodes purge routes through the sender.
    RouteError {
        /// The node announcing the failure.
        sender: NodeId,
        /// Identity of the data packet it could not forward.
        sig: PacketSig,
    },
    /// Authenticated alert: `guard` accuses `suspect` (Section 4.2.2).
    Alert {
        /// Accusing guard.
        guard: NodeId,
        /// Accused node.
        suspect: NodeId,
        /// Link-layer recipient (a neighbor of the suspect).
        to: NodeId,
        /// Tag under the guard–recipient pairwise key.
        mac: Mac,
    },
}

impl Packet {
    /// Approximate wire size in bytes, used for airtime computation.
    ///
    /// Sizes follow the Section 5.2 accounting: 4-byte identities, 8-byte
    /// sequence numbers, 8-byte MACs, small fixed headers.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Packet::Discovery { msg, .. } => match msg {
                DiscoveryMsg::Hello => 8,
                DiscoveryMsg::HelloReply { .. } => 16,
                DiscoveryMsg::ListAnnounce { list, tags } => 8 + 4 * list.len() + 12 * tags.len(),
                DiscoveryMsg::ListRequest => 8,
            },
            Packet::RouteRequest { .. } => 26,
            Packet::RouteReply { relays, .. } => 30 + 4 * relays.len(),
            Packet::Data { .. } => 44,
            Packet::RouteError { .. } => 22,
            Packet::Alert { .. } => 24,
        }
    }

    /// The announced transmitter of this packet, if it carries one.
    pub fn announced_sender(&self) -> Option<NodeId> {
        match self {
            Packet::Discovery { sender, .. } => Some(*sender),
            Packet::RouteRequest { sender, .. } => Some(*sender),
            Packet::RouteReply { sender, .. } => Some(*sender),
            Packet::Data { sender, .. } => Some(*sender),
            Packet::RouteError { sender, .. } => Some(*sender),
            Packet::Alert { guard, .. } => Some(*guard),
        }
    }

    /// The announced previous hop, for control packets that carry one.
    pub fn claimed_prev(&self) -> Option<NodeId> {
        match self {
            Packet::RouteRequest { prev, .. } => *prev,
            Packet::RouteReply { prev, .. } => *prev,
            Packet::Data { prev, .. } => *prev,
            _ => None,
        }
    }

    /// The hop-independent signature, for monitored control packets.
    pub fn sig(&self) -> Option<PacketSig> {
        match self {
            Packet::RouteRequest { sig, .. } => Some(*sig),
            Packet::RouteReply { sig, .. } => Some(*sig),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liteworp::types::PacketKind;

    fn sig() -> PacketSig {
        PacketSig {
            kind: PacketKind::RouteRequest,
            origin: NodeId(1),
            target: NodeId(2),
            seq: 3,
        }
    }

    #[test]
    fn wire_sizes_are_plausible() {
        let req = Packet::RouteRequest {
            sig: sig(),
            sender: NodeId(1),
            prev: None,
            hops: 0,
        };
        assert!(req.wire_bytes() < 64, "control packets stay small");
        let ann = Packet::Discovery {
            sender: NodeId(1),
            msg: DiscoveryMsg::ListAnnounce {
                list: vec![NodeId(2); 10],
                tags: vec![],
            },
        };
        assert_eq!(ann.wire_bytes(), 48);
    }

    #[test]
    fn reply_size_grows_with_relay_telemetry() {
        let mk = |n: usize| Packet::RouteReply {
            sig: sig(),
            sender: NodeId(1),
            prev: None,
            next: NodeId(2),
            hops: 3,
            relays: vec![NodeId(0); n],
        };
        assert!(mk(4).wire_bytes() > mk(0).wire_bytes());
    }

    #[test]
    fn accessors() {
        let req = Packet::RouteRequest {
            sig: sig(),
            sender: NodeId(5),
            prev: Some(NodeId(4)),
            hops: 2,
        };
        assert_eq!(req.announced_sender(), Some(NodeId(5)));
        assert_eq!(req.claimed_prev(), Some(NodeId(4)));
        assert_eq!(req.sig(), Some(sig()));
        let data = Packet::Data {
            origin: NodeId(1),
            target: NodeId(2),
            seq: 0,
            sender: NodeId(1),
            prev: None,
            next: NodeId(3),
        };
        assert_eq!(data.claimed_prev(), None);
        assert_eq!(data.sig(), None);
    }
}
