//! The simulated data-exchange protocol of LITEWORP's evaluation
//! (Section 6): a generic on-demand shortest-path routing protocol with
//! flooded route requests, reverse-path route replies, cached routes,
//! exponential data traffic — and the LITEWORP protection layer wired into
//! every node.
//!
//! * [`packet`] — the wire format (requests, replies, data, discovery,
//!   alerts), all carrying *announced* identities.
//! * [`node`] — [`node::ProtocolNode`], the honest node logic; its
//!   processing methods are public so the attack crate can wrap it.
//! * [`params`] — the Table 2 knobs (route timeout, traffic rates, route
//!   selection policy, discovery mode).
//! * [`bootstrap`] — oracle preloading of neighbor tables from geometry.
//! * [`stats`] — per-node counters and the ground-truth route log.
//!
//! # Example
//!
//! Build a protected node and inspect its configuration:
//!
//! ```
//! use liteworp_routing::node::ProtocolNode;
//! use liteworp_routing::params::NodeParams;
//! use liteworp::types::NodeId;
//!
//! let node = ProtocolNode::new(NodeId(0), NodeParams {
//!     total_nodes: 10,
//!     ..NodeParams::default()
//! });
//! assert!(node.liteworp().is_some(), "protection on by default");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod node;
pub mod packet;
pub mod params;
pub mod stats;

pub use node::ProtocolNode;
pub use packet::Packet;
pub use params::{DiscoveryMode, NodeParams, RouteSelection};
