//! Oracle bootstrap of neighbor knowledge from deployment geometry.
//!
//! The paper treats neighbor discovery as a secure one-time step completed
//! before any insider attacker can act (the `T_CT` assumption, Section
//! 4.1). Experiments that do not study discovery itself can therefore
//! preload every node's first- and second-hop tables straight from the
//! deployment geometry, which decouples the evaluation from discovery
//! message losses. Message-level discovery remains available through
//! [`crate::params::DiscoveryMode::Messages`] and is exercised by its own
//! tests.

use crate::node::core_id;
use liteworp::Liteworp;
use liteworp_netsim::field::{Field, NodeId as SimNodeId};

/// Preloads `lw`'s neighbor tables as if node `me` had completed secure
/// discovery on `field`: all nodes in range become first-hop neighbors,
/// and each neighbor's own range set is stored as second-hop knowledge.
///
/// # Example
///
/// ```
/// use liteworp::prelude::*;
/// use liteworp_netsim::field::{Field, NodeId, Position};
/// use liteworp_routing::bootstrap::preload_liteworp;
///
/// let field = Field::from_positions(100.0, 30.0, vec![
///     Position::new(0.0, 0.0),
///     Position::new(20.0, 0.0),
///     Position::new(40.0, 0.0),
/// ]);
/// let mut lw = Liteworp::new(Config::default(), KeyStore::new(7, liteworp::types::NodeId(0)));
/// preload_liteworp(&mut lw, NodeId(0), &field);
/// // Node 1 is in range; node 2 is not (40 m > 30 m)...
/// assert!(lw.table().is_active_neighbor(liteworp::types::NodeId(1)));
/// assert!(!lw.table().is_neighbor(liteworp::types::NodeId(2)));
/// // ...but node 2 is known as a second-hop neighbor through node 1.
/// assert!(lw.table().link_plausible(liteworp::types::NodeId(2), liteworp::types::NodeId(1)));
/// ```
pub fn preload_liteworp(lw: &mut Liteworp, me: SimNodeId, field: &Field) {
    let table = lw.table_mut();
    let neighbors = field.in_range_of(me);
    for &nb in &neighbors {
        table.add_neighbor(core_id(nb));
    }
    for &nb in &neighbors {
        let list = field.in_range_of(nb).into_iter().map(core_id);
        table.set_neighbor_list(core_id(nb), list);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liteworp::config::Config;
    use liteworp::keys::KeyStore;
    use liteworp::types::NodeId;
    use liteworp_netsim::field::Position;

    fn chain() -> Field {
        Field::from_positions(
            200.0,
            30.0,
            (0..5)
                .map(|i| Position::new(25.0 * i as f64, 0.0))
                .collect(),
        )
    }

    fn lw_for(i: u32, field: &Field) -> Liteworp {
        let mut lw = Liteworp::new(Config::default(), KeyStore::new(7, NodeId(i)));
        preload_liteworp(&mut lw, SimNodeId(i), field);
        lw
    }

    #[test]
    fn chain_tables_match_geometry() {
        let field = chain();
        let lw = lw_for(2, &field);
        assert!(lw.table().is_active_neighbor(NodeId(1)));
        assert!(lw.table().is_active_neighbor(NodeId(3)));
        assert!(!lw.table().is_neighbor(NodeId(0)));
        assert!(!lw.table().is_neighbor(NodeId(4)));
        // Second hop via 1 and 3.
        assert!(lw.table().link_plausible(NodeId(0), NodeId(1)));
        assert!(lw.table().link_plausible(NodeId(4), NodeId(3)));
        assert!(!lw.table().link_plausible(NodeId(4), NodeId(1)));
    }

    #[test]
    fn guard_relationships_follow_geometry() {
        // Make a triangle 0-1-2 all within range, plus distant node 3.
        let field = Field::from_positions(
            200.0,
            30.0,
            vec![
                Position::new(0.0, 0.0),
                Position::new(20.0, 0.0),
                Position::new(10.0, 15.0),
                Position::new(150.0, 150.0),
            ],
        );
        let lw = lw_for(0, &field);
        assert!(lw.table().is_guard_of(NodeId(1), NodeId(2)));
        assert!(lw.table().is_guard_of(NodeId(2), NodeId(1)));
        assert!(!lw.table().is_guard_of(NodeId(3), NodeId(1)));
    }
}
