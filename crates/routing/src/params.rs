//! Protocol-node parameters (the knobs of Table 2).

use liteworp::config::Config;
use liteworp::types::NodeId;
use liteworp_netsim::time::SimDuration;
use std::fmt;

/// How a node selects among multiple route replies for the same discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteSelection {
    /// Keep the route from the first reply that arrives (ARAN-style
    /// "fastest path"; neutralizes hop-count games — the Section 3.1
    /// remark).
    FirstReply,
    /// Prefer the reply claiming the fewest hops (the classic metric the
    /// wormhole exploits). This is the paper's vulnerable default.
    ShortestHops,
}

/// How a node obtains its neighbor knowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoveryMode {
    /// Run the message-level HELLO / reply / announce exchange at start,
    /// collecting replies for the given window.
    Messages {
        /// Reply-collection window before the list announcement.
        collect: SimDuration,
    },
    /// The host preloaded the neighbor tables (oracle bootstrap): the
    /// paper treats discovery as a secure one-time step, so experiments
    /// may skip the message exchange to decouple results from discovery
    /// losses.
    Preloaded,
    /// Like [`DiscoveryMode::Messages`], for a node deployed *after* the
    /// rest of the network: after announcing its own list it additionally
    /// broadcasts a `ListRequest` so established neighbors re-announce
    /// theirs, giving the joiner second-hop knowledge. This is the
    /// incremental-deployment / mobility hook of Section 7.
    LateJoin {
        /// Reply-collection window before the list announcement.
        collect: SimDuration,
    },
}

/// Configuration of one protocol node.
#[derive(Clone)]
pub struct NodeParams {
    /// Total nodes in the network (for random destination selection).
    pub total_nodes: u32,
    /// LITEWORP configuration; `None` runs the unprotected baseline.
    pub liteworp: Option<Config>,
    /// Network-wide key seed (models pre-distributed pairwise keys).
    pub key_seed: u64,
    /// Route-cache lifetime `TOut_Route` (Table 2: 50 s).
    pub route_timeout: SimDuration,
    /// Mean of the exponential data inter-arrival time (Table 2: 10 s);
    /// `None` disables traffic generation at this node.
    pub data_interval_mean: Option<SimDuration>,
    /// Mean time between random destination changes (Table 2: 200 s).
    pub dest_change_mean: SimDuration,
    /// Route-reply selection policy.
    pub route_selection: RouteSelection,
    /// Neighbor-knowledge bootstrap mode.
    pub discovery: DiscoveryMode,
    /// Period of the watch-buffer expiry tick (≤ δ for timely drop
    /// detection).
    pub expire_tick: SimDuration,
    /// How long to wait for a route reply before re-flooding a request.
    pub request_retry: SimDuration,
    /// Protocol-level random backoff before forwarding a route request
    /// (uniform in `[0, jitter]`). The paper's Section 3.5 notes that
    /// honest nodes "back off for a random amount of time before
    /// forwarding" to reduce MAC collisions during floods — skipping it
    /// is exactly the rushing attack.
    pub req_forward_jitter: SimDuration,
    /// Random delay before generating or forwarding a route reply
    /// (uniform in `[0, jitter]`), letting the request flood die down so
    /// guards reliably overhear every reply hop.
    pub rep_forward_jitter: SimDuration,
    /// Maximum data packets queued per destination while discovering.
    pub pending_queue_cap: usize,
    /// Whether alerts to out-of-range recipients are relayed through a
    /// common neighbor (one hop). Disabling this models the paper's bare
    /// "multiple unicasts" reading and is used by the ablation study.
    pub relay_alerts: bool,
    /// Maximum hops a route-request flood may traverse (`None` =
    /// network-wide, the paper-scale default). A request whose
    /// rebroadcast would exceed the TTL is consumed — reverse-path state
    /// and destination replies still work — but not re-flooded, like
    /// AODV's expanding-ring search. Scale experiments use this to keep
    /// per-discovery work independent of the network size.
    pub rreq_ttl: Option<u8>,
    /// Candidate data destinations (`None` = any node). Scale scenarios
    /// restrict each source to the destinations a TTL-scoped discovery
    /// can actually reach (its h-hop neighborhood).
    pub dest_pool: Option<Vec<NodeId>>,
    /// Uniform random delay before this node's *first* data packet. A
    /// cold-start network where every node floods a route request in the
    /// same few seconds collapses any 40 kbps channel; real deployments
    /// ramp up, so we spread the initial discoveries.
    pub traffic_warmup: SimDuration,
}

/// Hand-written so the Debug string is an explicit contract: scenario
/// descriptors hash `{:?}` output to derive experiment seeds, so a
/// derived impl would silently re-seed every run whenever a field is
/// added or reordered (lint rule R001). Field order matches the struct
/// declaration and the output is byte-identical to the former derive.
impl fmt::Debug for NodeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeParams")
            .field("total_nodes", &self.total_nodes)
            .field("liteworp", &self.liteworp)
            .field("key_seed", &self.key_seed)
            .field("route_timeout", &self.route_timeout)
            .field("data_interval_mean", &self.data_interval_mean)
            .field("dest_change_mean", &self.dest_change_mean)
            .field("route_selection", &self.route_selection)
            .field("discovery", &self.discovery)
            .field("expire_tick", &self.expire_tick)
            .field("request_retry", &self.request_retry)
            .field("req_forward_jitter", &self.req_forward_jitter)
            .field("rep_forward_jitter", &self.rep_forward_jitter)
            .field("pending_queue_cap", &self.pending_queue_cap)
            .field("relay_alerts", &self.relay_alerts)
            .field("rreq_ttl", &self.rreq_ttl)
            .field("dest_pool", &self.dest_pool)
            .field("traffic_warmup", &self.traffic_warmup)
            .finish()
    }
}

impl Default for NodeParams {
    fn default() -> Self {
        NodeParams {
            total_nodes: 0,
            liteworp: Some(Config::default()),
            key_seed: 0x117e_0042,
            route_timeout: SimDuration::from_secs(50),
            data_interval_mean: Some(SimDuration::from_secs(10)),
            dest_change_mean: SimDuration::from_secs(200),
            route_selection: RouteSelection::ShortestHops,
            discovery: DiscoveryMode::Preloaded,
            expire_tick: SimDuration::from_millis(250),
            request_retry: SimDuration::from_secs(3),
            req_forward_jitter: SimDuration::from_millis(120),
            rep_forward_jitter: SimDuration::from_millis(150),
            pending_queue_cap: 8,
            relay_alerts: true,
            rreq_ttl: None,
            dest_pool: None,
            traffic_warmup: SimDuration::from_secs(30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_table_2() {
        let p = NodeParams::default();
        assert_eq!(p.route_timeout, SimDuration::from_secs(50));
        assert_eq!(p.data_interval_mean, Some(SimDuration::from_secs(10)));
        assert_eq!(p.dest_change_mean, SimDuration::from_secs(200));
        assert_eq!(p.route_selection, RouteSelection::ShortestHops);
        assert!(p.liteworp.is_some());
    }
}
