//! Per-node statistics and route telemetry.

use liteworp::types::NodeId;
use liteworp_netsim::time::SimTime;

/// Counters a protocol node maintains about its own behavior.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Data packets this node originated.
    pub data_originated: u64,
    /// Data packets delivered here as the final destination.
    pub data_delivered: u64,
    /// Data packets forwarded for others.
    pub data_forwarded: u64,
    /// Data packets dropped for lack of a route.
    pub data_no_route: u64,
    /// Frames refused at admission (non-neighbor, revoked, implausible
    /// previous hop).
    pub frames_rejected: u64,
    /// Route discoveries initiated.
    pub discoveries: u64,
    /// Alert messages transmitted as an accusing guard.
    pub alerts_sent: u64,
    /// Alert messages accepted from other guards.
    pub alerts_accepted: u64,
}

/// One established route, recorded at the source when the reply arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteRecord {
    /// When the route was installed.
    pub time: SimTime,
    /// Destination of the route.
    pub dest: NodeId,
    /// Hop count the reply claimed.
    pub hops: u8,
    /// Ground-truth relays of the reply (telemetry from the packet):
    /// experiments use this to classify the route as wormhole-affected.
    pub relays: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_to_zero() {
        let s = NodeStats::default();
        assert_eq!(s.data_originated, 0);
        assert_eq!(s, NodeStats::default());
    }

    #[test]
    fn route_record_is_inspectable() {
        let r = RouteRecord {
            time: SimTime::from_micros(5),
            dest: NodeId(3),
            hops: 4,
            relays: vec![NodeId(1), NodeId(2)],
        };
        assert_eq!(r.relays.len(), 2);
    }
}
