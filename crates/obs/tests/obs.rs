//! Integration tests for the observability plane: concurrent metric
//! updates snapshot and merge deterministically, and a span tree is
//! reconstructable from the profiler's folded output alone.

use liteworp_obs as obs;
use liteworp_telemetry::Histogram;

/// Eight threads hammer one counter and one histogram; the snapshot must
/// account for every update, and merging per-shard snapshots must be
/// order-independent (the merge is associative and commutative).
#[test]
fn concurrent_increments_snapshot_and_merge_deterministically() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 1000;
    let counter = obs::counter("test.it.concurrent_counter");
    let hist = obs::histogram("test.it.concurrent_hist");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let snap = obs::snapshot();
    assert_eq!(
        snap.counters.get("test.it.concurrent_counter"),
        Some(&(THREADS * PER_THREAD))
    );
    let h = snap
        .histograms
        .get("test.it.concurrent_hist")
        .expect("registered");
    assert_eq!(h.count(), THREADS * PER_THREAD);
    assert_eq!(h.min(), Some(0));
    assert_eq!(h.max(), Some(THREADS * PER_THREAD - 1));
    // Interleaving-independent sum: 0 + 1 + … + (N*P - 1).
    let n = THREADS * PER_THREAD;
    assert_eq!(h.sum(), n * (n - 1) / 2);

    // Shard merge determinism: distinct per-worker snapshots with
    // overlapping names fold to the same result in any order.
    let shard = |offset: u64| {
        let mut s = obs::Snapshot::default();
        s.counters.insert("shared.counter".into(), offset);
        s.counters.insert(format!("only.{offset}"), 1);
        s.gauges.insert("shared.gauge".into(), offset as i64 - 2);
        let mut h = Histogram::default();
        h.record(offset);
        h.record(offset * 1000 + 7);
        s.histograms.insert("shared.hist".into(), h);
        s
    };
    let shards: Vec<obs::Snapshot> = (1..=4).map(shard).collect();
    let mut forward = obs::Snapshot::default();
    for s in &shards {
        forward.merge(s);
    }
    let mut backward = obs::Snapshot::default();
    for s in shards.iter().rev() {
        backward.merge(s);
    }
    assert_eq!(forward, backward, "merge order must not matter");
    assert_eq!(forward.counters.get("shared.counter"), Some(&10));
    assert_eq!(forward.gauges.get("shared.gauge"), Some(&2));
    assert_eq!(
        forward.histograms.get("shared.hist").map(Histogram::count),
        Some(8)
    );
    // And the merged result still round-trips through JSON.
    let json = forward.to_json();
    assert_eq!(obs::Snapshot::from_json(&json), Some(forward));
}

/// Runs a known span tree, then rebuilds its shape and inclusive times
/// from nothing but the folded profile text.
#[test]
fn span_tree_reconstructs_from_folded_output() {
    obs::enable();
    obs::profile::reset();
    let root_id;
    let sweep_id;
    {
        let _request = obs::span("request");
        root_id = obs::current_span_id().expect("root id");
        {
            let _sweep = obs::span("sweep");
            sweep_id = obs::current_span_id().expect("sweep id");
            for _ in 0..2 {
                let _job = obs::span("job");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        {
            let _detect = obs::span("detection");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    let folded = obs::profile::folded();
    let profile = obs::profile::parse_folded(&folded);
    let stacks: Vec<&Vec<String>> = profile.keys().collect();
    assert!(
        stacks.iter().any(|s| s.as_slice() == ["request"]),
        "missing root stack in {folded:?}"
    );
    assert!(stacks
        .iter()
        .any(|s| s.as_slice() == ["request", "sweep", "job"]));
    assert!(stacks
        .iter()
        .any(|s| s.as_slice() == ["request", "detection"]));

    // Inclusive times recovered by prefix summation are monotone down
    // the tree and reflect the sleeps the leaves did.
    let inclusive = obs::profile::inclusive_times(&profile);
    let at = |path: &[&str]| -> u64 {
        let key: Vec<String> = path.iter().map(|s| s.to_string()).collect();
        *inclusive.get(&key).expect("inclusive path")
    };
    let request = at(&["request"]);
    let sweep = at(&["request", "sweep"]);
    let job = at(&["request", "sweep", "job"]);
    let detection = at(&["request", "detection"]);
    assert!(request >= sweep + detection, "{folded}");
    assert!(sweep >= job);
    assert!(job >= 4_000, "two 2 ms sleeps: {job} us");
    assert!(detection >= 1_000);

    // The IDs observed live are the deterministic ones: a second run of
    // the same shape sees the same identifiers.
    {
        let _request = obs::span("request");
        assert_eq!(obs::current_span_id(), Some(root_id));
        let _sweep = obs::span("sweep");
        assert_eq!(obs::current_span_id(), Some(sweep_id));
    }
}
