//! Hierarchical wall-clock spans with deterministic identifiers.
//!
//! A span is an RAII scope: [`span("name")`](span) pushes a frame onto a
//! thread-local stack and the returned [`SpanGuard`] pops it on drop,
//! recording the frame's inclusive duration into the `span_us.<name>`
//! registry histogram and its *self* time (inclusive minus children)
//! into the folded-stack profile under the full `a;b;c` path.
//!
//! Identifiers are deterministic: a root span's id is `fnv64(name)` and
//! a child's id hashes `(parent_id, name, child_index)`, so the same
//! call tree yields the same ids on every run — wall-clock readings
//! color the tree but never shape it.
//!
//! With the plane disabled ([`crate::enabled`] false) a span is inert:
//! one relaxed atomic load, one branch, no clock read, no TLS touch.

use crate::{clock, profile, registry};
use liteworp_runner::cache::fnv64;
use std::cell::RefCell;

struct Frame {
    name: &'static str,
    id: u64,
    /// Semicolon-joined ancestor names ending in `name` (the folded key).
    path: String,
    start_us: u64,
    /// Summed inclusive time of already-closed direct children.
    child_us: u64,
    /// Number of direct children opened so far (feeds child ids).
    child_count: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Derives a child span id from its parent id, name, and birth index.
fn child_id(parent_id: u64, name: &str, index: u64) -> u64 {
    let mut bytes = Vec::with_capacity(16 + name.len());
    bytes.extend_from_slice(&parent_id.to_le_bytes());
    bytes.extend_from_slice(name.as_bytes());
    bytes.extend_from_slice(&index.to_le_bytes());
    fnv64(&bytes)
}

/// Opens a span named `name` under the current thread's innermost open
/// span (or as a root). Returns the guard that closes it on drop.
///
/// `name` should be listed in [`crate::names::SPAN_NAMES`] — lint rule
/// S003 checks literal call sites against that registry.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: false };
    }
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let (id, path) = match stack.last_mut() {
            Some(parent) => {
                let id = child_id(parent.id, name, parent.child_count);
                parent.child_count += 1;
                (id, format!("{};{}", parent.path, name))
            }
            None => (fnv64(name.as_bytes()), name.to_string()),
        };
        stack.push(Frame {
            name,
            id,
            path,
            start_us: clock::now_micros(),
            child_us: 0,
            child_count: 0,
        });
    });
    SpanGuard { live: true }
}

/// The deterministic id of the current thread's innermost open span, or
/// `None` outside any span (or with the plane disabled).
pub fn current_span_id() -> Option<u64> {
    STACK.with(|stack| stack.borrow().last().map(|f| f.id))
}

/// Closes its span on drop. Not `Send`: a span belongs to the thread
/// that opened it (the stack is thread-local).
#[must_use = "a span measures the scope that holds its guard"]
pub struct SpanGuard {
    live: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let Some(frame) = stack.pop() else {
                return;
            };
            let inclusive_us = clock::now_micros().saturating_sub(frame.start_us);
            let self_us = inclusive_us.saturating_sub(frame.child_us);
            profile::record(&frame.path, self_us);
            registry::record_span_us(frame.name, inclusive_us);
            match stack.last_mut() {
                Some(parent) => parent.child_us += inclusive_us,
                // Root closed: publish this thread's profile buffer.
                None => profile::flush_thread(),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_ids_are_deterministic_and_positional() {
        let root = fnv64(b"job");
        assert_eq!(
            child_id(root, "event_loop", 0),
            child_id(root, "event_loop", 0)
        );
        assert_ne!(
            child_id(root, "event_loop", 0),
            child_id(root, "event_loop", 1)
        );
        assert_ne!(
            child_id(root, "event_loop", 0),
            child_id(root, "detection", 0)
        );
    }

    #[test]
    fn disabled_span_leaves_no_trace() {
        crate::disable();
        let guard = span("job");
        assert_eq!(current_span_id(), None);
        drop(guard);
    }
}
