//! The folded-stack self-profiler.
//!
//! Span closings feed this module their full semicolon-joined path and
//! *self* time (inclusive minus children) in microseconds. Aggregated
//! output is the folded format every flamegraph renderer eats directly:
//!
//! ```text
//! job;event_loop 41830
//! job;event_loop;watch_buffer 1201
//! job;neighbor_discovery 922
//! ```
//!
//! Because counts are self-times, summing a stack's own line with all
//! lines it prefixes recovers the span's *inclusive* time (see
//! [`inclusive_times`]), and a parent's inclusive time always bounds its
//! children's — the invariant `scripts/obs_smoke.sh` asserts against a
//! live run.
//!
//! Threads buffer locally and publish under the global lock only when a
//! root span closes, so the hot path never contends.

use liteworp_runner::cache::atomic_write;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Mutex, OnceLock, PoisonError};

thread_local! {
    static LOCAL: RefCell<BTreeMap<String, u64>> = const { RefCell::new(BTreeMap::new()) };
}

fn global() -> &'static Mutex<BTreeMap<String, u64>> {
    static GLOBAL: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, u64>> {
    global().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Adds `self_us` to `path`'s bucket in the calling thread's buffer.
pub(crate) fn record(path: &str, self_us: u64) {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        match local.get_mut(path) {
            Some(total) => *total += self_us,
            None => {
                local.insert(path.to_string(), self_us);
            }
        }
    });
}

/// Publishes the calling thread's buffer into the global profile.
/// Called automatically when a root span closes.
pub(crate) fn flush_thread() {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        if local.is_empty() {
            return;
        }
        let mut map = lock();
        for (path, us) in std::mem::take(&mut *local) {
            *map.entry(path).or_insert(0) += us;
        }
    });
}

/// The aggregated profile as folded text: one `path count_us` line per
/// distinct stack, sorted by path, trailing newline. Empty string when
/// nothing was recorded. Includes the calling thread's unflushed buffer.
pub fn folded() -> String {
    flush_thread();
    let map = lock();
    let mut out = String::new();
    for (path, us) in map.iter() {
        out.push_str(path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// Clears the global profile and the calling thread's buffer.
pub fn reset() {
    LOCAL.with(|local| local.borrow_mut().clear());
    lock().clear();
}

/// Writes [`folded`] output to `path` atomically (temp file + rename).
pub fn write_folded(path: &Path) -> io::Result<()> {
    atomic_write(path, folded().as_bytes())
}

/// Parses folded text back into `stack frames → self-time` pairs.
/// Malformed lines (no count, empty stack) are skipped.
pub fn parse_folded(text: &str) -> BTreeMap<Vec<String>, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some((stack, count)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(count) = count.parse::<u64>() else {
            continue;
        };
        if stack.is_empty() {
            continue;
        }
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        *out.entry(frames).or_insert(0) += count;
    }
    out
}

/// Recovers each stack's *inclusive* time from parsed self-times: every
/// stack's count is credited to itself and all of its proper prefixes.
/// This is the span tree with aggregate durations — the parent ≥ sum of
/// children invariant holds by construction.
pub fn inclusive_times(profile: &BTreeMap<Vec<String>, u64>) -> BTreeMap<Vec<String>, u64> {
    let mut out: BTreeMap<Vec<String>, u64> = BTreeMap::new();
    for (frames, us) in profile {
        for depth in 1..=frames.len() {
            *out.entry(frames[..depth].to_vec()).or_insert(0) += us;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_inclusive_round_trip() {
        let text =
            "job 10\njob;event_loop 40\njob;event_loop;watch_buffer 5\njob;neighbor_discovery 2\n";
        let parsed = parse_folded(text);
        assert_eq!(parsed.len(), 4);
        let inclusive = inclusive_times(&parsed);
        assert_eq!(inclusive[&vec!["job".to_string()]], 57);
        assert_eq!(
            inclusive[&vec!["job".to_string(), "event_loop".to_string()]],
            45
        );
        assert_eq!(
            inclusive[&vec![
                "job".to_string(),
                "event_loop".to_string(),
                "watch_buffer".to_string()
            ]],
            5
        );
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let parsed = parse_folded("nocount\n 12\nok 3\nbad notanum\n");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[&vec!["ok".to_string()]], 3);
    }
}
