//! The process-global metrics registry: counters, gauges, and log2
//! histograms registered by name, with cheap atomic handles.
//!
//! Handles are `Arc`-shared atomics: incrementing a counter is one
//! relaxed `fetch_add` with no lock, so pool workers and daemon threads
//! share one time series without coordination. The registry mutex is
//! touched only at handle-creation and snapshot time. [`snapshot`]
//! produces an order-stable [`Snapshot`] that merges associatively and
//! commutatively across workers or daemons and round-trips through
//! JSON.

use liteworp_runner::Json;
use liteworp_telemetry::Histogram;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a signed instantaneous level (queue depth, in-flight
/// drains).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log2 buckets mirroring `liteworp_telemetry::Histogram`: index 0 holds
/// exactly 0; index `b ≥ 1` holds `[2^(b-1), 2^b - 1]`.
const BUCKETS: usize = 65;

/// Lock-free histogram storage behind a [`Hist`] handle.
struct AtomicHist {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHist {
    fn new() -> AtomicHist {
        AtomicHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let index = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Materializes the atomic state as a `telemetry::Histogram` (via its
    /// JSON contract, the type's one public constructor from parts).
    fn materialize(&self) -> Histogram {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                let le = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                buckets.push(Json::object([
                    ("le", Json::from(le)),
                    ("count", Json::from(c)),
                ]));
            }
        }
        let json = Json::object([
            ("count", Json::from(count)),
            ("sum", Json::from(self.sum.load(Ordering::Relaxed))),
            ("min", Json::from(self.min.load(Ordering::Relaxed))),
            ("max", Json::from(self.max.load(Ordering::Relaxed))),
            ("buckets", Json::Arr(buckets)),
        ]);
        Histogram::from_json(&json).unwrap_or_default()
    }
}

/// A histogram handle recording `u64` samples into log2 buckets.
#[derive(Clone)]
pub struct Hist(Arc<AtomicHist>);

impl Hist {
    /// Adds one sample.
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }
}

enum Entry {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Hist(Arc<AtomicHist>),
}

fn registry() -> &'static Mutex<BTreeMap<String, Entry>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, Entry>> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// The counter registered under `name` (created on first use). A name
/// already registered as a different metric kind yields a detached
/// handle that never appears in snapshots — kind conflicts are a
/// programming error the S003 name registry makes hard to reach.
pub fn counter(name: &str) -> Counter {
    let mut map = lock();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Entry::Counter(Arc::new(AtomicU64::new(0))))
    {
        Entry::Counter(c) => Counter(Arc::clone(c)),
        _ => Counter(Arc::new(AtomicU64::new(0))),
    }
}

/// The gauge registered under `name` (created on first use).
pub fn gauge(name: &str) -> Gauge {
    let mut map = lock();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Entry::Gauge(Arc::new(AtomicI64::new(0))))
    {
        Entry::Gauge(g) => Gauge(Arc::clone(g)),
        _ => Gauge(Arc::new(AtomicI64::new(0))),
    }
}

/// The histogram registered under `name` (created on first use).
pub fn histogram(name: &str) -> Hist {
    let mut map = lock();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Entry::Hist(Arc::new(AtomicHist::new())))
    {
        Entry::Hist(h) => Hist(Arc::clone(h)),
        _ => Hist(Arc::new(AtomicHist::new())),
    }
}

thread_local! {
    /// Per-thread cache of span-latency histogram handles, so a span
    /// close never takes the registry mutex on the hot path.
    static SPAN_HISTS: RefCell<BTreeMap<&'static str, Hist>> = const { RefCell::new(BTreeMap::new()) };
}

/// Records one span's inclusive duration into the `span_us.<name>`
/// histogram (the per-phase latency series the daemon's `stats` op
/// reports quantiles from).
pub(crate) fn record_span_us(name: &'static str, inclusive_us: u64) {
    SPAN_HISTS.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache
            .entry(name)
            .or_insert_with(|| histogram(&format!("span_us.{name}")))
            .record(inclusive_us);
    });
}

fn obj_pairs(json: &Json) -> Option<&[(String, Json)]> {
    match json {
        Json::Obj(pairs) => Some(pairs),
        _ => None,
    }
}

/// `Json` stores numbers as `f64`; gauges are signed, so they get their
/// own conversion with the same ±2^53 exactness window as `as_u64`.
fn json_i64(json: &Json) -> Option<i64> {
    let n = json.as_f64()?;
    const EXACT: f64 = (1u64 << 53) as f64;
    if n.fract() == 0.0 && (-EXACT..=EXACT).contains(&n) {
        Some(n as i64)
    } else {
        None
    }
}

/// An order-stable, mergeable, JSON-serializable view of the registry at
/// one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Snapshots every registered metric. Concurrent updates may land on
/// either side of the snapshot, but the result is always a value each
/// metric actually passed through.
pub fn snapshot() -> Snapshot {
    let map = lock();
    let mut snap = Snapshot::default();
    for (name, entry) in map.iter() {
        match entry {
            Entry::Counter(c) => {
                snap.counters
                    .insert(name.clone(), c.load(Ordering::Relaxed));
            }
            Entry::Gauge(g) => {
                snap.gauges.insert(name.clone(), g.load(Ordering::Relaxed));
            }
            Entry::Hist(h) => {
                snap.histograms.insert(name.clone(), h.materialize());
            }
        }
    }
    snap
}

impl Snapshot {
    /// Folds `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise. Addition is associative and commutative, so
    /// merging worker or daemon snapshots in any order yields the same
    /// result (the concurrent-merge determinism test pins this).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Serializes as `{"counters":{…},"gauges":{…},"histograms":{…}}`.
    pub fn to_json(&self) -> Json {
        let obj = |pairs: Vec<(String, Json)>| Json::Obj(pairs);
        Json::object([
            (
                "counters",
                obj(self
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(*v)))
                    .collect()),
            ),
            (
                "gauges",
                obj(self
                    .gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect()),
            ),
            (
                "histograms",
                obj(self
                    .histograms
                    .iter()
                    .map(|(k, h)| (k.clone(), h.to_json()))
                    .collect()),
            ),
        ])
    }

    /// Parses a snapshot back from its [`Snapshot::to_json`] shape.
    pub fn from_json(json: &Json) -> Option<Snapshot> {
        let mut snap = Snapshot::default();
        for (k, v) in obj_pairs(json.get("counters")?)? {
            snap.counters.insert(k.clone(), v.as_u64()?);
        }
        for (k, v) in obj_pairs(json.get("gauges")?)? {
            snap.gauges.insert(k.clone(), json_i64(v)?);
        }
        for (k, v) in obj_pairs(json.get("histograms")?)? {
            snap.histograms.insert(k.clone(), Histogram::from_json(v)?);
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_handles_share_state_by_name() {
        let a = counter("test.reg.counter");
        let b = counter("test.reg.counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = gauge("test.reg.gauge");
        g.set(5);
        g.add(-2);
        assert_eq!(gauge("test.reg.gauge").get(), 3);
    }

    #[test]
    fn kind_conflicts_yield_detached_handles() {
        counter("test.reg.conflict").inc();
        let g = gauge("test.reg.conflict");
        g.set(99);
        assert_eq!(g.get(), 99, "detached handle still works");
        let snap = snapshot();
        assert_eq!(snap.counters.get("test.reg.conflict"), Some(&1));
        assert!(!snap.gauges.contains_key("test.reg.conflict"));
    }

    #[test]
    fn histogram_materializes_with_exact_extrema() {
        let h = histogram("test.reg.hist");
        for v in [5u64, 9, 1000] {
            h.record(v);
        }
        let snap = snapshot();
        let got = snap.histograms.get("test.reg.hist").expect("registered");
        assert_eq!(got.count(), 3);
        assert_eq!(got.sum(), 1014);
        assert_eq!(got.min(), Some(5));
        assert_eq!(got.max(), Some(1000));
    }

    #[test]
    fn snapshot_json_round_trips() {
        counter("test.reg.rt.counter").add(7);
        gauge("test.reg.rt.gauge").set(-4);
        histogram("test.reg.rt.hist").record(123);
        let snap = snapshot();
        let back = Snapshot::from_json(&Json::parse(&snap.to_json().dump()).expect("valid json"))
            .expect("parsable snapshot");
        assert_eq!(back, snap);
    }
}
