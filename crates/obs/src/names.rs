//! The obs name registry: every metric and span name the workspace uses
//! with a literal at an `obs::counter(…)` / `obs::gauge(…)` /
//! `obs::histogram(…)` / `obs::span(…)` call site must appear here.
//!
//! The lint gate (rule S003) cross-checks call sites against these
//! lists, so a typo'd or undocumented name fails CI instead of silently
//! producing an orphan time series. Names derived at runtime (the
//! per-span latency histograms `span_us.<span>`) are covered through
//! [`SPAN_NAMES`].
//!
//! See EXPERIMENTS.md §"Runtime observability" for what each name means.

/// Every span name, i.e. every phase of the runtime the profiler can
/// attribute time to. Taxonomy: `request` → `sweep` (daemon drain
/// thread) and `job` → sim phases (pool worker threads).
pub const SPAN_NAMES: &[&str] = &[
    "detection",
    "event_loop",
    "job",
    "neighbor_discovery",
    "request",
    "route",
    "sweep",
    "watch_buffer",
];

/// Every registered metric name (counters and gauges).
pub const METRIC_NAMES: &[&str] = &[
    "front.ping_failures",
    "front.reroutes",
    "front.restarts",
    "front.shards_up",
    "front.submits",
    "front.submits_local",
    "served.active_drains",
    "served.cache_hits",
    "served.cache_misses",
    "served.jobs_total",
    "served.journal_hits",
    "served.queue_depth",
    "served.requests_cancelled",
    "served.requests_done",
    "served.requests_failed",
    "served.requests_submitted",
];

/// Whether `name` is a registered span name.
pub fn is_span_name(name: &str) -> bool {
    SPAN_NAMES.binary_search(&name).is_ok()
}

/// Whether `name` is a registered metric name.
pub fn is_metric_name(name: &str) -> bool {
    METRIC_NAMES.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_are_sorted_and_unique() {
        for list in [SPAN_NAMES, METRIC_NAMES] {
            for pair in list.windows(2) {
                assert!(pair[0] < pair[1], "{pair:?} out of order or duplicated");
            }
        }
    }

    #[test]
    fn membership_checks_work() {
        assert!(is_span_name("event_loop"));
        assert!(!is_span_name("no_such_span"));
        assert!(is_metric_name("served.queue_depth"));
        assert!(!is_metric_name("served.bogus"));
    }
}
