//! `liteworp-obs`: the runtime observability plane.
//!
//! The `liteworp-telemetry` crate observes *protocol* events in
//! sim-time; this crate observes the *runtime* — pool, cache, daemon,
//! and the simulate hot path — in wall-clock. It deliberately never
//! feeds simulation state: every clock read goes through [`clock`] (the
//! lint gate's registered D001 wall-clock boundary for this crate), and
//! everything recorded here is output-only, so instrumented runs stay
//! bit-identical to uninstrumented ones.
//!
//! Three planes, one crate:
//!
//! * **Spans** ([`span`]) — hierarchical wall-clock scopes with
//!   deterministic identifiers, gated by a single process-global switch:
//!   with the plane disabled a span costs one relaxed atomic load and a
//!   branch (proved by the `obs/span_disabled` microbench).
//! * **Metrics registry** ([`registry`]) — named counters, gauges, and
//!   log2 histograms behind cheap atomic handles. Handles are *not*
//!   gated: a counter is a relaxed `fetch_add` whether or not the span
//!   plane is enabled, so the served daemon's `stats` op always has live
//!   figures.
//! * **Folded-stack profiler** ([`profile`]) — span closings aggregate
//!   into flamegraph-compatible `frame;frame;frame self_us` lines,
//!   written by the experiment binaries' `--profile-folded` flag.
//!
//! Every metric and span name used with a literal at an
//! `obs::counter(…)` / `obs::span(…)` call site must be listed in
//! [`names`] — lint rule S003 enforces the registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod names;
pub mod profile;
pub mod registry;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};

pub use registry::{counter, gauge, histogram, snapshot, Counter, Gauge, Hist, Snapshot};
pub use span::{current_span_id, span, SpanGuard};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the span/profile plane on, process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the span/profile plane off, process-wide. Metric handles keep
/// working (they are plain atomics); only spans become inert.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the span/profile plane is on. This is the whole cost of a
/// disabled span: one relaxed load and the branch on it.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
