//! The observability plane's wall-clock boundary — the **only** place in
//! this crate that reads the host clock.
//!
//! Readings are microseconds since a process-wide anchor taken at the
//! first call, so they are cheap monotonic `u64`s rather than absolute
//! timestamps. Nothing here ever feeds simulation state: span durations,
//! request ages, and daemon uptime are output-only. The lint gate
//! (`liteworp-lint` rule L004) pins the `allow(D001)` sites to this
//! file.

use std::sync::OnceLock;
use std::time::Instant;

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    // lint: allow(D001) obs wall-clock seam: duration-only readings that
    // never feed simulation state (results stay bit-identical)
    *ANCHOR.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process-wide anchor (first call).
/// Monotonic and cheap; saturates only after ~584 thousand years.
pub fn now_micros() -> u64 {
    anchor().elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_are_monotonic() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
    }
}
