//! End-to-end tests against the real `liteworp-served` binary: startup,
//! load-generator traffic, and the crash-resume contract — kill the
//! daemon mid-drain, restart with `--resume`, and the final digest set
//! must match an uninterrupted run.

use liteworp_runner::Json;
use liteworp_served::frame::{read_frame, write_frame};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(state_dir: &Path, resume: bool) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_liteworp-served"));
        cmd.args(["--addr", "127.0.0.1:0"])
            .args(["--state-dir", state_dir.to_str().expect("utf-8 path")])
            .args(["--drainers", "2"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if resume {
            cmd.arg("--resume");
        }
        let mut child = cmd.spawn().expect("spawn daemon");
        let stdout = child.stdout.take().expect("stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon exited before announcing its address")
                .expect("read stdout");
            if let Some(addr) = line.strip_prefix("listening on ") {
                break addr.to_string();
            }
        };
        Daemon { child, addr }
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn wait(mut self) {
        let _ = self.child.wait();
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn ok(&mut self, payload: &str) -> Json {
        write_frame(&mut self.writer, payload).expect("send");
        let response = read_frame(&mut self.reader).expect("recv").expect("frame");
        let parsed = Json::parse(&response).expect("json");
        assert_eq!(
            parsed.get("ok").and_then(Json::as_bool),
            Some(true),
            "rejected: {payload} -> {}",
            parsed.dump()
        );
        parsed
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "liteworp-served-daemon-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Work specs heavy enough that four of them are still draining a few
/// hundred milliseconds after submission.
fn specs() -> Vec<String> {
    vec![
        r#"{"nodes":30,"seeds":4,"duration":300.0}"#.into(),
        r#"{"nodes":34,"seeds":3,"duration":300.0}"#.into(),
        r#"{"nodes":26,"seeds":4,"duration":250.0}"#.into(),
        r#"{"nodes":22,"seeds":3,"duration":200.0}"#.into(),
    ]
}

fn submit_all(client: &mut Client, specs: &[String]) -> Vec<String> {
    specs
        .iter()
        .map(|spec| {
            client
                .ok(&format!(
                    r#"{{"op":"submit","kind":"scenario","params":{spec}}}"#
                ))
                .get("req")
                .and_then(Json::as_str)
                .expect("req")
                .to_string()
        })
        .collect()
}

fn drain_all(client: &mut Client, reqs: &[String]) -> Vec<String> {
    let mut digests: Vec<String> = reqs
        .iter()
        .map(|req| {
            for _ in 0..4800 {
                let status = client.ok(&format!(r#"{{"op":"status","req":"{req}"}}"#));
                match status.get("phase").and_then(Json::as_str) {
                    Some("done") => {
                        return status
                            .get("digest")
                            .and_then(Json::as_str)
                            .expect("digest")
                            .to_string()
                    }
                    Some("failed") => panic!("request failed: {}", status.dump()),
                    _ => std::thread::sleep(std::time::Duration::from_millis(25)),
                }
            }
            panic!("request {req} never finished");
        })
        .collect();
    digests.sort();
    digests.dedup();
    digests
}

#[test]
fn killing_the_daemon_mid_drain_and_resuming_preserves_the_digest_set() {
    let specs = specs();

    // Reference: an uninterrupted daemon on its own state dir.
    let ref_dir = temp_dir("reference");
    let reference = Daemon::start(&ref_dir, false);
    let mut client = Client::connect(&reference.addr);
    let reqs = submit_all(&mut client, &specs);
    let expected = drain_all(&mut client, &reqs);
    client.ok(r#"{"op":"shutdown"}"#);
    reference.wait();

    // Crash run: submit everything, give the drainers a head start, then
    // kill the process without ceremony.
    let dir = temp_dir("crash");
    let victim = Daemon::start(&dir, false);
    let mut client = Client::connect(&victim.addr);
    let reqs = submit_all(&mut client, &specs);
    std::thread::sleep(std::time::Duration::from_millis(400));
    victim.kill();

    // Restart on the same state dir with --resume: the request WAL
    // re-enqueues whatever had not logged `done`, and each request's
    // journal skips the jobs that already completed.
    let revived = Daemon::start(&dir, true);
    let mut client = Client::connect(&revived.addr);
    // Resubmitting is dedup'd against the replayed registry.
    let again = submit_all(&mut client, &specs);
    assert_eq!(again, reqs, "content-addressed keys survive the restart");
    let resumed = drain_all(&mut client, &again);
    client.ok(r#"{"op":"shutdown"}"#);
    revived.wait();

    assert_eq!(
        resumed, expected,
        "crash + resume must reproduce the uninterrupted digest set"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_generator_passes_against_a_fresh_daemon_twice_with_identical_digests() {
    let dir_a = temp_dir("load-a");
    let daemon_a = Daemon::start(&dir_a, false);
    let digests_a = dir_a.join("digests.txt");
    let status = Command::new(env!("CARGO_BIN_EXE_liteworp-load"))
        .args(["--addr", &daemon_a.addr])
        .args(["--requests", "120"])
        .args(["--connections", "4"])
        .args(["--seed", "42"])
        .args(["--cancel-fraction", "0.2"])
        .args(["--digests", digests_a.to_str().expect("utf-8")])
        .arg("--shutdown")
        .status()
        .expect("run load generator");
    assert!(status.success(), "load generator must pass");
    daemon_a.wait();

    let dir_b = temp_dir("load-b");
    let daemon_b = Daemon::start(&dir_b, false);
    let digests_b = dir_b.join("digests.txt");
    let status = Command::new(env!("CARGO_BIN_EXE_liteworp-load"))
        .args(["--addr", &daemon_b.addr])
        .args(["--requests", "120"])
        .args(["--connections", "4"])
        .args(["--seed", "42"])
        .args(["--cancel-fraction", "0.2"])
        .args(["--digests", digests_b.to_str().expect("utf-8")])
        .arg("--shutdown")
        .status()
        .expect("run load generator");
    assert!(status.success(), "load generator must pass");
    daemon_b.wait();

    let a = std::fs::read(&digests_a).expect("digests A");
    let b = std::fs::read(&digests_b).expect("digests B");
    assert!(!a.is_empty());
    assert_eq!(a, b, "two same-seed runs: byte-identical digest files");

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
