//! Wire-protocol tests against an in-process daemon: framing, malformed
//! requests, dedup, cancel, subscribe streaming, and seeded concurrent
//! submit/cancel interleavings that must not perturb result digests.

use liteworp_runner::{Json, Pcg32, Rng};
use liteworp_served::frame::{read_frame, write_frame};
use liteworp_served::server::{Server, ServerConfig};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn exchange(&mut self, payload: &str) -> Json {
        write_frame(&mut self.writer, payload).expect("send");
        let response = read_frame(&mut self.reader)
            .expect("recv")
            .expect("response frame");
        Json::parse(&response).expect("json response")
    }

    fn ok(&mut self, payload: &str) -> Json {
        let response = self.exchange(payload);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "rejected: {payload} -> {}",
            response.dump()
        );
        response
    }

    /// Reads streamed frames until the final `stream:"done"` frame.
    fn stream_until_done(&mut self) -> Vec<Json> {
        let mut frames = Vec::new();
        loop {
            let frame = read_frame(&mut self.reader)
                .expect("stream frame")
                .expect("stream open");
            let parsed = Json::parse(&frame).expect("stream json");
            let done = parsed.get("stream").and_then(Json::as_str) == Some("done");
            frames.push(parsed);
            if done {
                return frames;
            }
        }
    }
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "liteworp-served-proto-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_spec(nodes: u64) -> String {
    format!(
        r#"{{"op":"submit","kind":"scenario","params":{{"nodes":{nodes},"seeds":1,"duration":30.0}}}}"#
    )
}

fn drain(client: &mut Client, req: &str) -> String {
    for _ in 0..2400 {
        let status = client.ok(&format!(r#"{{"op":"status","req":"{req}"}}"#));
        match status.get("phase").and_then(Json::as_str) {
            Some("done") => {
                return status
                    .get("digest")
                    .and_then(Json::as_str)
                    .expect("digest")
                    .to_string()
            }
            Some("failed") => panic!("request failed: {}", status.dump()),
            _ => std::thread::sleep(std::time::Duration::from_millis(25)),
        }
    }
    panic!("request {req} never finished");
}

#[test]
fn ping_and_framing_variants() {
    let dir = state_dir("ping");
    let server = Server::start(ServerConfig::new(&dir)).expect("start");
    let mut client = Client::connect(server.local_addr());
    let pong = client.ok(r#"{"op":"ping"}"#);
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    // Bare JSON lines (the `nc` escape hatch) work too.
    client
        .writer
        .write_all(b"{\"op\":\"ping\"}\n")
        .expect("bare line");
    let response = read_frame(&mut client.reader)
        .expect("recv")
        .expect("frame");
    let parsed = Json::parse(&response).expect("json");
    assert_eq!(parsed.get("pong").and_then(Json::as_bool), Some(true));

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_typed_errors_and_do_not_kill_the_connection() {
    let dir = state_dir("malformed");
    let server = Server::start(ServerConfig::new(&dir)).expect("start");
    let mut client = Client::connect(server.local_addr());
    for (payload, expect) in [
        (r#"{"no_op":1}"#, "'op'"),
        (r#"{"op":"frobnicate"}"#, "unknown op"),
        (r#"{"op":"submit"}"#, "'kind'"),
        (r#"{"op":"submit","kind":"fig99"}"#, "known:"),
        (r#"{"op":"status","req":"nope"}"#, "16-hex"),
        (
            r#"{"op":"status","req":"00000000000000ff"}"#,
            "unknown request",
        ),
        (
            r#"{"op":"cancel","req":"00000000000000ff"}"#,
            "unknown request",
        ),
        (
            r#"{"op":"subscribe","req":"00000000000000ff"}"#,
            "unknown request",
        ),
    ] {
        let response = client.exchange(payload);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "{payload} should be rejected"
        );
        let error = response.get("error").and_then(Json::as_str).expect("error");
        assert!(
            error.contains(expect),
            "{payload}: error {error:?} should mention {expect:?}"
        );
    }
    // The connection is still serviceable after every rejection.
    client.ok(r#"{"op":"ping"}"#);

    // An oversized frame is rejected before its payload is read, then
    // the daemon hangs up on the (now unframeable) connection.
    let mut bad = Client::connect(server.local_addr());
    bad.writer.write_all(b"9999999\n").expect("send length");
    bad.writer.flush().expect("flush");
    let response = read_frame(&mut bad.reader).expect("recv").expect("frame");
    let parsed = Json::parse(&response).expect("json");
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
    assert!(parsed
        .get("error")
        .and_then(Json::as_str)
        .expect("error")
        .contains("exceeds"));

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn submit_dedups_and_reports_the_digest_when_done() {
    let dir = state_dir("dedup");
    let server = Server::start(ServerConfig::new(&dir)).expect("start");
    let mut client = Client::connect(server.local_addr());

    let first = client.ok(&tiny_spec(12));
    assert_eq!(first.get("dedup").and_then(Json::as_bool), Some(false));
    let req = first
        .get("req")
        .and_then(Json::as_str)
        .expect("req")
        .to_string();

    // The duplicate — same params, different field order on the wire —
    // resolves to the same request.
    let dup = client
        .ok(r#"{"op":"submit","kind":"scenario","params":{"duration":30.0,"seeds":1,"nodes":12}}"#);
    assert_eq!(dup.get("dedup").and_then(Json::as_bool), Some(true));
    assert_eq!(dup.get("req").and_then(Json::as_str), Some(req.as_str()));

    let digest = drain(&mut client, &req);
    let status = client.ok(&format!(r#"{{"op":"status","req":"{req}"}}"#));
    assert_eq!(status.get("failed").and_then(Json::as_u64), Some(0));
    assert!(status.get("jobs").and_then(Json::as_u64).unwrap() >= 1);

    // A post-completion duplicate answers immediately with the digest.
    let after = client.ok(&tiny_spec(12));
    assert_eq!(after.get("phase").and_then(Json::as_str), Some("done"));
    assert_eq!(
        after.get("digest").and_then(Json::as_str),
        Some(digest.as_str())
    );

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_parks_a_queued_request_and_resubmit_revives_it() {
    let dir = state_dir("cancel");
    let mut cfg = ServerConfig::new(&dir);
    cfg.drainers = 1; // one drainer: the heavy request blocks the queue
    let server = Server::start(cfg).expect("start");
    let mut client = Client::connect(server.local_addr());

    // A heavy request occupies the single drainer...
    let heavy = client.ok(
        r#"{"op":"submit","kind":"scenario","params":{"nodes":40,"seeds":4,"duration":600.0}}"#,
    );
    let heavy_req = heavy
        .get("req")
        .and_then(Json::as_str)
        .expect("req")
        .to_string();
    // ...so the tiny one behind it is still queued when the cancel lands.
    let tiny = client.ok(&tiny_spec(14));
    let tiny_req = tiny
        .get("req")
        .and_then(Json::as_str)
        .expect("req")
        .to_string();
    let cancelled = client.ok(&format!(r#"{{"op":"cancel","req":"{tiny_req}"}}"#));
    assert_eq!(
        cancelled.get("cancelled").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        cancelled.get("phase").and_then(Json::as_str),
        Some("cancelled")
    );

    // Cancelling a cancelled request is a no-op, not an error.
    let again = client.ok(&format!(r#"{{"op":"cancel","req":"{tiny_req}"}}"#));
    assert_eq!(again.get("cancelled").and_then(Json::as_bool), Some(false));

    // Resubmitting revives it; it then drains to done.
    let revived = client.ok(&tiny_spec(14));
    assert_eq!(revived.get("dedup").and_then(Json::as_bool), Some(true));
    assert_eq!(revived.get("phase").and_then(Json::as_str), Some("queued"));
    drain(&mut client, &tiny_req);

    // The heavy one was never affected by any of this.
    let digest = drain(&mut client, &heavy_req);
    let done = client.ok(&format!(r#"{{"op":"cancel","req":"{heavy_req}"}}"#));
    assert_eq!(done.get("cancelled").and_then(Json::as_bool), Some(false));
    assert!(!digest.is_empty());

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn subscribers_see_progress_then_done_and_late_subscribers_get_a_replay() {
    let dir = state_dir("subscribe");
    let server = Server::start(ServerConfig::new(&dir)).expect("start");
    let mut submitter = Client::connect(server.local_addr());
    let submitted = submitter.ok(
        r#"{"op":"submit","kind":"scenario","params":{"nodes":30,"seeds":3,"duration":300.0}}"#,
    );
    let req = submitted
        .get("req")
        .and_then(Json::as_str)
        .expect("req")
        .to_string();

    let mut subscriber = Client::connect(server.local_addr());
    let ack = subscriber.ok(&format!(r#"{{"op":"subscribe","req":"{req}"}}"#));
    assert_eq!(ack.get("stream").and_then(Json::as_bool), Some(true));
    let frames = subscriber.stream_until_done();
    let done = frames.last().expect("final frame");
    assert_eq!(done.get("phase").and_then(Json::as_str), Some("done"));
    let digest = done
        .get("digest")
        .and_then(Json::as_str)
        .expect("digest")
        .to_string();
    let progress = frames
        .iter()
        .filter(|f| f.get("stream").and_then(Json::as_str) == Some("progress"))
        .count();
    // Progress frames are only guaranteed for jobs settling after the
    // subscription; subscribing right after submit sees them all unless
    // the sweep won the race outright.
    assert!(progress <= 3);
    for frame in &frames {
        assert_eq!(frame.get("req").and_then(Json::as_str), Some(req.as_str()));
    }

    // A late subscriber gets the stored final frame immediately.
    let mut late = Client::connect(server.local_addr());
    late.ok(&format!(r#"{{"op":"subscribe","req":"{req}"}}"#));
    let replay = late.stream_until_done();
    assert_eq!(replay.len(), 1, "no trace requested: just the final frame");
    assert_eq!(
        replay[0].get("digest").and_then(Json::as_str),
        Some(digest.as_str())
    );

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traced_requests_replay_telemetry_to_late_subscribers() {
    let dir = state_dir("trace");
    let server = Server::start(ServerConfig::new(&dir)).expect("start");
    let mut client = Client::connect(server.local_addr());
    let submitted = client.ok(
        r#"{"op":"submit","kind":"scenario","params":{"nodes":20,"seeds":1,"duration":120.0},"trace":true}"#,
    );
    let req = submitted
        .get("req")
        .and_then(Json::as_str)
        .expect("req")
        .to_string();
    drain(&mut client, &req);

    let mut subscriber = Client::connect(server.local_addr());
    subscriber.ok(&format!(r#"{{"op":"subscribe","req":"{req}"}}"#));
    let frames = subscriber.stream_until_done();
    let telemetry: Vec<&Json> = frames
        .iter()
        .filter(|f| f.get("stream").and_then(Json::as_str) == Some("telemetry"))
        .collect();
    assert!(
        !telemetry.is_empty(),
        "a traced run must replay telemetry events"
    );
    // Each telemetry frame embeds one event of the instrumented run in
    // the `liteworp-telemetry` flat JSON shape.
    let event = telemetry[0].get("data").expect("event payload");
    assert!(event.get("t_us").and_then(Json::as_u64).is_some());
    assert!(event.get("event").and_then(Json::as_str).is_some());

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `stats` op against a live daemon: every documented key is
/// present with the right shape, the figures reflect the traffic just
/// served, and the embedded metrics snapshot round-trips through
/// `liteworp_obs::Snapshot::from_json`. Queued requests additionally
/// report their `queue_position`.
#[test]
fn stats_op_round_trips_its_schema_against_a_live_daemon() {
    let dir = state_dir("stats");
    let mut cfg = ServerConfig::new(&dir);
    cfg.drainers = 1; // one drainer: the heavy request keeps the tiny one queued
    let server = Server::start(cfg).expect("start");
    let mut client = Client::connect(server.local_addr());

    let heavy = client.ok(
        r#"{"op":"submit","kind":"scenario","params":{"nodes":40,"seeds":4,"duration":600.0}}"#,
    );
    let heavy_req = heavy
        .get("req")
        .and_then(Json::as_str)
        .expect("req")
        .to_string();
    let tiny = client.ok(&tiny_spec(16));
    let tiny_req = tiny
        .get("req")
        .and_then(Json::as_str)
        .expect("req")
        .to_string();

    // Satellite contract: a queued request reports its place in line
    // and its age; a running/done one reports age only.
    let status = client.ok(&format!(r#"{{"op":"status","req":"{tiny_req}"}}"#));
    if status.get("phase").and_then(Json::as_str) == Some("queued") {
        assert_eq!(status.get("queue_position").and_then(Json::as_u64), Some(0));
    }
    assert!(status.get("age_ms").and_then(Json::as_u64).is_some());

    // Mid-drain stats: the daemon is busy right now.
    let stats = client.ok(r#"{"op":"stats"}"#);
    for key in ["uptime_ms", "queue_depth", "wal_bytes"] {
        assert!(
            stats.get(key).and_then(Json::as_u64).is_some(),
            "stats missing numeric {key}: {}",
            stats.dump()
        );
    }
    assert_eq!(stats.get("drainers").and_then(Json::as_u64), Some(1));
    assert!(stats.get("wal_bytes").and_then(Json::as_u64).expect("wal") > 0);
    let requests = stats.get("requests").expect("requests object");
    assert!(
        requests
            .get("registered")
            .and_then(Json::as_u64)
            .expect("registered")
            >= 2
    );
    assert!(
        requests
            .get("submitted")
            .and_then(Json::as_u64)
            .expect("submitted")
            >= 2
    );

    drain(&mut client, &heavy_req);
    drain(&mut client, &tiny_req);

    // Post-drain stats: per-phase latency histograms exist for the
    // request and sweep spans, and done/jobs counters moved.
    let stats = client.ok(r#"{"op":"stats"}"#);
    let requests = stats.get("requests").expect("requests object");
    assert!(requests.get("done").and_then(Json::as_u64).expect("done") >= 2);
    let jobs = stats.get("jobs").expect("jobs object");
    assert!(jobs.get("total").and_then(Json::as_u64).expect("total") >= 2);
    let phases = stats.get("phase_latency_us").expect("phase latency object");
    for phase in ["request", "sweep"] {
        let entry = phases
            .get(phase)
            .unwrap_or_else(|| panic!("phase_latency_us missing {phase}: {}", stats.dump()));
        assert!(entry.get("count").and_then(Json::as_u64).expect("count") >= 1);
        let p50 = entry.get("p50").and_then(Json::as_u64).expect("p50");
        let max = entry.get("max").and_then(Json::as_u64).expect("max");
        assert!(p50 <= max, "{phase}: p50 {p50} > max {max}");
    }

    // The embedded metrics snapshot is a valid obs snapshot.
    let snapshot = liteworp_obs::Snapshot::from_json(stats.get("metrics").expect("metrics"))
        .expect("metrics snapshot parses back");
    assert!(
        snapshot
            .counters
            .get("served.requests_done")
            .copied()
            .unwrap_or(0)
            >= 2,
        "snapshot counters: {:?}",
        snapshot.counters
    );
    assert!(snapshot.histograms.contains_key("span_us.sweep"));

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// With `--metrics-interval` set, subscribers receive periodic
/// `{"stream":"metrics",…}` frames carrying a parseable registry
/// snapshot alongside the usual progress stream.
#[test]
fn metrics_interval_streams_snapshots_to_subscribers() {
    let dir = state_dir("metrics-stream");
    let mut cfg = ServerConfig::new(&dir);
    cfg.metrics_interval = Some(0.1);
    let server = Server::start(cfg).expect("start");
    let mut client = Client::connect(server.local_addr());
    let submitted = client.ok(
        r#"{"op":"submit","kind":"scenario","params":{"nodes":36,"seeds":4,"duration":400.0}}"#,
    );
    let req = submitted
        .get("req")
        .and_then(Json::as_str)
        .expect("req")
        .to_string();

    let mut subscriber = Client::connect(server.local_addr());
    subscriber.ok(&format!(r#"{{"op":"subscribe","req":"{req}"}}"#));
    let frames = subscriber.stream_until_done();
    let metrics: Vec<&Json> = frames
        .iter()
        .filter(|f| f.get("stream").and_then(Json::as_str) == Some("metrics"))
        .collect();
    assert!(
        !metrics.is_empty(),
        "a 400 sim-second sweep outlives a 100 ms metrics tick; frames: {}",
        frames.len()
    );
    let frame = metrics[0];
    assert!(frame.get("uptime_ms").and_then(Json::as_u64).is_some());
    let snapshot = liteworp_obs::Snapshot::from_json(frame.get("metrics").expect("metrics body"))
        .expect("streamed snapshot parses");
    assert!(
        snapshot
            .counters
            .get("served.requests_submitted")
            .copied()
            .unwrap_or(0)
            >= 1
    );

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The determinism contract under fire: several clients race seeded
/// mixes of submits and cancels; afterwards, the drained digest set must
/// be identical to a second, fresh daemon run with the same seeds.
#[test]
fn concurrent_seeded_interleavings_produce_identical_digest_sets() {
    let specs: Vec<String> = vec![
        r#"{"nodes":12,"seeds":1,"duration":30.0}"#.into(),
        r#"{"nodes":14,"seeds":2,"duration":40.0}"#.into(),
        r#"{"nodes":16,"seeds":1,"duration":50.0}"#.into(),
        r#"{"nodes":18,"seeds":1,"duration":30.0}"#.into(),
    ];

    let run_once = |tag: &str| -> Vec<String> {
        let dir = state_dir(tag);
        let server = Server::start(ServerConfig::new(&dir)).expect("start");
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            for worker in 0..3u64 {
                let specs = &specs;
                scope.spawn(move || {
                    let mut rng = Pcg32::seed_from_u64(1000 + worker);
                    let mut client = Client::connect(addr);
                    for _ in 0..25 {
                        let spec = &specs[rng.gen_range(0..specs.len())];
                        let submitted = client.ok(&format!(
                            r#"{{"op":"submit","kind":"scenario","params":{spec}}}"#
                        ));
                        let req = submitted
                            .get("req")
                            .and_then(Json::as_str)
                            .expect("req")
                            .to_string();
                        if rng.gen_bool(0.3) {
                            client.ok(&format!(r#"{{"op":"cancel","req":"{req}"}}"#));
                        }
                    }
                });
            }
        });
        // Drain: revive anything cancelled, wait for completion.
        let mut client = Client::connect(addr);
        let mut digests: Vec<String> = specs
            .iter()
            .map(|spec| loop {
                let submitted = client.ok(&format!(
                    r#"{{"op":"submit","kind":"scenario","params":{spec}}}"#
                ));
                let req = submitted
                    .get("req")
                    .and_then(Json::as_str)
                    .expect("req")
                    .to_string();
                let mut cancelled = false;
                let digest = loop {
                    let status = client.ok(&format!(r#"{{"op":"status","req":"{req}"}}"#));
                    match status.get("phase").and_then(Json::as_str) {
                        Some("done") => {
                            break status
                                .get("digest")
                                .and_then(Json::as_str)
                                .expect("digest")
                                .to_string()
                        }
                        Some("failed") => panic!("failed: {}", status.dump()),
                        Some("cancelled") => {
                            cancelled = true;
                            break String::new();
                        }
                        _ => std::thread::sleep(std::time::Duration::from_millis(25)),
                    }
                };
                if !cancelled {
                    break digest;
                }
            })
            .collect();
        digests.sort();
        server.shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
        digests
    };

    let first = run_once("interleave-a");
    let second = run_once("interleave-b");
    assert_eq!(
        first, second,
        "same seeds, fresh daemons: byte-identical sorted digest sets"
    );
}
