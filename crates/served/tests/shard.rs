//! End-to-end tests for the shard fabric (`liteworp-served --front`):
//! digest determinism across shard counts, kill -9 of a worker
//! mid-drain on both the reroute (quarantine) and restart (resume)
//! ladders, and torn request-WAL tails healed by `--resume`. The faults
//! injected here are drawn from a sampled
//! [`liteworp_chaos::ProcessFaultPlan`], so the schedule is pure data
//! with a reproducer line.

use liteworp_chaos::{ProcessFault, ProcessFaultPlan};
use liteworp_runner::Json;
use liteworp_served::frame::{read_frame, write_frame};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// A `liteworp-served` process — plain daemon or shard front — started
/// from the real binary, address parsed from its stdout announcement.
struct Proc {
    child: Child,
    addr: String,
}

impl Proc {
    fn spawn(args: &[&str]) -> Proc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_liteworp-served"));
        cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn liteworp-served");
        let stdout = child.stdout.take().expect("stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("process exited before announcing its address")
                .expect("read stdout");
            if let Some(addr) = line.strip_prefix("listening on ") {
                break addr.to_string();
            }
        };
        Proc { child, addr }
    }

    fn daemon(state_dir: &Path, resume: bool) -> Proc {
        let dir = state_dir.to_str().expect("utf-8 path");
        let mut args = vec![
            "--addr",
            "127.0.0.1:0",
            "--state-dir",
            dir,
            "--drainers",
            "2",
        ];
        if resume {
            args.push("--resume");
        }
        Proc::spawn(&args)
    }

    fn front(state_dir: &Path, shards: usize, max_restarts: u32) -> Proc {
        let dir = state_dir.to_str().expect("utf-8 path");
        let shards = shards.to_string();
        let max_restarts = max_restarts.to_string();
        Proc::spawn(&[
            "--front",
            "--addr",
            "127.0.0.1:0",
            "--state-dir",
            dir,
            "--shards",
            &shards,
            "--max-restarts",
            &max_restarts,
            "--worker-jobs",
            "2",
            "--worker-drainers",
            "2",
            "--ping-interval-ms",
            "200",
            "--ping-timeout-ms",
            "1000",
            "--seed",
            "42",
        ])
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn wait(mut self) {
        let _ = self.child.wait();
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn ok(&mut self, payload: &str) -> Json {
        write_frame(&mut self.writer, payload).expect("send");
        let response = read_frame(&mut self.reader).expect("recv").expect("frame");
        let parsed = Json::parse(&response).expect("json");
        assert_eq!(
            parsed.get("ok").and_then(Json::as_bool),
            Some(true),
            "rejected: {payload} -> {}",
            parsed.dump()
        );
        parsed
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("liteworp-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Work heavy enough that requests are still draining when the fault
/// fires a few hundred milliseconds after submission.
fn specs() -> Vec<String> {
    vec![
        r#"{"nodes":30,"seeds":4,"duration":300.0}"#.into(),
        r#"{"nodes":34,"seeds":3,"duration":300.0}"#.into(),
        r#"{"nodes":26,"seeds":4,"duration":250.0}"#.into(),
        r#"{"nodes":22,"seeds":3,"duration":200.0}"#.into(),
    ]
}

/// Submits every spec; returns `(req key, owning shard as JSON)` pairs.
fn submit_all(client: &mut Client, specs: &[String]) -> Vec<(String, Json)> {
    specs
        .iter()
        .map(|spec| {
            let response = client.ok(&format!(
                r#"{{"op":"submit","kind":"scenario","params":{spec}}}"#
            ));
            let req = response
                .get("req")
                .and_then(Json::as_str)
                .expect("req")
                .to_string();
            let shard = response.get("shard").cloned().unwrap_or(Json::Null);
            (req, shard)
        })
        .collect()
}

fn drain_all(client: &mut Client, reqs: &[(String, Json)]) -> Vec<String> {
    let mut digests: Vec<String> = reqs
        .iter()
        .map(|(req, _)| {
            for _ in 0..4800 {
                let status = client.ok(&format!(r#"{{"op":"status","req":"{req}"}}"#));
                match status.get("phase").and_then(Json::as_str) {
                    Some("done") => {
                        return status
                            .get("digest")
                            .and_then(Json::as_str)
                            .expect("digest")
                            .to_string()
                    }
                    Some("failed") => panic!("request failed: {}", status.dump()),
                    _ => std::thread::sleep(std::time::Duration::from_millis(25)),
                }
            }
            panic!("request {req} never finished");
        })
        .collect();
    digests.sort();
    digests.dedup();
    digests
}

/// The worker pid for ring index `shard`, from the front's `shards` op.
fn shard_pid(client: &mut Client, shard: u64) -> u64 {
    let response = client.ok(r#"{"op":"shards"}"#);
    let Some(Json::Arr(entries)) = response.get("shards") else {
        panic!("no shard array in {}", response.dump());
    };
    entries
        .iter()
        .find(|e| e.get("id").and_then(Json::as_u64) == Some(shard))
        .and_then(|e| e.get("pid").and_then(Json::as_u64))
        .unwrap_or_else(|| panic!("shard {shard} has no pid in {}", response.dump()))
}

fn kill_nine(pid: u64) {
    let status = Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -9 {pid} failed");
}

/// The first sampled plan whose fault is a worker kill — pure data, so
/// this scan is deterministic and the reproducer line is printable.
fn sampled_kill_plan(shards: usize) -> ProcessFaultPlan {
    (0u64..)
        .map(|seed| ProcessFaultPlan::sample(seed, shards, 1))
        .find(|plan| matches!(plan.faults[0], ProcessFault::Kill { .. }))
        .expect("some seed samples a kill")
}

/// Runs one fabric: submit everything, optionally kill one worker with
/// SIGKILL mid-drain, drain to completion, and return the sorted digest
/// set plus the front's final stats.
fn fabric_run(
    tag: &str,
    shards: usize,
    max_restarts: u32,
    kill_owner_of: Option<usize>,
) -> (Vec<String>, Json) {
    let dir = temp_dir(tag);
    let front = Proc::front(&dir, shards, max_restarts);
    let mut client = Client::connect(&front.addr);
    let reqs = submit_all(&mut client, &specs());
    if let Some(req_index) = kill_owner_of {
        // Give the drainers a head start so the kill is genuinely
        // mid-drain, then SIGKILL the worker owning the chosen request.
        std::thread::sleep(std::time::Duration::from_millis(400));
        let owner = reqs[req_index]
            .1
            .as_u64()
            .expect("request routed to a worker shard");
        let pid = shard_pid(&mut client, owner);
        kill_nine(pid);
    }
    let digests = drain_all(&mut client, &reqs);
    let stats = client.ok(r#"{"op":"stats"}"#);
    client.ok(r#"{"op":"shutdown"}"#);
    front.wait();
    let _ = std::fs::remove_dir_all(&dir);
    (digests, stats)
}

fn stat_u64(stats: &Json, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing {key}: {}", stats.dump()))
}

#[test]
fn digest_set_is_identical_across_shard_counts_and_a_mid_drain_worker_kill() {
    let plan = sampled_kill_plan(3);
    plan.validate().expect("sampled plan validates");
    let ProcessFault::Kill { after_done, .. } = plan.faults[0] else {
        unreachable!("sampled_kill_plan returns kills");
    };
    // The plan decides which in-flight request's owner dies.
    let victim_req = (after_done as usize) % specs().len();
    eprintln!(
        "shard chaos reproducer: {} (killing owner of request {victim_req})",
        plan.cli_args()
    );

    // Baseline: a single-shard fabric, no faults.
    let (expected, stats) = fabric_run("one", 1, 2, None);
    assert_eq!(expected.len(), specs().len(), "distinct digests per spec");
    assert_eq!(stats.get("role").and_then(Json::as_str), Some("front"));

    // Reroute ladder: three shards, zero restart budget — the kill
    // quarantines the victim and its orphans reroute to survivors.
    let (rerouted, stats) = fabric_run("reroute", 3, 0, Some(victim_req));
    assert_eq!(
        rerouted, expected,
        "quarantine + reroute must reproduce the digest set"
    );
    assert!(
        stat_u64(&stats, "reroutes_total") >= 1,
        "the kill must surface in reroutes_total: {}",
        stats.dump()
    );
    let health: Vec<String> = match stats.get("shards") {
        Some(Json::Arr(entries)) => entries
            .iter()
            .filter_map(|e| e.get("health").and_then(Json::as_str))
            .map(str::to_string)
            .collect(),
        other => panic!("stats missing shard health block: {other:?}"),
    };
    assert!(
        health.iter().any(|h| h == "quarantined"),
        "budget 0 must quarantine the victim: {health:?}"
    );

    // Restart ladder: three shards with budget — the worker is
    // restarted with --resume and finishes its own requests.
    let (resumed, stats) = fabric_run("restart", 3, 2, Some(victim_req));
    assert_eq!(
        resumed, expected,
        "restart + resume must reproduce the digest set"
    );
    assert!(
        stat_u64(&stats, "restarts_total") >= 1,
        "the kill must surface in restarts_total: {}",
        stats.dump()
    );
}

#[test]
fn a_torn_request_wal_tail_is_truncated_on_resume_and_the_drain_completes() {
    // Lighter work: this test pays for a reference run of its own.
    let specs: Vec<String> = vec![
        r#"{"nodes":24,"seeds":2,"duration":150.0}"#.into(),
        r#"{"nodes":20,"seeds":2,"duration":150.0}"#.into(),
        r#"{"nodes":26,"seeds":2,"duration":120.0}"#.into(),
    ];
    let garbage_bytes = match ProcessFaultPlan::sample(11, 1, 1).faults[0] {
        ProcessFault::CorruptWalTail { bytes, .. } => bytes,
        _ => 24,
    }
    .max(8);

    // Reference: uninterrupted.
    let ref_dir = temp_dir("wal-ref");
    let reference = Proc::daemon(&ref_dir, false);
    let mut client = Client::connect(&reference.addr);
    let reqs = submit_all(&mut client, &specs);
    let expected = drain_all(&mut client, &reqs);
    client.ok(r#"{"op":"shutdown"}"#);
    reference.wait();

    // Victim: submit, SIGKILL mid-drain, then tear the WAL tail the way
    // a crash mid-append would — a partial record with no newline.
    let dir = temp_dir("wal-torn");
    let victim = Proc::daemon(&dir, false);
    let mut client = Client::connect(&victim.addr);
    let reqs = submit_all(&mut client, &specs);
    std::thread::sleep(std::time::Duration::from_millis(300));
    victim.kill();
    let wal = dir.join("requests.jsonl");
    let torn: String = r#"{"v":1,"kind":"scenario","params":{"nodes":"#
        .chars()
        .cycle()
        .take(garbage_bytes)
        .collect();
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal)
            .expect("open WAL for tearing");
        file.write_all(torn.as_bytes()).expect("tear WAL tail");
        file.sync_all().expect("flush torn tail");
    }
    let torn_len = std::fs::metadata(&wal).expect("stat WAL").len();

    // Resume: the loader must truncate the torn frame and replay clean.
    let revived = Proc::daemon(&dir, true);
    let healed_len = std::fs::metadata(&wal).expect("stat WAL").len();
    assert!(
        healed_len <= torn_len - garbage_bytes as u64,
        "resume must truncate the torn tail ({torn_len} -> {healed_len})"
    );
    let healed = std::fs::read_to_string(&wal).expect("read healed WAL");
    for line in healed.lines().filter(|l| !l.trim().is_empty()) {
        Json::parse(line)
            .unwrap_or_else(|e| panic!("unparsable WAL line after heal ({e}): {line}"));
    }

    let mut client = Client::connect(&revived.addr);
    let again = submit_all(&mut client, &specs);
    let again_keys: Vec<&String> = again.iter().map(|(req, _)| req).collect();
    let orig_keys: Vec<&String> = reqs.iter().map(|(req, _)| req).collect();
    assert_eq!(again_keys, orig_keys, "keys survive the torn-tail restart");
    let resumed = drain_all(&mut client, &again);
    client.ok(r#"{"op":"shutdown"}"#);
    revived.wait();
    assert_eq!(
        resumed, expected,
        "torn tail + resume must reproduce the uninterrupted digest set"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
