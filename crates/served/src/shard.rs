//! One shard of the fabric: a supervised worker daemon owned by the
//! front (see [`crate::front`]).
//!
//! A shard is a failure domain: its own OS process, engine pool, result
//! cache, per-request journals, and request WAL, all under its own state
//! directory. The front routes submits to shards by content-addressed
//! request key and supervises each shard through the [`ShardSlot`]
//! here — health ladder `Up → Degraded → (Up | Quarantined)` — while
//! the spawn/ping plumbing below does the process work.
//!
//! Everything in this module is clock-free except socket timeouts
//! (`connect_timeout` / `set_read_timeout` take `Duration`s, never read
//! a clock): the wall-clock sites of the crate stay in `net.rs`.

use crate::frame::{read_frame, write_frame};
use liteworp_runner::supervisor::RestartBudget;
use liteworp_runner::Json;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Read/write timeout on a forwarded request's connection. Submit,
/// status, and cancel are queue operations on the worker — they answer
/// in microseconds when healthy, so anything near this bound means the
/// worker is gone and the front should reroute.
pub const FORWARD_TIMEOUT: Duration = Duration::from_secs(10);

/// Where a shard sits on the health ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Process alive and answering pings; routable.
    Up,
    /// A failure was detected; the supervisor is restarting the worker
    /// inside its [`RestartBudget`]. Not routable; requests already
    /// owned by the shard stay with it (they resume from its WAL).
    Degraded,
    /// The restart budget is exhausted. The shard is permanently out of
    /// the ring; its orphaned requests were rerouted.
    Quarantined,
}

impl ShardHealth {
    /// Health name as reported in the `stats`/`shards` health block.
    pub fn name(&self) -> &'static str {
        match self {
            ShardHealth::Up => "up",
            ShardHealth::Degraded => "degraded",
            ShardHealth::Quarantined => "quarantined",
        }
    }
}

/// The mutex-guarded, mutable face of a shard. Cloneable so callers can
/// snapshot it in one lock statement.
#[derive(Debug, Clone)]
pub struct ShardState {
    /// Where the shard is on the health ladder.
    pub health: ShardHealth,
    /// The worker's listen address (`None` while down).
    pub addr: Option<SocketAddr>,
    /// The worker's process id (`None` while down).
    pub pid: Option<u32>,
    /// Successful restarts so far.
    pub restarts: u32,
    /// Requests rerouted *away* from this shard at quarantine.
    pub reroutes: u64,
    /// Liveness probes this shard has failed.
    pub ping_failures: u64,
}

/// One supervised shard: immutable identity plus guarded state. The
/// `Child` handle itself is owned by the front's supervisor thread (the
/// only place that waits on or kills the process), not by the slot.
pub struct ShardSlot {
    /// Shard index in the ring (`key % n` routes here first).
    pub id: usize,
    /// The shard's private state directory.
    pub state_dir: PathBuf,
    state: Mutex<ShardState>,
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ShardSlot {
    /// A slot for a freshly spawned worker.
    pub fn new(id: usize, state_dir: PathBuf, addr: SocketAddr, pid: u32) -> ShardSlot {
        ShardSlot {
            id,
            state_dir,
            state: Mutex::new(ShardState {
                health: ShardHealth::Up,
                addr: Some(addr),
                pid: Some(pid),
                restarts: 0,
                reroutes: 0,
                ping_failures: 0,
            }),
        }
    }

    /// One-lock snapshot of the mutable state.
    pub fn snapshot(&self) -> ShardState {
        lock(&self.state).clone()
    }

    /// The worker address if (and only if) the shard is routable.
    pub fn routable_addr(&self) -> Option<SocketAddr> {
        let s = lock(&self.state);
        (s.health == ShardHealth::Up).then_some(s.addr).flatten()
    }

    /// Marks the shard degraded (supervisor is working on it) and counts
    /// the failed probe.
    pub fn mark_degraded(&self) {
        let mut s = lock(&self.state);
        s.health = ShardHealth::Degraded;
        s.addr = None;
        s.pid = None;
        s.ping_failures += 1;
    }

    /// Brings the shard back after a successful restart.
    pub fn mark_restarted(&self, addr: SocketAddr, pid: u32) {
        let mut s = lock(&self.state);
        s.health = ShardHealth::Up;
        s.addr = Some(addr);
        s.pid = Some(pid);
        s.restarts += 1;
    }

    /// Takes the shard out of the ring for good.
    pub fn mark_quarantined(&self) {
        let mut s = lock(&self.state);
        s.health = ShardHealth::Quarantined;
        s.addr = None;
        s.pid = None;
    }

    /// Counts requests rerouted away from this shard.
    pub fn add_reroutes(&self, n: u64) {
        lock(&self.state).reroutes += n;
    }

    /// The health-block entry for the `stats` / `shards` ops.
    pub fn to_json(&self) -> Json {
        let s = self.snapshot();
        Json::object([
            ("id", Json::from(self.id)),
            ("health", Json::from(s.health.name())),
            (
                "addr",
                s.addr
                    .map(|a| Json::from(a.to_string()))
                    .unwrap_or(Json::Null),
            ),
            (
                "pid",
                s.pid.map(|p| Json::from(p as u64)).unwrap_or(Json::Null),
            ),
            ("restarts", Json::from(s.restarts as u64)),
            ("reroutes", Json::from(s.reroutes)),
            ("ping_failures", Json::from(s.ping_failures)),
        ])
    }
}

/// How the front spawns worker processes.
#[derive(Debug, Clone)]
pub struct WorkerSpawn {
    /// The served binary (the front passes its own executable).
    pub exe: PathBuf,
    /// Engine threads per worker (`--jobs`).
    pub jobs: Option<usize>,
    /// Drainers per worker.
    pub drainers: usize,
    /// Disable worker result caches.
    pub no_cache: bool,
}

/// Spawns one worker daemon on an ephemeral loopback port and waits for
/// its `listening on HOST:PORT` line. `resume` replays the worker's WAL
/// (always set on restart so an adopted shard finishes what it started).
pub fn spawn_worker(
    spawn: &WorkerSpawn,
    state_dir: &Path,
    resume: bool,
) -> std::io::Result<(Child, SocketAddr)> {
    let mut cmd = Command::new(&spawn.exe);
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--state-dir")
        .arg(state_dir)
        .arg("--drainers")
        .arg(spawn.drainers.to_string());
    if let Some(jobs) = spawn.jobs {
        cmd.arg("--jobs").arg(jobs.to_string());
    }
    if spawn.no_cache {
        cmd.arg("--no-cache");
    }
    if resume {
        cmd.arg("--resume");
    }
    let mut child = cmd.stdout(Stdio::piped()).stderr(Stdio::null()).spawn()?;
    let stdout = child.stdout.take().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::Other, "worker stdout not captured")
    })?;
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    let addr = line
        .strip_prefix("listening on ")
        .and_then(|rest| rest.trim().parse::<SocketAddr>().ok());
    match addr {
        Some(addr) => Ok((child, addr)),
        None => {
            let _ = child.kill();
            let _ = child.wait();
            Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("worker did not announce a listen address (got {line:?})"),
            ))
        }
    }
}

/// Liveness probe over a *fresh* connection: catches a dead process, a
/// dead socket, and a stalled accept loop alike. The timeout bounds
/// connect, write, and read individually.
pub fn ping(addr: SocketAddr, timeout: Duration) -> bool {
    let Ok(stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    if write_frame(&mut writer, r#"{"op":"ping"}"#).is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    match read_frame(&mut reader) {
        Ok(Some(payload)) => Json::parse(&payload)
            .ok()
            .and_then(|j| j.get("ok").and_then(Json::as_bool))
            .unwrap_or(false),
        _ => false,
    }
}

/// Forwards one request payload to a worker over a fresh connection and
/// returns the parsed response. Every socket phase is bounded by
/// [`FORWARD_TIMEOUT`]; any failure means "treat this worker as gone"
/// to the routing layer.
pub fn forward(addr: SocketAddr, payload: &str) -> Result<Json, String> {
    let stream =
        TcpStream::connect_timeout(&addr, FORWARD_TIMEOUT).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(FORWARD_TIMEOUT))
        .map_err(|e| format!("socket: {e}"))?;
    stream
        .set_write_timeout(Some(FORWARD_TIMEOUT))
        .map_err(|e| format!("socket: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("socket: {e}"))?;
    write_frame(&mut writer, payload).map_err(|e| format!("write: {e}"))?;
    let mut reader = BufReader::new(stream);
    match read_frame(&mut reader) {
        Ok(Some(response)) => Json::parse(&response).map_err(|e| format!("malformed reply: {e}")),
        Ok(None) => Err("worker hung up before answering".to_string()),
        Err(e) => Err(format!("read: {e}")),
    }
}

/// Builds the per-shard restart budget. Restart pacing reuses the
/// runner's seeded capped-exponential backoff so a rerun of the fabric
/// restarts (and therefore reroutes) on an identical schedule.
pub fn restart_budget(seed: u64, shard_id: usize, max_restarts: u32) -> RestartBudget {
    let derived = liteworp_runner::rng::derive_seed(seed, shard_id as u64);
    RestartBudget::new(derived, max_restarts, 200_000, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_health_ladder_is_tracked_one_lock_at_a_time() {
        let slot = ShardSlot::new(
            3,
            PathBuf::from("/tmp/none"),
            "127.0.0.1:9999".parse().unwrap(),
            42,
        );
        assert_eq!(slot.snapshot().health, ShardHealth::Up);
        assert!(slot.routable_addr().is_some());

        slot.mark_degraded();
        let s = slot.snapshot();
        assert_eq!(s.health, ShardHealth::Degraded);
        assert_eq!(s.ping_failures, 1);
        assert_eq!(slot.routable_addr(), None);

        slot.mark_restarted("127.0.0.1:9998".parse().unwrap(), 43);
        let s = slot.snapshot();
        assert_eq!((s.health, s.restarts), (ShardHealth::Up, 1));
        assert_eq!(s.pid, Some(43));

        slot.mark_quarantined();
        slot.add_reroutes(5);
        let json = slot.to_json();
        assert_eq!(
            json.get("health").and_then(Json::as_str),
            Some("quarantined")
        );
        assert_eq!(json.get("reroutes").and_then(Json::as_u64), Some(5));
        assert_eq!(json.get("addr"), Some(&Json::Null));
    }

    #[test]
    fn restart_budgets_are_per_shard_deterministic() {
        let draw = |shard: usize| {
            let mut b = restart_budget(7, shard, 4);
            std::iter::from_fn(|| b.next_backoff_us()).collect::<Vec<_>>()
        };
        assert_eq!(draw(0), draw(0));
        assert_ne!(draw(0), draw(1), "shards back off on distinct schedules");
        assert_eq!(draw(2).len(), 4);
    }

    #[test]
    fn pinging_a_closed_port_fails_fast() {
        // Bind-then-drop guarantees the port is closed.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        assert!(!ping(addr, Duration::from_millis(200)));
        assert!(forward(addr, r#"{"op":"ping"}"#).is_err());
    }
}
