//! Daemon-side request registry: per-request lifecycle state, subscriber
//! fan-out, and the write-ahead request log that makes submissions
//! survive a daemon crash.
//!
//! A request is identified by its content-addressed key (see
//! [`crate::proto::request_key`]) and moves through
//! `Queued → Running → Done/Failed`, with `Queued → Cancelled` (and back
//! to `Queued` on re-submit) as the only other edges. Subscribers attach
//! an [`std::sync::mpsc`] sender to the request; the attach-vs-complete
//! race is serialized by the request's mutex — completion takes the
//! subscriber list under the lock, flushes the stored telemetry lines
//! and the final frame, and drops the senders so each subscriber's
//! receiver disconnects and its stream ends.

use crate::proto::{format_key, parse_key};
use liteworp_runner::Json;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Mutex, PoisonError};

/// Result summary of a finished sweep, as recorded in the WAL and
/// reported by `status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoneInfo {
    /// The sweep's order-sensitive `results_digest`.
    pub digest: u64,
    /// Total jobs in the sweep.
    pub jobs: usize,
    /// Jobs answered from the shared result cache.
    pub cache_hits: usize,
    /// Jobs replayed from the request's resume journal.
    pub journal_hits: usize,
    /// Jobs that executed a simulation.
    pub cache_misses: usize,
    /// Jobs quarantined after exhausting retries.
    pub failed: usize,
}

/// Where a request is in its lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum ReqPhase {
    /// Accepted, waiting for a drainer.
    Queued,
    /// A drainer is executing the sweep.
    Running,
    /// The sweep drained; all jobs succeeded.
    Done(DoneInfo),
    /// Cancelled while still queued. Re-submitting requeues it.
    Cancelled,
    /// The sweep drained but quarantined jobs or hit a daemon-side
    /// error; carries the reason.
    Failed(String),
}

impl ReqPhase {
    /// Phase name as reported on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            ReqPhase::Queued => "queued",
            ReqPhase::Running => "running",
            ReqPhase::Done(_) => "done",
            ReqPhase::Cancelled => "cancelled",
            ReqPhase::Failed(_) => "failed",
        }
    }

    /// Whether the phase is terminal for the current submission
    /// (`Cancelled` counts: only a fresh submit revives the request).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            ReqPhase::Done(_) | ReqPhase::Cancelled | ReqPhase::Failed(_)
        )
    }
}

struct ReqInner {
    phase: ReqPhase,
    subs: Vec<mpsc::Sender<String>>,
    trace_lines: Vec<String>,
    /// Obs-clock reading of the (latest) submission, for `age_ms`.
    submitted_us: u64,
}

/// One registered request: immutable identity plus mutex-guarded
/// lifecycle state.
pub struct RequestState {
    /// Content-addressed request key.
    pub key: u64,
    /// Catalog kind.
    pub kind: String,
    /// Parameter object of the first submission.
    pub params: Json,
    /// Whether the first submission asked for a telemetry trace.
    pub trace: bool,
    inner: Mutex<ReqInner>,
}

impl RequestState {
    /// A freshly submitted (queued) request.
    pub fn new(key: u64, kind: String, params: Json, trace: bool) -> Self {
        RequestState {
            key,
            kind,
            params,
            trace,
            inner: Mutex::new(ReqInner {
                phase: ReqPhase::Queued,
                subs: Vec::new(),
                trace_lines: Vec::new(),
                submitted_us: liteworp_obs::clock::now_micros(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ReqInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A snapshot of the current phase.
    pub fn phase(&self) -> ReqPhase {
        self.lock().phase.clone()
    }

    /// Restores a phase loaded from the WAL (startup only).
    pub fn restore_phase(&self, phase: ReqPhase) {
        self.lock().phase = phase;
    }

    /// `Queued → Running`. Returns false (and does nothing) from any
    /// other phase — in particular a cancel that won the race.
    pub fn set_running(&self) -> bool {
        let mut inner = self.lock();
        if inner.phase == ReqPhase::Queued {
            inner.phase = ReqPhase::Running;
            true
        } else {
            false
        }
    }

    /// `Queued → Cancelled`. Running or finished sweeps are unaffected;
    /// returns whether the cancel took. Subscribers of a cancelled
    /// request get its final frame and their streams end.
    pub fn cancel(&self) -> bool {
        let mut inner = self.lock();
        if inner.phase != ReqPhase::Queued {
            return false;
        }
        inner.phase = ReqPhase::Cancelled;
        let frame = final_frame(self.key, &inner.phase);
        for sub in inner.subs.drain(..) {
            let _ = sub.send(frame.clone());
        }
        true
    }

    /// `Cancelled → Queued` (a duplicate submit reviving the request).
    /// Returns whether the transition happened.
    pub fn requeue(&self) -> bool {
        let mut inner = self.lock();
        if inner.phase == ReqPhase::Cancelled {
            inner.phase = ReqPhase::Queued;
            inner.trace_lines.clear();
            inner.submitted_us = liteworp_obs::clock::now_micros();
            true
        } else {
            false
        }
    }

    /// Attaches a subscriber. On a live request the receiver sees
    /// progress frames as they happen; on a terminal one it is served
    /// the stored telemetry lines and the final frame immediately.
    /// Either way the stream ends when the sender side is dropped.
    pub fn subscribe(&self) -> mpsc::Receiver<String> {
        let (tx, rx) = mpsc::channel();
        let mut inner = self.lock();
        if inner.phase.is_terminal() {
            for line in &inner.trace_lines {
                let _ = tx.send(line.clone());
            }
            let _ = tx.send(final_frame(self.key, &inner.phase));
            // tx drops here: the replayed stream ends immediately.
        } else {
            inner.subs.push(tx);
        }
        rx
    }

    /// Sends one frame to every live subscriber, pruning the hung-up.
    pub fn broadcast(&self, frame: &str) {
        self.lock()
            .subs
            .retain(|sub| sub.send(frame.to_string()).is_ok());
    }

    /// Finishes the request: records the terminal phase and telemetry
    /// lines, then flushes both to every subscriber and hangs them up.
    pub fn complete(&self, outcome: Result<DoneInfo, String>, trace_lines: Vec<String>) {
        let mut inner = self.lock();
        inner.phase = match outcome {
            Ok(info) => ReqPhase::Done(info),
            Err(reason) => ReqPhase::Failed(reason),
        };
        inner.trace_lines = trace_lines;
        let frame = final_frame(self.key, &inner.phase);
        let lines = inner.trace_lines.clone();
        for sub in inner.subs.drain(..) {
            for line in &lines {
                let _ = sub.send(line.clone());
            }
            let _ = sub.send(frame.clone());
        }
    }

    /// The `status` response body for this request (without the `ok`
    /// field). `queue_position` is the request's 0-based place in the
    /// drain queue, passed in by the server for queued requests only.
    pub fn status_json(&self, queue_position: Option<usize>) -> Vec<(String, Json)> {
        let inner = self.lock();
        let age_us = liteworp_obs::clock::now_micros().saturating_sub(inner.submitted_us);
        let mut pairs = vec![
            ("req".to_string(), Json::from(format_key(self.key))),
            ("kind".to_string(), Json::from(self.kind.clone())),
            ("phase".to_string(), Json::from(inner.phase.name())),
            ("age_ms".to_string(), Json::from(age_us / 1_000)),
        ];
        if inner.phase == ReqPhase::Queued {
            if let Some(pos) = queue_position {
                pairs.push(("queue_position".to_string(), Json::from(pos)));
            }
        }
        match &inner.phase {
            ReqPhase::Done(info) => pairs.extend(done_pairs(info)),
            ReqPhase::Failed(reason) => {
                pairs.push(("reason".to_string(), Json::from(reason.clone())));
            }
            _ => {}
        }
        pairs
    }
}

fn done_pairs(info: &DoneInfo) -> Vec<(String, Json)> {
    vec![
        ("digest".to_string(), Json::from(format_key(info.digest))),
        ("jobs".to_string(), Json::from(info.jobs)),
        ("cache_hits".to_string(), Json::from(info.cache_hits)),
        ("journal_hits".to_string(), Json::from(info.journal_hits)),
        ("cache_misses".to_string(), Json::from(info.cache_misses)),
        ("failed".to_string(), Json::from(info.failed)),
    ]
}

/// The last frame of a subscription stream.
pub fn final_frame(key: u64, phase: &ReqPhase) -> String {
    let mut pairs = vec![
        ("stream".to_string(), Json::from("done")),
        ("req".to_string(), Json::from(format_key(key))),
        ("phase".to_string(), Json::from(phase.name())),
    ];
    match phase {
        ReqPhase::Done(info) => pairs.extend(done_pairs(info)),
        ReqPhase::Failed(reason) => {
            pairs.push(("reason".to_string(), Json::from(reason.clone())));
        }
        _ => {}
    }
    Json::Obj(pairs).dump()
}

/// One record of the request WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A request was accepted (written again when a cancelled request is
    /// requeued, so replay order reconstructs the final queue).
    Submitted {
        /// Request key.
        key: u64,
        /// Catalog kind.
        kind: String,
        /// Parameter object.
        params: Json,
        /// Trace flag.
        trace: bool,
    },
    /// A request's sweep drained successfully.
    Done {
        /// Request key.
        key: u64,
        /// Result summary.
        info: DoneInfo,
    },
    /// A queued request was cancelled.
    Cancelled {
        /// Request key.
        key: u64,
    },
}

impl WalRecord {
    fn to_json(&self) -> Json {
        match self {
            WalRecord::Submitted {
                key,
                kind,
                params,
                trace,
            } => Json::object([
                ("rec", Json::from("submitted")),
                ("key", Json::from(format_key(*key))),
                ("kind", Json::from(kind.clone())),
                ("params", params.clone()),
                ("trace", Json::from(*trace)),
            ]),
            WalRecord::Done { key, info } => {
                let mut pairs = vec![
                    ("rec".to_string(), Json::from("done")),
                    ("key".to_string(), Json::from(format_key(*key))),
                ];
                pairs.extend(done_pairs(info));
                Json::Obj(pairs)
            }
            WalRecord::Cancelled { key } => Json::object([
                ("rec", Json::from("cancelled")),
                ("key", Json::from(format_key(*key))),
            ]),
        }
    }

    fn from_json(json: &Json) -> Option<WalRecord> {
        let key = parse_key(json.get("key")?.as_str()?)?;
        match json.get("rec")?.as_str()? {
            "submitted" => Some(WalRecord::Submitted {
                key,
                kind: json.get("kind")?.as_str()?.to_string(),
                params: json.get("params").cloned().unwrap_or(Json::Null),
                trace: json.get("trace").and_then(Json::as_bool).unwrap_or(false),
            }),
            "done" => {
                let n = |k: &str| json.get(k)?.as_u64().map(|v| v as usize);
                Some(WalRecord::Done {
                    key,
                    info: DoneInfo {
                        digest: parse_key(json.get("digest")?.as_str()?)?,
                        jobs: n("jobs")?,
                        cache_hits: n("cache_hits")?,
                        journal_hits: n("journal_hits")?,
                        cache_misses: n("cache_misses")?,
                        failed: n("failed")?,
                    },
                })
            }
            "cancelled" => Some(WalRecord::Cancelled { key }),
            _ => None,
        }
    }
}

/// Append-only JSONL log of request lifecycle records. Replaying it in
/// order (last record per key wins for phase; submit order builds the
/// queue) reconstructs the registry after a crash. A torn final line —
/// the daemon died mid-write — is ignored on load.
pub struct RequestWal {
    file: Mutex<std::fs::File>,
    /// The log's location.
    pub path: PathBuf,
}

impl RequestWal {
    /// Opens (appending) or creates the WAL at `path`.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<RequestWal> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(RequestWal {
            file: Mutex::new(file),
            path,
        })
    }

    /// Appends one record durably (fsync per record: a crash loses at
    /// most the torn line the loader already tolerates).
    pub fn append(&self, record: &WalRecord) -> std::io::Result<()> {
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        file.write_all(format!("{}\n", record.to_json().dump()).as_bytes())?;
        // lint: allow(C002) WAL durability contract: the fsync *must* be
        // serialized under the file lock so records hit disk in append order
        file.sync_data()
    }

    /// Loads every well-formed record, in order. A missing file is an
    /// empty log; a torn or malformed line ends the replay (everything
    /// before it is kept).
    pub fn load(path: &Path) -> Vec<WalRecord> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        let mut records = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Some(record) = Json::parse(line)
                .ok()
                .and_then(|j| WalRecord::from_json(&j))
            else {
                break;
            };
            records.push(record);
        }
        records
    }

    /// [`RequestWal::load`] plus repair: when the log ends in a torn or
    /// malformed tail (the daemon died mid-append), the file is
    /// truncated back to its last well-formed record — mirroring
    /// `runner/journal.rs` — so the next [`RequestWal::open`] appends
    /// after clean bytes instead of corrupting the record stream.
    /// Returns the records kept and how many torn bytes were cut.
    pub fn load_truncating(path: &Path) -> (Vec<WalRecord>, u64) {
        let Ok(text) = std::fs::read_to_string(path) else {
            return (Vec::new(), 0);
        };
        let mut records = Vec::new();
        let mut good_bytes = 0usize;
        for line in text.split_inclusive('\n') {
            if line.trim().is_empty() {
                good_bytes += line.len();
                continue;
            }
            let Some(record) = Json::parse(line.trim_end())
                .ok()
                .and_then(|j| WalRecord::from_json(&j))
            else {
                break;
            };
            records.push(record);
            good_bytes += line.len();
        }
        let torn_bytes = (text.len() - good_bytes) as u64;
        if torn_bytes > 0 {
            let truncated = std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .and_then(|file| {
                    file.set_len(good_bytes as u64)?;
                    file.sync_data()
                });
            if let Err(e) = truncated {
                eprintln!(
                    "liteworp-served: failed to truncate torn WAL tail of {}: {e}",
                    path.display()
                );
            }
        }
        (records, torn_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> DoneInfo {
        DoneInfo {
            digest: 0xabcd,
            jobs: 4,
            cache_hits: 1,
            journal_hits: 0,
            cache_misses: 3,
            failed: 0,
        }
    }

    #[test]
    fn lifecycle_edges_are_enforced() {
        let req = RequestState::new(7, "fig9".into(), Json::Null, false);
        assert_eq!(req.phase(), ReqPhase::Queued);
        assert!(req.set_running());
        assert!(!req.set_running(), "running is not queued");
        assert!(!req.cancel(), "running sweeps cannot be cancelled");
        req.complete(Ok(info()), Vec::new());
        assert_eq!(req.phase(), ReqPhase::Done(info()));
        assert!(!req.requeue(), "done requests stay done");

        let req = RequestState::new(8, "fig9".into(), Json::Null, false);
        assert!(req.cancel());
        assert!(!req.set_running(), "cancel wins the race to the drainer");
        assert!(req.requeue());
        assert_eq!(req.phase(), ReqPhase::Queued);
    }

    #[test]
    fn status_reports_age_and_queue_position_while_queued() {
        let req = RequestState::new(11, "fig9".into(), Json::Null, false);
        let status = Json::Obj(req.status_json(Some(3)));
        assert!(status.get("age_ms").and_then(Json::as_u64).is_some());
        assert_eq!(status.get("queue_position").and_then(Json::as_u64), Some(3));

        // Once past Queued the position is gone, even if the caller
        // passes one; age keeps counting from the submission.
        req.set_running();
        let status = Json::Obj(req.status_json(Some(0)));
        assert_eq!(status.get("queue_position"), None);
        assert!(status.get("age_ms").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn late_subscribers_get_the_stored_stream() {
        let req = RequestState::new(9, "fig9".into(), Json::Null, true);
        req.set_running();
        req.complete(Ok(info()), vec!["line-a".into(), "line-b".into()]);
        let rx = req.subscribe();
        let got: Vec<String> = rx.iter().collect();
        assert_eq!(got.len(), 3, "two trace lines plus the final frame");
        assert_eq!(got[0], "line-a");
        let done = Json::parse(&got[2]).unwrap();
        assert_eq!(done.get("phase").and_then(Json::as_str), Some("done"));
        assert_eq!(done.get("stream").and_then(Json::as_str), Some("done"));
    }

    #[test]
    fn live_subscribers_see_broadcasts_then_hang_up() {
        let req = RequestState::new(10, "fig9".into(), Json::Null, false);
        let rx = req.subscribe();
        req.broadcast("progress-1");
        req.set_running();
        req.broadcast("progress-2");
        req.complete(Err("boom".into()), Vec::new());
        let got: Vec<String> = rx.iter().collect(); // iter ends: sender dropped
        assert_eq!(got[0], "progress-1");
        assert_eq!(got[1], "progress-2");
        let last = Json::parse(&got[2]).unwrap();
        assert_eq!(last.get("phase").and_then(Json::as_str), Some("failed"));
        assert_eq!(last.get("reason").and_then(Json::as_str), Some("boom"));
    }

    #[test]
    fn wal_round_trips_and_tolerates_a_torn_tail() {
        let dir = std::env::temp_dir().join(format!("liteworp-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("requests.jsonl");
        let records = vec![
            WalRecord::Submitted {
                key: 1,
                kind: "fig9".into(),
                params: Json::parse(r#"{"seeds":2}"#).unwrap(),
                trace: true,
            },
            WalRecord::Done {
                key: 1,
                info: info(),
            },
            WalRecord::Cancelled { key: 2 },
        ];
        {
            let wal = RequestWal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        assert_eq!(RequestWal::load(&path), records);

        // A torn final line is dropped, everything before it kept.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(r#"{"rec":"done","key":"00000000000"#);
        std::fs::write(&path, text).unwrap();
        assert_eq!(RequestWal::load(&path), records);

        assert!(RequestWal::load(Path::new("/nonexistent/wal.jsonl")).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_truncating_cuts_the_torn_tail_back_to_clean_bytes() {
        let dir = std::env::temp_dir().join(format!(
            "liteworp-wal-trunc-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("requests.jsonl");
        let records = vec![
            WalRecord::Submitted {
                key: 3,
                kind: "fig9".into(),
                params: Json::parse(r#"{"seeds":2}"#).unwrap(),
                trace: false,
            },
            WalRecord::Done {
                key: 3,
                info: info(),
            },
        ];
        {
            let wal = RequestWal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();

        // Simulate dying mid-append: a partial record with no newline.
        let torn_tail = r#"{"rec":"submitted","key":"dead"#;
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(torn_tail.as_bytes()).unwrap();
        }

        let (loaded, torn_bytes) = RequestWal::load_truncating(&path);
        assert_eq!(loaded, records);
        assert_eq!(torn_bytes, torn_tail.len() as u64);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len,
            "torn tail physically removed"
        );

        // A clean log is untouched and reports zero torn bytes.
        let (loaded, torn_bytes) = RequestWal::load_truncating(&path);
        assert_eq!(loaded, records);
        assert_eq!(torn_bytes, 0);

        // Appending after repair yields a well-formed log again.
        let extra = WalRecord::Cancelled { key: 9 };
        RequestWal::open(&path).unwrap().append(&extra).unwrap();
        let (loaded, torn_bytes) = RequestWal::load_truncating(&path);
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[2], extra);
        assert_eq!(torn_bytes, 0);

        assert_eq!(
            RequestWal::load_truncating(Path::new("/nonexistent/wal.jsonl")),
            (Vec::new(), 0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
