//! The LITEWORP sweep-service daemon (and shard front).
//!
//! Plain mode listens on a TCP socket, speaks the length-delimited JSONL
//! protocol (`submit`, `status`, `cancel`, `subscribe`, `stats`,
//! `shards`, `ping`, `shutdown`), and serves every request from one warm
//! engine: shared worker pool, shared result cache, one resume journal
//! per in-flight request.
//!
//! Flags: --addr HOST:PORT (127.0.0.1:0), --state-dir DIR
//!        (results/served), --jobs N (all cores), --drainers N (2),
//!        --resume, --no-cache, --metrics-interval SECS (off; broadcast
//!        a `{"stream":"metrics",…}` frame to subscribers this often),
//!        --stall-accept-secs SECS (chaos hook: stall the accept loop
//!        after each accept; never set it in production)
//!
//! `--front` mode instead spawns `--shards N` (2) worker daemons (this
//! same binary, plain mode) under `--state-dir`, routes requests to them
//! by content-addressed key, and supervises them: `--max-restarts K`
//! (2) seeded-backoff restarts per shard (schedule seeded by `--seed`,
//! 42), then quarantine + deterministic rerouting; when no shard can
//! take a request the front degrades onto a local in-process engine.
//! Worker shape: --worker-jobs N, --worker-drainers N (2). Probe
//! cadence: --ping-interval-ms (500), --ping-timeout-ms (2000).
//!
//! Prints `listening on HOST:PORT` to stdout once bound (port 0 picks a
//! free port), then serves until a client sends `shutdown`. Queued work
//! survives a kill: restart with `--resume` on the same `--state-dir`
//! and unfinished requests re-enqueue, skipping jobs their per-request
//! journals already recorded (the front restarts workers with
//! `--resume` automatically).

use liteworp_bench::cli::Flags;
use liteworp_served::front::{Front, FrontConfig};
use liteworp_served::server::{Server, ServerConfig};
use liteworp_served::shard::WorkerSpawn;
use std::io::Write;
use std::time::Duration;

fn main() {
    let flags = Flags::from_env();
    if flags.get_bool("front") {
        run_front(&flags);
    } else {
        run_server(&flags);
    }
}

fn run_server(flags: &Flags) {
    let cfg = ServerConfig {
        addr: flags.get_str("addr").unwrap_or("127.0.0.1:0").to_string(),
        threads: flags.get_opt_usize("jobs"),
        state_dir: flags
            .get_str("state-dir")
            .unwrap_or("results/served")
            .into(),
        drainers: flags.get_usize("drainers", 2),
        resume: flags.get_bool("resume"),
        no_cache: flags.get_bool("no-cache"),
        metrics_interval: flags.get_opt_f64("metrics-interval"),
        stall_accept: flags
            .get_opt_f64("stall-accept-secs")
            .map(Duration::from_secs_f64),
    };
    eprintln!(
        "liteworp-served: state dir {}, {} drainer(s), cache {}, resume {}",
        cfg.state_dir.display(),
        cfg.drainers,
        if cfg.no_cache { "off" } else { "on" },
        cfg.resume,
    );
    if cfg.stall_accept.is_some() {
        eprintln!("liteworp-served: CHAOS: accept loop stall enabled");
    }
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("liteworp-served: cannot start: {e}");
            std::process::exit(1);
        }
    };
    // Parsed by scripts and tests: the one line on stdout.
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.join();
    eprintln!("liteworp-served: stopped");
}

fn run_front(flags: &Flags) {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("liteworp-served: cannot locate own binary for workers: {e}");
            std::process::exit(1);
        }
    };
    let state_dir = flags.get_str("state-dir").unwrap_or("results/served");
    let mut cfg = FrontConfig::new(state_dir, exe);
    cfg.addr = flags.get_str("addr").unwrap_or("127.0.0.1:0").to_string();
    cfg.shards = flags.get_usize("shards", 2).max(1);
    cfg.spawn = WorkerSpawn {
        exe: cfg.spawn.exe.clone(),
        jobs: flags.get_opt_usize("worker-jobs"),
        drainers: flags.get_usize("worker-drainers", 2),
        no_cache: flags.get_bool("no-cache"),
    };
    cfg.max_restarts = flags.get_u64("max-restarts", 2) as u32;
    cfg.seed = flags.get_u64("seed", 42);
    cfg.ping_interval = Duration::from_millis(flags.get_u64("ping-interval-ms", 500));
    cfg.ping_timeout = Duration::from_millis(flags.get_u64("ping-timeout-ms", 2000));
    cfg.resume = flags.get_bool("resume");
    eprintln!(
        "liteworp-served: front over {} shard(s), state dir {}, {} restart(s) per shard, \
         resume {}",
        cfg.shards,
        cfg.state_dir.display(),
        cfg.max_restarts,
        cfg.resume,
    );
    let front = match Front::start(cfg) {
        Ok(front) => front,
        Err(e) => {
            eprintln!("liteworp-served: cannot start front: {e}");
            std::process::exit(1);
        }
    };
    // Parsed by scripts and tests: the one line on stdout.
    println!("listening on {}", front.local_addr());
    let _ = std::io::stdout().flush();
    front.join();
    eprintln!("liteworp-served: front stopped");
}
