//! The LITEWORP sweep-service daemon.
//!
//! Listens on a TCP socket, speaks the length-delimited JSONL protocol
//! (`submit`, `status`, `cancel`, `subscribe`, `stats`, `ping`,
//! `shutdown`), and serves every request from one warm engine: shared
//! worker pool, shared result cache, one resume journal per in-flight
//! request.
//!
//! Flags: --addr HOST:PORT (127.0.0.1:0), --state-dir DIR
//!        (results/served), --jobs N (all cores), --drainers N (2),
//!        --resume, --no-cache, --metrics-interval SECS (off; broadcast
//!        a `{"stream":"metrics",…}` frame to subscribers this often)
//!
//! Prints `listening on HOST:PORT` to stdout once bound (port 0 picks a
//! free port), then serves until a client sends `shutdown`. Queued work
//! survives a kill: restart with `--resume` on the same `--state-dir`
//! and unfinished requests re-enqueue, skipping jobs their per-request
//! journals already recorded.

use liteworp_bench::cli::Flags;
use liteworp_served::server::{Server, ServerConfig};
use std::io::Write;

fn main() {
    let flags = Flags::from_env();
    let cfg = ServerConfig {
        addr: flags.get_str("addr").unwrap_or("127.0.0.1:0").to_string(),
        threads: flags.get_opt_usize("jobs"),
        state_dir: flags
            .get_str("state-dir")
            .unwrap_or("results/served")
            .into(),
        drainers: flags.get_usize("drainers", 2),
        resume: flags.get_bool("resume"),
        no_cache: flags.get_bool("no-cache"),
        metrics_interval: flags.get_opt_f64("metrics-interval"),
    };
    eprintln!(
        "liteworp-served: state dir {}, {} drainer(s), cache {}, resume {}",
        cfg.state_dir.display(),
        cfg.drainers,
        if cfg.no_cache { "off" } else { "on" },
        cfg.resume,
    );
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("liteworp-served: cannot start: {e}");
            std::process::exit(1);
        }
    };
    // Parsed by scripts and tests: the one line on stdout.
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.join();
    eprintln!("liteworp-served: stopped");
}
