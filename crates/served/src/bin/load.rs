//! Deterministic load generator for the `liteworp-served` daemon.
//!
//! Opens K connections and fires a seeded, precomputed schedule of mixed
//! requests at the daemon — submissions across all six experiment kinds
//! (with deliberate duplicates to exercise request dedup and the shared
//! result cache), status probes, and a configurable fraction of cancels.
//! After the workers join, a drain pass revives anything cancelled,
//! waits for every distinct experiment to finish, and writes the
//! **sorted, deduplicated set of result digests** — the determinism
//! witness: two same-seed runs against same-seed daemons must produce
//! byte-identical digest files, whatever the interleaving was.
//!
//! Flags: --addr HOST:PORT (required), --requests N (2000),
//!        --connections K (8), --seed S (42), --cancel-fraction P (0.0),
//!        --digests PATH (stdout), --stats-json PATH (off; fetch the
//!        daemon's `stats` response after the drain and write it there),
//!        --shards N (off; the target is a shard front — verify the
//!        `shards` op reports exactly N workers with well-formed health
//!        blocks), --shutdown
//!
//! Exits 0 only if every request got an `ok` response, every experiment
//! reached `done`, and every duplicated submission was deduplicated at
//! least once. The dedup assertion is the sharded-mode acid test: the
//! same key submitted over *different* front connections must answer
//! `dedup` from the front's own registry even while the owning shard is
//! down or restarting — worker amnesia must never leak to clients.

use liteworp_bench::cli::Flags;
use liteworp_runner::{Json, Pcg32, Rng};
use liteworp_served::frame::{read_frame, write_frame};
use std::io::BufReader;
use std::net::TcpStream;

/// One framed request/response exchange over a persistent connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone socket: {e}"))?,
        );
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn request(&mut self, payload: &str) -> Result<Json, String> {
        write_frame(&mut self.writer, payload).map_err(|e| format!("send failed: {e}"))?;
        match read_frame(&mut self.reader) {
            Ok(Some(response)) => {
                Json::parse(&response).map_err(|e| format!("unparsable response: {e}"))
            }
            Ok(None) => Err("server hung up mid-exchange".to_string()),
            Err(e) => Err(format!("receive failed: {e}")),
        }
    }

    /// A request that must come back `"ok": true`.
    fn expect_ok(&mut self, payload: &str) -> Result<Json, String> {
        let response = self.request(payload)?;
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("request {payload} rejected: {}", response.dump()));
        }
        Ok(response)
    }
}

/// The pool of distinct experiments the generator draws from: 24 small
/// specs covering all six catalog kinds. Parameters are chosen tiny so a
/// full drain is seconds, not hours — but networks stay ≥ 28 nodes for
/// the figure kinds, whose default colluder counts (up to M = 4) need
/// enough diameter to place colluders more than two hops apart.
fn spec_pool() -> Vec<(&'static str, Json)> {
    let mut pool: Vec<(&'static str, Json)> = Vec::new();
    for (n, d) in [(28u64, 40.0), (28, 60.0), (32, 40.0), (32, 60.0)] {
        pool.push((
            "fig8",
            Json::object([
                ("nodes", Json::from(n)),
                ("seeds", Json::from(1u64)),
                ("duration", Json::from(d)),
                ("sample_every", Json::from(d / 2.0)),
            ]),
        ));
    }
    for (n, s) in [(28u64, 1u64), (28, 2), (32, 1), (36, 1)] {
        pool.push((
            "fig9",
            Json::object([
                ("nodes", Json::from(n)),
                ("seeds", Json::from(s)),
                ("duration", Json::from(40.0)),
            ]),
        ));
    }
    for (n, nb) in [(28u64, 8.0), (28, 10.0), (32, 8.0), (32, 10.0)] {
        pool.push((
            "fig10",
            Json::object([
                ("nodes", Json::from(n)),
                ("avg_neighbors", Json::from(nb)),
                ("seeds", Json::from(1u64)),
                ("duration", Json::from(40.0)),
            ]),
        ));
    }
    for d in [40.0, 50.0, 60.0, 70.0] {
        pool.push((
            "sweep",
            Json::object([("seeds", Json::from(1u64)), ("duration", Json::from(d))]),
        ));
    }
    for (n, d) in [(28u64, 40.0), (28, 60.0), (32, 40.0), (32, 60.0)] {
        pool.push((
            "ablation",
            Json::object([
                ("nodes", Json::from(n)),
                ("seeds", Json::from(1u64)),
                ("duration", Json::from(d)),
            ]),
        ));
    }
    for (n, m, p) in [
        (20u64, 2u64, true),
        (20, 2, false),
        (24, 2, true),
        (28, 3, true),
    ] {
        pool.push((
            "scenario",
            Json::object([
                ("nodes", Json::from(n)),
                ("malicious", Json::from(m)),
                ("protected", Json::from(p)),
                ("seeds", Json::from(1u64)),
                ("duration", Json::from(60.0)),
            ]),
        ));
    }
    pool
}

fn submit_payload(kind: &str, params: &Json) -> String {
    Json::object([
        ("op", Json::from("submit")),
        ("kind", Json::from(kind)),
        ("params", params.clone()),
    ])
    .dump()
}

/// What one worker tallied: per-spec submit and dedup counts.
#[derive(Clone)]
struct Tally {
    submits: Vec<u64>,
    dedups: Vec<u64>,
}

impl Tally {
    fn new(specs: usize) -> Tally {
        Tally {
            submits: vec![0; specs],
            dedups: vec![0; specs],
        }
    }

    fn merge(&mut self, other: &Tally) {
        for (a, b) in self.submits.iter_mut().zip(&other.submits) {
            *a += b;
        }
        for (a, b) in self.dedups.iter_mut().zip(&other.dedups) {
            *a += b;
        }
    }
}

/// One worker connection executing its slice of the schedule.
fn worker(
    addr: &str,
    pool: &[(&'static str, Json)],
    schedule: &[(usize, bool)],
    worker_index: usize,
    connections: usize,
) -> Result<Tally, String> {
    let mut client = Client::connect(addr)?;
    let mut tally = Tally::new(pool.len());
    for (i, &(spec, cancel)) in schedule.iter().enumerate() {
        if i % connections != worker_index {
            continue;
        }
        let (kind, params) = &pool[spec];
        let response = client.expect_ok(&submit_payload(kind, params))?;
        tally.submits[spec] += 1;
        if response.get("dedup").and_then(Json::as_bool) == Some(true) {
            tally.dedups[spec] += 1;
        }
        let req = response
            .get("req")
            .and_then(Json::as_str)
            .ok_or("submit response missing 'req'")?
            .to_string();
        if cancel {
            client.expect_ok(&format!(r#"{{"op":"cancel","req":"{req}"}}"#))?;
        }
        // Sprinkle status probes through the mix.
        if i % 17 == 0 {
            client.expect_ok(&format!(r#"{{"op":"status","req":"{req}"}}"#))?;
        }
    }
    Ok(tally)
}

/// Polls one experiment to completion and returns its digest. Revives it
/// if a racing cancel parked it. Wall-clock-free pacing: fixed-length
/// sleeps with a bounded attempt budget.
fn drain_spec(client: &mut Client, kind: &str, params: &Json) -> Result<String, String> {
    const ATTEMPTS: usize = 6000; // x 50 ms = five minutes per spec
    for _ in 0..ATTEMPTS {
        let submitted = client.expect_ok(&submit_payload(kind, params))?;
        let req = submitted
            .get("req")
            .and_then(Json::as_str)
            .ok_or("submit response missing 'req'")?
            .to_string();
        loop {
            let status = client.expect_ok(&format!(r#"{{"op":"status","req":"{req}"}}"#))?;
            match status.get("phase").and_then(Json::as_str) {
                Some("done") => {
                    return status
                        .get("digest")
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or("done status missing 'digest'".to_string());
                }
                Some("failed") => {
                    return Err(format!("{kind} failed: {}", status.dump()));
                }
                Some("cancelled") => break, // resubmit revives it
                _ => std::thread::sleep(std::time::Duration::from_millis(50)),
            }
        }
    }
    Err(format!("{kind} did not finish within the attempt budget"))
}

fn run() -> Result<(), String> {
    let flags = Flags::from_env();
    let addr = flags
        .get_str("addr")
        .ok_or("--addr HOST:PORT is required")?
        .to_string();
    let requests = flags.get_u64("requests", 2000) as usize;
    let connections = flags.get_usize("connections", 8).max(1);
    let seed = flags.get_u64("seed", 42);
    let cancel_fraction = flags.get_f64("cancel-fraction", 0.0);
    let digests_path = flags.get_str("digests").map(std::path::PathBuf::from);

    let pool = spec_pool();
    // The whole schedule is a pure function of --seed: which spec each
    // request submits, and whether it then cancels.
    let mut rng = Pcg32::seed_from_u64(seed);
    let schedule: Vec<(usize, bool)> = (0..requests)
        .map(|_| (rng.gen_range(0..pool.len()), rng.gen_bool(cancel_fraction)))
        .collect();
    eprintln!(
        "liteworp-load: {requests} requests over {connections} connection(s), seed {seed}, \
         {} distinct specs, cancel fraction {cancel_fraction}",
        pool.len()
    );

    let mut tally = Tally::new(pool.len());
    let results: Vec<Result<Tally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|k| {
                let addr = addr.clone();
                let pool = &pool;
                let schedule = &schedule;
                scope.spawn(move || worker(&addr, pool, schedule, k, connections))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("worker panicked".to_string()))
            })
            .collect()
    });
    for result in results {
        tally.merge(&result?);
    }

    // Drain: every distinct spec must reach `done`, cancelled or not.
    let mut client = Client::connect(&addr)?;
    let mut digests: Vec<String> = Vec::new();
    for (kind, params) in &pool {
        digests.push(drain_spec(&mut client, kind, params)?);
    }
    digests.sort();
    digests.dedup();

    // Every duplicated submission must have been deduplicated to the
    // first one at least once (only the very first submit of a key can
    // answer dedup=false).
    for (spec, (&submits, &dedups)) in tally.submits.iter().zip(&tally.dedups).enumerate() {
        if submits >= 2 && dedups == 0 {
            return Err(format!(
                "spec {spec} submitted {submits} times but never deduplicated"
            ));
        }
    }

    let listing = digests.iter().map(|d| format!("{d}\n")).collect::<String>();
    match &digests_path {
        Some(path) => {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
            std::fs::write(path, &listing)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!(
                "liteworp-load: wrote {} digest(s) to {}",
                digests.len(),
                path.display()
            );
        }
        None => print!("{listing}"),
    }
    eprintln!(
        "liteworp-load: ok — {} submits, {} dedups, {} distinct digests, zero failures",
        tally.submits.iter().sum::<u64>(),
        tally.dedups.iter().sum::<u64>(),
        digests.len()
    );

    // Sharded mode: the target must be a front reporting exactly the
    // expected ring, every shard with a well-formed health block.
    if let Some(expected_shards) = flags.get_opt_usize("shards") {
        let response = client.expect_ok(r#"{"op":"shards"}"#)?;
        let shards = match response.get("shards") {
            Some(Json::Arr(items)) => items.clone(),
            other => return Err(format!("'shards' op answered no shard array: {other:?}")),
        };
        if shards.len() != expected_shards {
            return Err(format!(
                "front reports {} shard(s), expected {expected_shards}",
                shards.len()
            ));
        }
        for entry in &shards {
            let id = entry.get("id").and_then(Json::as_u64);
            let health = entry.get("health").and_then(Json::as_str);
            let well_formed = id.is_some()
                && matches!(health, Some("up" | "degraded" | "quarantined"))
                && entry.get("restarts").and_then(Json::as_u64).is_some()
                && entry.get("reroutes").and_then(Json::as_u64).is_some();
            if !well_formed {
                return Err(format!("malformed shard health block: {}", entry.dump()));
            }
        }
        eprintln!(
            "liteworp-load: shard fabric verified — {expected_shards} shard(s), health {:?}",
            shards
                .iter()
                .filter_map(|s| s.get("health").and_then(Json::as_str))
                .collect::<Vec<_>>()
        );
    }

    if let Some(path) = flags.get_str("stats-json").map(std::path::PathBuf::from) {
        let stats = client.expect_ok(r#"{"op":"stats"}"#)?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(&path, format!("{}\n", stats.dump()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("liteworp-load: wrote daemon stats to {}", path.display());
    }

    if flags.get_bool("shutdown") {
        client.expect_ok(r#"{"op":"shutdown"}"#)?;
        eprintln!("liteworp-load: daemon asked to shut down");
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("liteworp-load: FAILED: {e}");
        std::process::exit(1);
    }
}
