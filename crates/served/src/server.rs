//! The sweep-service daemon: accepts JSONL-framed requests over TCP,
//! multiplexes them over one shared [`SweepEngine`], and streams progress
//! to subscribers.
//!
//! # Request lifecycle
//!
//! A `submit` is validated against the experiment catalog, keyed by its
//! content ([`crate::proto::request_key`]), WAL-logged, and enqueued;
//! duplicates of a live or finished request are deduplicated to the
//! existing one (`"dedup": true`). Drainer threads pop keys and execute
//! each request's sweep on the shared engine — same jobs, same derived
//! seeds, same cache keys as the batch bins, so a daemon-served sweep
//! reproduces the batch `results_digest` byte for byte. Each request
//! journals to its own WAL under `state_dir/journals/`, so a daemon
//! killed mid-sweep resumes the request from its last completed job on
//! restart with `--resume`.
//!
//! # Shared state
//!
//! One [`SweepEngine`] (pool + result cache) serves every request; the
//! request registry, queue, and request WAL are daemon-global. Per-client
//! state is only the connection handler's socket.

use crate::frame::{read_frame_paced, write_frame, FrameError};
use crate::net;
use crate::proto::{err_response, format_key, ok_response, request_key, Request};
use crate::state::{DoneInfo, ReqPhase, RequestState, RequestWal, WalRecord};
use liteworp_bench::catalog;
use liteworp_bench::exec::{run_cells_on, SimCell, SIM_CODE_VERSION};
use liteworp_obs as obs;
use liteworp_runner::supervisor::Supervision;
use liteworp_runner::{Json, ProgressObserver, ResultCache, SweepEngine};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// How a daemon instance is configured.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks a free port (printed on startup).
    pub addr: String,
    /// Engine worker threads (`None` = `LITEWORP_JOBS` / core count).
    pub threads: Option<usize>,
    /// Where the daemon keeps its cache, journals, and request WAL.
    pub state_dir: PathBuf,
    /// Concurrent sweep drainers (how many requests run at once).
    pub drainers: usize,
    /// Replay the request WAL: unfinished submissions are re-enqueued
    /// and resume from their per-request journals.
    pub resume: bool,
    /// Disable the shared result cache.
    pub no_cache: bool,
    /// Broadcast a `{"stream":"metrics",…}` frame to every subscriber
    /// this often (seconds). `None` disables the periodic stream.
    pub metrics_interval: Option<f64>,
    /// Chaos hook: sleep this long inside the accept loop after every
    /// accepted connection, simulating a stalled/overwhelmed acceptor so
    /// the shard front's liveness probes can be tested. Never set it in
    /// production.
    pub stall_accept: Option<std::time::Duration>,
}

impl ServerConfig {
    /// Defaults: loopback with an ephemeral port, two drainers, cache
    /// on, fresh (non-resuming) start.
    pub fn new(state_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: None,
            state_dir: state_dir.into(),
            drainers: 2,
            resume: false,
            no_cache: false,
            metrics_interval: None,
            stall_accept: None,
        }
    }
}

/// Cap on telemetry lines retained per traced request, so a subscriber
/// replay cannot hold an unbounded event log in memory.
pub const TRACE_LINE_CAP: usize = 2000;

/// The daemon's registered metric handles (see `liteworp_obs::names`
/// for the registry S003 checks these literals against). Handles are
/// plain atomics, live whether or not the span plane is on.
struct ServedMetrics {
    requests_submitted: obs::Counter,
    requests_done: obs::Counter,
    requests_failed: obs::Counter,
    requests_cancelled: obs::Counter,
    jobs_total: obs::Counter,
    cache_hits: obs::Counter,
    cache_misses: obs::Counter,
    journal_hits: obs::Counter,
    queue_depth: obs::Gauge,
    active_drains: obs::Gauge,
}

impl ServedMetrics {
    fn new() -> ServedMetrics {
        ServedMetrics {
            requests_submitted: obs::counter("served.requests_submitted"),
            requests_done: obs::counter("served.requests_done"),
            requests_failed: obs::counter("served.requests_failed"),
            requests_cancelled: obs::counter("served.requests_cancelled"),
            jobs_total: obs::counter("served.jobs_total"),
            cache_hits: obs::counter("served.cache_hits"),
            cache_misses: obs::counter("served.cache_misses"),
            journal_hits: obs::counter("served.journal_hits"),
            queue_depth: obs::gauge("served.queue_depth"),
            active_drains: obs::gauge("served.active_drains"),
        }
    }
}

/// Holds a gauge one higher for the guard's lifetime (early returns
/// included).
struct GaugeHold(obs::Gauge);

impl GaugeHold {
    fn new(gauge: obs::Gauge) -> GaugeHold {
        gauge.add(1);
        GaugeHold(gauge)
    }
}

impl Drop for GaugeHold {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

struct DaemonState {
    engine: SweepEngine,
    registry: Mutex<BTreeMap<u64, Arc<RequestState>>>,
    queue: Mutex<VecDeque<u64>>,
    work: Condvar,
    shutdown: AtomicBool,
    wal: RequestWal,
    state_dir: PathBuf,
    local_addr: SocketAddr,
    metrics: ServedMetrics,
    drainer_count: usize,
    /// Obs-clock reading at startup, for `uptime_ms`.
    started_us: u64,
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl DaemonState {
    fn enqueue(&self, key: u64) {
        let mut queue = lock(&self.queue);
        queue.push_back(key);
        self.metrics.queue_depth.set(queue.len() as i64);
        drop(queue);
        self.work.notify_one();
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.work.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
    }

    fn journal_path(&self, key: u64) -> PathBuf {
        self.state_dir
            .join("journals")
            .join(format!("{}.jsonl", format_key(key)))
    }
}

/// A running daemon instance (in-process handle, used by the binary and
/// by integration tests).
pub struct Server {
    state: Arc<DaemonState>,
    accept: Option<std::thread::JoinHandle<()>>,
    drainers: Vec<std::thread::JoinHandle<()>>,
    metrics_pump: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, replays the WAL when resuming, and starts the accept and
    /// drainer threads.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        // The daemon always runs with the span plane on: its per-phase
        // latency quantiles (the `stats` op) come from span closings.
        obs::enable();
        std::fs::create_dir_all(&cfg.state_dir)?;
        let wal_path = cfg.state_dir.join("requests.jsonl");
        if !cfg.resume {
            let _ = std::fs::remove_file(&wal_path);
            let _ = std::fs::remove_dir_all(cfg.state_dir.join("journals"));
        }
        let (records, torn_bytes) = RequestWal::load_truncating(&wal_path);
        if torn_bytes > 0 {
            eprintln!(
                "liteworp-served: request WAL ended mid-append; truncated {torn_bytes} torn \
                 byte(s) before replay"
            );
        }
        let wal = RequestWal::open(&wal_path)?;

        let cache = (!cfg.no_cache).then(|| ResultCache::new(cfg.state_dir.join("cache")));
        let engine = SweepEngine::new(cfg.threads, cache, SIM_CODE_VERSION);

        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;

        let state = Arc::new(DaemonState {
            engine,
            registry: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            wal,
            state_dir: cfg.state_dir.clone(),
            local_addr,
            metrics: ServedMetrics::new(),
            drainer_count: cfg.drainers.max(1),
            started_us: obs::clock::now_micros(),
        });
        replay(&state, records);

        let accept = {
            let state = Arc::clone(&state);
            let stall = cfg.stall_accept;
            std::thread::spawn(move || accept_loop(listener, state, stall))
        };
        let drainers = (0..cfg.drainers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || drain_loop(state))
            })
            .collect();
        let metrics_pump = cfg.metrics_interval.filter(|s| *s > 0.0).map(|secs| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || metrics_loop(state, secs))
        });

        Ok(Server {
            state,
            accept: Some(accept),
            drainers,
            metrics_pump,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Initiates shutdown: stop accepting, let drainers finish their
    /// current sweep, leave still-queued submissions in the WAL for a
    /// `--resume` restart.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Waits for the accept loop and drainers to exit. Connection
    /// handler threads are detached; they notice the shutdown flag at
    /// their next frame and hang up.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for d in self.drainers.drain(..) {
            let _ = d.join();
        }
        if let Some(pump) = self.metrics_pump.take() {
            let _ = pump.join();
        }
    }
}

/// Rebuilds the registry and queue from WAL records, in order. A request
/// whose sweep never logged `done` (the daemon died while it was queued
/// or running) comes back `Queued`; its per-request journal then skips
/// the jobs that already completed. Telemetry trace lines are not
/// persisted, so a restarted daemon replays `done` requests without
/// them.
fn replay(state: &DaemonState, records: Vec<WalRecord>) {
    // `restore_phase` takes each request's own lock, so restores are
    // collected under the registry guard and applied after it drops —
    // one lock at a time (the C001 discipline). Order is preserved, and
    // each restore only touches its own request, so the final state is
    // identical to interleaved application.
    let mut registry = lock(&state.registry);
    let mut order: Vec<u64> = Vec::new();
    let mut restores: Vec<(Arc<RequestState>, ReqPhase)> = Vec::new();
    for record in records {
        match record {
            WalRecord::Submitted {
                key,
                kind,
                params,
                trace,
            } => {
                let req = registry
                    .entry(key)
                    .or_insert_with(|| Arc::new(RequestState::new(key, kind, params, trace)));
                restores.push((Arc::clone(req), ReqPhase::Queued));
                if !order.contains(&key) {
                    order.push(key);
                }
            }
            WalRecord::Done { key, info } => {
                if let Some(req) = registry.get(&key) {
                    restores.push((Arc::clone(req), ReqPhase::Done(info)));
                }
                order.retain(|k| *k != key);
            }
            WalRecord::Cancelled { key } => {
                if let Some(req) = registry.get(&key) {
                    restores.push((Arc::clone(req), ReqPhase::Cancelled));
                }
                order.retain(|k| *k != key);
            }
        }
    }
    drop(registry);
    for (req, phase) in restores {
        req.restore_phase(phase);
    }
    let mut queue = lock(&state.queue);
    queue.extend(order);
    if !queue.is_empty() {
        state.work.notify_all();
    }
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<DaemonState>,
    stall_accept: Option<std::time::Duration>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(stall) = stall_accept {
                    // Chaos hook: a deliberately unresponsive acceptor.
                    std::thread::sleep(stall);
                }
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, state);
                });
            }
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn drain_loop(state: Arc<DaemonState>) {
    loop {
        let key = {
            let mut queue = lock(&state.queue);
            loop {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(key) = queue.pop_front() {
                    state.metrics.queue_depth.set(queue.len() as i64);
                    break key;
                }
                queue = state
                    .work
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        drain_one(&state, key);
    }
}

/// Executes one request's sweep on the shared engine.
fn drain_one(state: &DaemonState, key: u64) {
    let Some(req) = lock(&state.registry).get(&key).cloned() else {
        return;
    };
    if !req.set_running() {
        return; // a cancel won the race, or a stale queue entry
    }
    let _request_span = obs::span("request");
    let _active = GaugeHold::new(state.metrics.active_drains.clone());
    let cells = match catalog::cells_for(&req.kind, &req.params) {
        Ok(cells) => cells,
        Err(e) => {
            // Submit validated this, so only a version-skewed WAL replay
            // can land here.
            state.metrics.requests_failed.inc();
            req.complete(Err(format!("catalog rejected request: {e}")), Vec::new());
            return;
        }
    };

    let journal = state.journal_path(key);
    let sup = Supervision {
        journal: Some(journal.clone()),
        resume: true,
        ..Supervision::default()
    };
    let observer: Arc<ProgressObserver> = {
        let req = Arc::clone(&req);
        Arc::new(move |p| {
            let frame = Json::object([
                ("stream", Json::from("progress")),
                ("req", Json::from(format_key(req.key))),
                ("index", Json::from(p.index)),
                ("total", Json::from(p.total)),
                ("label", Json::from(p.label)),
                ("ok", Json::from(p.ok)),
                ("cached", Json::from(p.cached)),
                ("journaled", Json::from(p.journaled)),
            ])
            .dump();
            req.broadcast(&frame);
        })
    };

    let run = {
        let _sweep_span = obs::span("sweep");
        run_cells_on(&state.engine, &cells, &sup, Some(observer))
    };
    let m = &run.manifest;
    state.metrics.jobs_total.add(m.jobs as u64);
    state.metrics.cache_hits.add(m.cache_hits as u64);
    state.metrics.cache_misses.add(m.cache_misses as u64);
    state.metrics.journal_hits.add(m.journal_hits as u64);
    if m.failed > 0 {
        // Keep the journal: completed jobs replay if the request is
        // retried after a restart.
        state.metrics.requests_failed.inc();
        req.complete(
            Err(format!("{} of {} jobs quarantined", m.failed, m.jobs)),
            Vec::new(),
        );
        return;
    }
    let trace_lines = if req.trace {
        trace_request(&cells, key)
    } else {
        Vec::new()
    };
    let info = DoneInfo {
        digest: m.results_digest,
        jobs: m.jobs,
        cache_hits: m.cache_hits,
        journal_hits: m.journal_hits,
        cache_misses: m.cache_misses,
        failed: m.failed,
    };
    let _ = state.wal.append(&WalRecord::Done {
        key,
        info: info.clone(),
    });
    let _ = std::fs::remove_file(&journal);
    state.metrics.requests_done.inc();
    req.complete(Ok(info), trace_lines);
}

/// Builds one `{"stream":"metrics",…}` frame: uptime, queue depth, and
/// the full registry snapshot.
fn metrics_frame(state: &DaemonState) -> String {
    Json::object([
        ("stream", Json::from("metrics")),
        (
            "uptime_ms",
            Json::from(obs::clock::now_micros().saturating_sub(state.started_us) / 1_000),
        ),
        ("metrics", obs::snapshot().to_json()),
    ])
    .dump()
}

/// Periodically broadcasts a metrics frame to every subscriber of every
/// live request (`--metrics-interval`). Sleeps in short steps so
/// shutdown is honored promptly.
fn metrics_loop(state: Arc<DaemonState>, interval_secs: f64) {
    let step = std::time::Duration::from_millis(50);
    let steps_per_tick = ((interval_secs / 0.05).ceil() as u64).max(1);
    loop {
        for _ in 0..steps_per_tick {
            if state.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(step);
        }
        let frame = metrics_frame(&state);
        let requests: Vec<Arc<RequestState>> = lock(&state.registry).values().cloned().collect();
        for req in requests {
            req.broadcast(&frame);
        }
    }
}

/// The `stats` response body: live daemon figures plus the full metrics
/// snapshot. `phase_latency_us` summarizes the per-span histograms the
/// drain and simulate paths feed (`span_us.<name>` series).
fn stats_pairs(state: &DaemonState) -> Vec<(String, Json)> {
    let queue_depth = lock(&state.queue).len();
    let phases: Vec<(ReqPhase, u64)> = {
        let registry = lock(&state.registry);
        registry.values().map(|r| (r.phase(), r.key)).collect()
    };
    let count = |want: &str| phases.iter().filter(|(p, _)| p.name() == want).count();
    let wal_bytes = std::fs::metadata(&state.wal.path)
        .map(|m| m.len())
        .unwrap_or(0);
    let snapshot = obs::snapshot();
    let phase_latency: Vec<(String, Json)> = snapshot
        .histograms
        .iter()
        .filter_map(|(name, h)| {
            let phase = name.strip_prefix("span_us.")?;
            Some((
                phase.to_string(),
                Json::object([
                    ("count", Json::from(h.count())),
                    ("p50", Json::from(h.p50())),
                    ("p95", Json::from(h.p95())),
                    ("max", Json::from(h.max())),
                ]),
            ))
        })
        .collect();
    let m = &state.metrics;
    vec![
        ("role".to_string(), Json::from("server")),
        (
            "uptime_ms".to_string(),
            Json::from(obs::clock::now_micros().saturating_sub(state.started_us) / 1_000),
        ),
        ("queue_depth".to_string(), Json::from(queue_depth)),
        ("drainers".to_string(), Json::from(state.drainer_count)),
        (
            "active_drains".to_string(),
            Json::from(m.active_drains.get().max(0) as u64),
        ),
        (
            "requests".to_string(),
            Json::object([
                ("registered", Json::from(phases.len())),
                ("queued", Json::from(count("queued"))),
                ("running", Json::from(count("running"))),
                ("submitted", Json::from(m.requests_submitted.get())),
                ("done", Json::from(m.requests_done.get())),
                ("failed", Json::from(m.requests_failed.get())),
                ("cancelled", Json::from(m.requests_cancelled.get())),
            ]),
        ),
        (
            "jobs".to_string(),
            Json::object([
                ("total", Json::from(m.jobs_total.get())),
                ("cache_hits", Json::from(m.cache_hits.get())),
                ("cache_misses", Json::from(m.cache_misses.get())),
                ("journal_hits", Json::from(m.journal_hits.get())),
            ]),
        ),
        ("wal_bytes".to_string(), Json::from(wal_bytes)),
        ("phase_latency_us".to_string(), Json::Obj(phase_latency)),
        ("metrics".to_string(), snapshot.to_json()),
    ]
}

/// Runs one instrumented seed of the request's first cell and wraps its
/// event log as subscriber frames (capped at [`TRACE_LINE_CAP`]).
fn trace_request(cells: &[SimCell], key: u64) -> Vec<String> {
    let Some(cell) = cells.first() else {
        return Vec::new();
    };
    let mut scenario = cell.scenario.clone();
    scenario.seed = cell.seed_base;
    let mut run = scenario.build();
    run.run_until_secs(cell.duration);
    let jsonl = run.sim().trace().log().to_jsonl();
    let mut lines: Vec<String> = jsonl
        .lines()
        .take(TRACE_LINE_CAP)
        .map(|line| {
            Json::object([
                ("stream", Json::from("telemetry")),
                ("req", Json::from(format_key(key))),
                (
                    "data",
                    Json::parse(line).unwrap_or_else(|_| Json::from(line)),
                ),
            ])
            .dump()
        })
        .collect();
    let total = jsonl.lines().count();
    if total > TRACE_LINE_CAP {
        lines.push(
            Json::object([
                ("stream", Json::from("telemetry")),
                ("req", Json::from(format_key(key))),
                ("truncated", Json::from(total - TRACE_LINE_CAP)),
            ])
            .dump(),
        );
    }
    lines
}

fn handle_connection(stream: TcpStream, state: Arc<DaemonState>) -> std::io::Result<()> {
    net::configure(&stream)?;
    let deadline = net::ConnDeadline::new(net::CONN_LIFETIME);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        if state.shutdown.load(Ordering::SeqCst) || deadline.expired() {
            return Ok(());
        }
        // A fresh pacer per frame: idle waits between frames get the
        // idle budget, and a started frame must complete within the
        // frame budget (slow-loris defence, `FrameError::FrameTimeout`).
        let pacer = net::FramePacer::new();
        let payload = match read_frame_paced(&mut reader, &pacer) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()),               // client hung up
            Err(FrameError::Io(_)) => return Ok(()), // idle timeout / transport death
            Err(e) => {
                // Framing errors are answered, then the connection is
                // dropped: the stream position is no longer trustworthy.
                let _ = write_frame(&mut writer, &err_response(&e.to_string()));
                return Ok(());
            }
        };
        let request = match Request::parse(&payload) {
            Ok(request) => request,
            Err(e) => {
                write_frame(&mut writer, &err_response(&e))?;
                continue;
            }
        };
        match request {
            Request::Submit {
                kind,
                params,
                trace,
            } => {
                let response = submit(&state, kind, params, trace);
                write_frame(&mut writer, &response)?;
            }
            Request::Status { req } => {
                // Registry and queue locks are taken one at a time (the
                // drain path does the same), so a stale position is
                // possible but a deadlock is not.
                let entry = lock(&state.registry).get(&req).cloned();
                let response = match entry {
                    Some(r) => {
                        let queue_position = lock(&state.queue).iter().position(|k| *k == req);
                        ok_response(r.status_json(queue_position))
                    }
                    None => err_response(&format!("unknown request {}", format_key(req))),
                };
                write_frame(&mut writer, &response)?;
            }
            Request::Stats => {
                write_frame(&mut writer, &ok_response(stats_pairs(&state)))?;
            }
            Request::Cancel { req } => {
                // Like Status: clone the entry out of the registry guard
                // before touching the request's own lock in `cancel()`.
                let entry = lock(&state.registry).get(&req).cloned();
                let response = match entry {
                    Some(r) => {
                        let cancelled = r.cancel();
                        if cancelled {
                            state.metrics.requests_cancelled.inc();
                            let _ = state.wal.append(&WalRecord::Cancelled { key: req });
                        }
                        ok_response([
                            ("req", Json::from(format_key(req))),
                            ("cancelled", Json::from(cancelled)),
                            ("phase", Json::from(r.phase().name())),
                        ])
                    }
                    None => err_response(&format!("unknown request {}", format_key(req))),
                };
                write_frame(&mut writer, &response)?;
            }
            Request::Subscribe { req } => {
                let Some(r) = lock(&state.registry).get(&req).cloned() else {
                    write_frame(
                        &mut writer,
                        &err_response(&format!("unknown request {}", format_key(req))),
                    )?;
                    continue;
                };
                let rx = r.subscribe();
                write_frame(
                    &mut writer,
                    &ok_response([
                        ("req", Json::from(format_key(req))),
                        ("stream", Json::from(true)),
                    ]),
                )?;
                // Stream until the request completes (sender dropped) or
                // the client goes away (write fails).
                for frame in rx {
                    write_frame(&mut writer, &frame)?;
                }
            }
            Request::Shards => {
                write_frame(
                    &mut writer,
                    &err_response("this daemon is not a shard front (run with --front)"),
                )?;
            }
            Request::Ping => {
                write_frame(&mut writer, &ok_response([("pong", Json::from(true))]))?;
            }
            Request::Shutdown => {
                write_frame(
                    &mut writer,
                    &ok_response([("shutting_down", Json::from(true))]),
                )?;
                writer.flush()?;
                state.begin_shutdown();
                return Ok(());
            }
        }
    }
}

/// Handles one `submit`: validate, dedup by content key, WAL, enqueue.
fn submit(state: &DaemonState, kind: String, params: Json, trace: bool) -> String {
    if let Err(e) = catalog::cells_for(&kind, &params) {
        return err_response(&e);
    }
    let key = request_key(&kind, &params);
    let mut registry = lock(&state.registry);
    match registry.get(&key).cloned() {
        None => {
            let req = Arc::new(RequestState::new(key, kind.clone(), params.clone(), trace));
            registry.insert(key, req);
            drop(registry);
            state.metrics.requests_submitted.inc();
            let _ = state.wal.append(&WalRecord::Submitted {
                key,
                kind,
                params,
                trace,
            });
            state.enqueue(key);
            ok_response([
                ("req", Json::from(format_key(key))),
                ("dedup", Json::from(false)),
                ("phase", Json::from("queued")),
            ])
        }
        Some(req) => {
            drop(registry);
            if req.requeue() {
                // A cancelled request revived: log a fresh submission so
                // WAL replay re-enqueues it, and queue it again.
                state.metrics.requests_submitted.inc();
                let _ = state.wal.append(&WalRecord::Submitted {
                    key,
                    kind: req.kind.clone(),
                    params: req.params.clone(),
                    trace: req.trace,
                });
                state.enqueue(key);
                return ok_response([
                    ("req", Json::from(format_key(key))),
                    ("dedup", Json::from(true)),
                    ("phase", Json::from("queued")),
                ]);
            }
            let phase = req.phase();
            let mut pairs = vec![
                ("req".to_string(), Json::from(format_key(key))),
                ("dedup".to_string(), Json::from(true)),
                ("phase".to_string(), Json::from(phase.name())),
            ];
            if let ReqPhase::Done(info) = &phase {
                pairs.push(("digest".to_string(), Json::from(format_key(info.digest))));
            }
            ok_response(pairs)
        }
    }
}
