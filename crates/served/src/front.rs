//! The shard front: one daemon that spawns, supervises, and routes to a
//! ring of per-shard worker daemons (`liteworp-served --front`).
//!
//! # Topology
//!
//! The front listens on the public address and owns N worker processes
//! (shards), each a full plain daemon — own engine pool, result cache,
//! per-request journals, request WAL — under
//! `state_dir/shard-<id>/`. Submits route to `key % N` (ring successor
//! when the home shard is out), so the same content-addressed request
//! always lands on the same shard while the ring is healthy. A local
//! in-process [`Server`] under `state_dir/local/` is the fallback of
//! last resort: when no shard can take a request the front degrades
//! onto it — reduced throughput, but work is never refused.
//!
//! # Supervision
//!
//! A supervisor thread probes every `Up` shard each interval: child
//! exit status (crash detection) plus a protocol ping over a *fresh*
//! connection (catches stalled accept loops, not just dead processes).
//! A failed shard walks the ladder `Up → Degraded → (Up | Quarantined)`:
//! restarts are paced by the runner's seeded capped-exponential backoff
//! ([`liteworp_runner::supervisor::RestartBudget`]) and bounded by
//! `max_restarts`; a restarted worker adopts its state dir with
//! `--resume`, so it finishes exactly the sweeps it had accepted. When
//! the budget is exhausted the shard is quarantined and its orphaned
//! (not-yet-done) requests are rerouted — in deterministic key order —
//! to ring survivors or the local engine. Because sweep digests are
//! pure functions of request content and seeds, a rerouted sweep drains
//! to the same digest as an uninterrupted one.
//!
//! # Lock discipline
//!
//! Registry and shard-slot locks are taken one at a time, always as
//! statement-scoped temporaries, and never across a socket operation —
//! the C001/C002 lint rules hold on every path here.

use crate::frame::{read_frame, read_frame_paced, write_frame, FrameError};
use crate::net;
use crate::proto::{err_response, format_key, ok_response, request_key, Request};
use crate::server::{Server, ServerConfig};
use crate::shard::{self, ShardHealth, ShardSlot, WorkerSpawn};
use liteworp_bench::catalog;
use liteworp_obs as obs;
use liteworp_runner::supervisor::RestartBudget;
use liteworp_runner::Json;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::Child;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How a front instance is configured.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Public listen address; port 0 picks a free port.
    pub addr: String,
    /// Root state directory (`shard-<id>/` and `local/` live under it).
    pub state_dir: PathBuf,
    /// Number of worker shards to spawn.
    pub shards: usize,
    /// How worker processes are launched.
    pub spawn: WorkerSpawn,
    /// Restarts allowed per shard before it is quarantined.
    pub max_restarts: u32,
    /// Seed for the deterministic restart backoff schedule.
    pub seed: u64,
    /// How often the supervisor probes shard liveness.
    pub ping_interval: Duration,
    /// Deadline per liveness probe (connect / write / read each).
    pub ping_timeout: Duration,
    /// Adopt existing shard state dirs (workers start with `--resume`).
    pub resume: bool,
}

impl FrontConfig {
    /// Defaults: loopback ephemeral port, 2 shards, 2 restarts per
    /// shard, 500 ms probe interval with a 2 s probe deadline.
    pub fn new(state_dir: impl Into<PathBuf>, exe: impl Into<PathBuf>) -> FrontConfig {
        FrontConfig {
            addr: "127.0.0.1:0".to_string(),
            state_dir: state_dir.into(),
            shards: 2,
            spawn: WorkerSpawn {
                exe: exe.into(),
                jobs: None,
                drainers: 2,
                no_cache: false,
            },
            max_restarts: 2,
            seed: 42,
            ping_interval: Duration::from_millis(500),
            ping_timeout: Duration::from_secs(2),
            resume: false,
        }
    }
}

/// Where a routed request currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// Worker shard by ring index.
    Shard(usize),
    /// The front's in-process fallback engine.
    Local,
}

fn target_json(target: Target) -> Json {
    match target {
        Target::Shard(id) => Json::from(id),
        Target::Local => Json::from("local"),
    }
}

/// The front's record of one submitted request: enough to re-submit it
/// anywhere (content-addressed identity) plus its current owner.
struct RoutedReq {
    kind: String,
    params: Json,
    trace: bool,
    target: Target,
    /// Printed digest once a `done` phase has been observed; lets the
    /// front answer status for requests whose owner is gone.
    done_digest: Option<String>,
}

struct FrontMetrics {
    submits: obs::Counter,
    submits_local: obs::Counter,
    reroutes: obs::Counter,
    restarts: obs::Counter,
    ping_failures: obs::Counter,
    shards_up: obs::Gauge,
}

impl FrontMetrics {
    fn new() -> FrontMetrics {
        FrontMetrics {
            submits: obs::counter("front.submits"),
            submits_local: obs::counter("front.submits_local"),
            reroutes: obs::counter("front.reroutes"),
            restarts: obs::counter("front.restarts"),
            ping_failures: obs::counter("front.ping_failures"),
            shards_up: obs::gauge("front.shards_up"),
        }
    }
}

struct FrontState {
    shards: Vec<ShardSlot>,
    registry: Mutex<BTreeMap<u64, RoutedReq>>,
    shutdown: AtomicBool,
    /// The front's own listen address.
    front_addr: SocketAddr,
    /// The in-process fallback engine's listen address.
    local_addr: SocketAddr,
    metrics: FrontMetrics,
    state_dir: PathBuf,
    started_us: u64,
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FrontState {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.front_addr);
    }
}

/// A running shard front (in-process handle, used by the binary and by
/// integration tests).
pub struct Front {
    state: Arc<FrontState>,
    accept: Option<std::thread::JoinHandle<()>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
    local: Option<Server>,
}

impl Front {
    /// Starts the fallback engine, spawns the worker ring, binds the
    /// public socket, and starts the accept and supervisor threads.
    pub fn start(cfg: FrontConfig) -> std::io::Result<Front> {
        obs::enable();
        std::fs::create_dir_all(&cfg.state_dir)?;

        // The never-dying last-resort shard: a full in-process daemon on
        // a loopback port. Started eagerly so degradation never races a
        // lazy bring-up.
        let local = Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: cfg.spawn.jobs,
            state_dir: cfg.state_dir.join("local"),
            drainers: cfg.spawn.drainers,
            resume: cfg.resume,
            no_cache: cfg.spawn.no_cache,
            metrics_interval: None,
            stall_accept: None,
        })?;

        let mut slots = Vec::new();
        let mut children: Vec<Option<Child>> = Vec::new();
        for id in 0..cfg.shards.max(1) {
            let dir = cfg.state_dir.join(format!("shard-{id}"));
            let (child, addr) = shard::spawn_worker(&cfg.spawn, &dir, cfg.resume)?;
            slots.push(ShardSlot::new(id, dir, addr, child.id()));
            children.push(Some(child));
        }
        let budgets: Vec<RestartBudget> = (0..slots.len())
            .map(|id| shard::restart_budget(cfg.seed, id, cfg.max_restarts))
            .collect();

        let listener = TcpListener::bind(&cfg.addr)?;
        let front_addr = listener.local_addr()?;

        let state = Arc::new(FrontState {
            shards: slots,
            registry: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
            front_addr,
            local_addr: local.local_addr(),
            metrics: FrontMetrics::new(),
            state_dir: cfg.state_dir.clone(),
            started_us: obs::clock::now_micros(),
        });
        publish(&state);

        let accept = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(listener, state))
        };
        let supervisor = {
            let state = Arc::clone(&state);
            let spawn = cfg.spawn.clone();
            let (interval, timeout) = (cfg.ping_interval, cfg.ping_timeout);
            std::thread::spawn(move || {
                supervise(state, children, budgets, spawn, interval, timeout)
            })
        };

        Ok(Front {
            state,
            accept: Some(accept),
            supervisor: Some(supervisor),
            local: Some(local),
        })
    }

    /// The front's bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.front_addr
    }

    /// Initiates shutdown: the supervisor shuts the worker ring down
    /// (gracefully where possible) and the accept loop stops.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Waits for the accept loop, the supervisor (which reaps the
    /// workers), and the local fallback engine to finish.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        if let Some(local) = self.local.take() {
            local.shutdown();
            local.join();
        }
    }
}

// ---------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------

/// Ring routing: the home shard is `key % N`; a non-routable home falls
/// through to its ring successors, then to the local engine. `exclude`
/// drops one shard from consideration (the one that just failed).
fn pick_target(state: &FrontState, key: u64, exclude: Option<usize>) -> Target {
    let n = state.shards.len();
    if n > 0 {
        let home = (key % n as u64) as usize;
        for off in 0..n {
            let id = (home + off) % n;
            if exclude == Some(id) {
                continue;
            }
            if state.shards[id].routable_addr().is_some() {
                return Target::Shard(id);
            }
        }
    }
    Target::Local
}

fn target_addr(state: &FrontState, target: Target) -> Option<SocketAddr> {
    match target {
        Target::Local => Some(state.local_addr),
        Target::Shard(id) => state.shards[id].routable_addr(),
    }
}

fn set_target(state: &FrontState, key: u64, target: Target) {
    if let Some(r) = lock(&state.registry).get_mut(&key) {
        r.target = target;
    }
}

/// Records an observed `done` digest so the front can answer status for
/// this request even after its owner shard is gone.
fn remember_done(state: &FrontState, key: u64, resp: &Json) {
    if resp.get("phase").and_then(Json::as_str) != Some("done") {
        return;
    }
    let Some(digest) = resp.get("digest").and_then(Json::as_str) else {
        return;
    };
    if let Some(r) = lock(&state.registry).get_mut(&key) {
        r.done_digest = Some(digest.to_string());
    }
}

fn submit_payload(kind: &str, params: &Json, trace: bool) -> String {
    Json::object([
        ("op", Json::from("submit")),
        ("kind", Json::from(kind)),
        ("params", params.clone()),
        ("trace", Json::from(trace)),
    ])
    .dump()
}

/// Overrides/appends fields on a worker response before relaying it.
fn with_fields(resp: Json, extra: Vec<(String, Json)>) -> String {
    match resp {
        Json::Obj(mut pairs) => {
            for (key, value) in extra {
                if let Some(slot) = pairs.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    pairs.push((key, value));
                }
            }
            Json::Obj(pairs).dump()
        }
        other => other.dump(),
    }
}

// ---------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------

/// Handles one routed `submit`: validate, register (dedup is decided by
/// the *front's* registry — a shard that restarted or inherited a
/// reroute has no memory of earlier submissions), then walk the forward
/// ladder owner → ring successors → local engine. Work is never
/// refused while the local engine stands.
fn front_submit(state: &FrontState, kind: String, params: Json, trace: bool) -> String {
    if let Err(e) = catalog::cells_for(&kind, &params) {
        return err_response(&e);
    }
    let _route_span = obs::span("route");
    let key = request_key(&kind, &params);
    let preferred = pick_target(state, key, None);
    let (mut target, dedup) = {
        let mut registry = lock(&state.registry);
        match registry.entry(key) {
            Entry::Occupied(occupied) => (occupied.get().target, true),
            Entry::Vacant(vacant) => {
                vacant.insert(RoutedReq {
                    kind: kind.clone(),
                    params: params.clone(),
                    trace,
                    target: preferred,
                    done_digest: None,
                });
                (preferred, false)
            }
        }
    };
    state.metrics.submits.inc();
    // A request owned by a quarantined shard is re-homed up front; one
    // owned by a merely degraded shard stays put (the worker resumes it).
    if let Target::Shard(id) = target {
        if state.shards[id].snapshot().health == ShardHealth::Quarantined {
            target = pick_target(state, key, Some(id));
            set_target(state, key, target);
        }
    }
    let payload = submit_payload(&kind, &params, trace);
    let mut attempts = 0usize;
    loop {
        let forwarded = match target_addr(state, target) {
            Some(addr) => shard::forward(addr, &payload),
            None => Err("shard not routable".to_string()),
        };
        match forwarded {
            Ok(resp) => {
                if resp.get("ok").and_then(Json::as_bool) != Some(true) {
                    // The worker rejected a validated submit — relay the
                    // error verbatim rather than masking it.
                    return resp.dump();
                }
                if target == Target::Local {
                    state.metrics.submits_local.inc();
                }
                set_target(state, key, target);
                remember_done(state, key, &resp);
                let shard_dedup = resp.get("dedup").and_then(Json::as_bool).unwrap_or(false);
                return with_fields(
                    resp,
                    vec![
                        ("dedup".to_string(), Json::from(dedup || shard_dedup)),
                        ("shard".to_string(), target_json(target)),
                    ],
                );
            }
            Err(e) => {
                if target == Target::Local {
                    return err_response(&format!("local fallback engine failed: {e}"));
                }
                attempts += 1;
                state.metrics.reroutes.inc();
                if let Target::Shard(id) = target {
                    state.shards[id].add_reroutes(1);
                }
                target = match target {
                    Target::Shard(id) if attempts < state.shards.len() => {
                        pick_target(state, key, Some(id))
                    }
                    _ => Target::Local,
                };
                set_target(state, key, target);
            }
        }
    }
}

fn synthesized_done(key: u64, kind: &str, digest: &str) -> String {
    ok_response([
        ("req", Json::from(format_key(key))),
        ("kind", Json::from(kind)),
        ("phase", Json::from("done")),
        ("digest", Json::from(digest)),
        ("synthesized", Json::from(true)),
    ])
}

fn synthesized_queued(key: u64, kind: &str, target: Target) -> String {
    ok_response([
        ("req", Json::from(format_key(key))),
        ("kind", Json::from(kind)),
        ("phase", Json::from("queued")),
        ("shard", target_json(target)),
        ("degraded", Json::from(true)),
    ])
}

/// Handles one routed `status`. The path self-heals: an owner shard
/// that does not know the request (it restarted without the WAL record,
/// or a reroute never landed) gets the submit re-planted, and a shard
/// that is unreachable is answered from the front's own knowledge —
/// the cached done digest, or a synthesized `queued` the client can
/// keep polling against.
fn front_status(state: &FrontState, req: u64) -> String {
    let known = {
        let registry = lock(&state.registry);
        registry.get(&req).map(|r| {
            (
                r.target,
                r.done_digest.clone(),
                r.kind.clone(),
                r.params.clone(),
                r.trace,
            )
        })
    };
    let Some((target, done, kind, params, trace)) = known else {
        return err_response(&format!("unknown request {}", format_key(req)));
    };
    if let Some(digest) = &done {
        // Terminal and remembered: answer locally, no forwarding needed.
        return synthesized_done(req, &kind, digest);
    }
    let addr = target_addr(state, target);
    let payload = Json::object([
        ("op", Json::from("status")),
        ("req", Json::from(format_key(req))),
    ])
    .dump();
    let forwarded = match addr {
        Some(a) => shard::forward(a, &payload),
        None => Err("shard not routable".to_string()),
    };
    match forwarded {
        Ok(resp) if resp.get("ok").and_then(Json::as_bool) == Some(true) => {
            remember_done(state, req, &resp);
            with_fields(resp, vec![("shard".to_string(), target_json(target))])
        }
        Ok(_shard_does_not_know_it) => {
            if let Some(a) = addr {
                let _ = shard::forward(a, &submit_payload(&kind, &params, trace));
            }
            synthesized_queued(req, &kind, target)
        }
        Err(_) => synthesized_queued(req, &kind, target),
    }
}

/// Handles one routed `cancel`: forwarded to the owner; an unreachable
/// owner answers `cancelled: false` (the request is still safe — it
/// either drains on the restarted worker or is rerouted).
fn front_cancel(state: &FrontState, req: u64) -> String {
    let target = {
        let registry = lock(&state.registry);
        registry.get(&req).map(|r| r.target)
    };
    let Some(target) = target else {
        return err_response(&format!("unknown request {}", format_key(req)));
    };
    let payload = Json::object([
        ("op", Json::from("cancel")),
        ("req", Json::from(format_key(req))),
    ])
    .dump();
    let forwarded = match target_addr(state, target) {
        Some(a) => shard::forward(a, &payload),
        None => Err("shard not routable".to_string()),
    };
    match forwarded {
        Ok(resp) if resp.get("ok").and_then(Json::as_bool) == Some(true) => {
            with_fields(resp, vec![("shard".to_string(), target_json(target))])
        }
        _ => ok_response([
            ("req", Json::from(format_key(req))),
            ("cancelled", Json::from(false)),
            ("shard", target_json(target)),
            ("degraded", Json::from(true)),
        ]),
    }
}

/// Proxies a subscription stream from the owner shard to the client.
/// The relay ends at the stream's final frame (`"stream":"done"`), when
/// either side hangs up, or on a worker death mid-stream (the client
/// re-subscribes and lands on the new owner).
fn front_subscribe(state: &FrontState, writer: &mut TcpStream, req: u64) -> std::io::Result<()> {
    let target = {
        let registry = lock(&state.registry);
        registry.get(&req).map(|r| r.target)
    };
    let Some(target) = target else {
        return write_frame(
            writer,
            &err_response(&format!("unknown request {}", format_key(req))),
        );
    };
    let Some(addr) = target_addr(state, target) else {
        return write_frame(
            writer,
            &err_response("owner shard is not routable; retry subscribe shortly"),
        );
    };
    let upstream = match TcpStream::connect_timeout(&addr, shard::FORWARD_TIMEOUT) {
        Ok(s) => s,
        Err(e) => return write_frame(writer, &err_response(&format!("shard connect: {e}"))),
    };
    let mut up_writer = upstream.try_clone()?;
    let payload = Json::object([
        ("op", Json::from("subscribe")),
        ("req", Json::from(format_key(req))),
    ])
    .dump();
    if write_frame(&mut up_writer, &payload).is_err() {
        return write_frame(writer, &err_response("shard hung up on subscribe"));
    }
    let mut up_reader = BufReader::new(upstream);
    loop {
        match read_frame(&mut up_reader) {
            Ok(Some(frame)) => {
                write_frame(writer, &frame)?;
                let done = Json::parse(&frame)
                    .ok()
                    .map(|j| {
                        j.get("stream").and_then(Json::as_str) == Some("done")
                            || j.get("ok").and_then(Json::as_bool) == Some(false)
                    })
                    .unwrap_or(false);
                if done {
                    return Ok(());
                }
            }
            Ok(None) | Err(_) => return Ok(()),
        }
    }
}

fn shards_json(state: &FrontState) -> Json {
    Json::Arr(state.shards.iter().map(|s| s.to_json()).collect())
}

/// The front's `stats` body: fabric health first (the per-shard block
/// the smoke scripts and load generator assert on), then the metrics
/// snapshot.
fn front_stats_pairs(state: &FrontState) -> Vec<(String, Json)> {
    let (registered, done_known) = {
        let registry = lock(&state.registry);
        let done = registry
            .values()
            .filter(|r| r.done_digest.is_some())
            .count();
        (registry.len(), done)
    };
    let up = state
        .shards
        .iter()
        .filter(|s| s.snapshot().health == ShardHealth::Up)
        .count();
    let m = &state.metrics;
    vec![
        ("role".to_string(), Json::from("front")),
        (
            "uptime_ms".to_string(),
            Json::from(obs::clock::now_micros().saturating_sub(state.started_us) / 1_000),
        ),
        ("shards_total".to_string(), Json::from(state.shards.len())),
        ("shards_up".to_string(), Json::from(up)),
        (
            "requests".to_string(),
            Json::object([
                ("registered", Json::from(registered)),
                ("done_known", Json::from(done_known)),
                ("submitted", Json::from(m.submits.get())),
                ("local", Json::from(m.submits_local.get())),
            ]),
        ),
        ("restarts_total".to_string(), Json::from(m.restarts.get())),
        ("reroutes_total".to_string(), Json::from(m.reroutes.get())),
        (
            "ping_failures_total".to_string(),
            Json::from(m.ping_failures.get()),
        ),
        ("shards".to_string(), shards_json(state)),
        (
            "local".to_string(),
            Json::object([("addr", Json::from(state.local_addr.to_string()))]),
        ),
        ("metrics".to_string(), obs::snapshot().to_json()),
    ]
}

// ---------------------------------------------------------------------
// Connection plumbing
// ---------------------------------------------------------------------

fn accept_loop(listener: TcpListener, state: Arc<FrontState>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, state);
                });
            }
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn handle_connection(stream: TcpStream, state: Arc<FrontState>) -> std::io::Result<()> {
    net::configure(&stream)?;
    let deadline = net::ConnDeadline::new(net::CONN_LIFETIME);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        if state.shutdown.load(Ordering::SeqCst) || deadline.expired() {
            return Ok(());
        }
        let pacer = net::FramePacer::new();
        let payload = match read_frame_paced(&mut reader, &pacer) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()),               // client hung up
            Err(FrameError::Io(_)) => return Ok(()), // idle timeout / transport death
            Err(e) => {
                let _ = write_frame(&mut writer, &err_response(&e.to_string()));
                return Ok(());
            }
        };
        let request = match Request::parse(&payload) {
            Ok(request) => request,
            Err(e) => {
                write_frame(&mut writer, &err_response(&e))?;
                continue;
            }
        };
        match request {
            Request::Submit {
                kind,
                params,
                trace,
            } => {
                let response = front_submit(&state, kind, params, trace);
                write_frame(&mut writer, &response)?;
            }
            Request::Status { req } => {
                let response = front_status(&state, req);
                write_frame(&mut writer, &response)?;
            }
            Request::Cancel { req } => {
                let response = front_cancel(&state, req);
                write_frame(&mut writer, &response)?;
            }
            Request::Subscribe { req } => {
                front_subscribe(&state, &mut writer, req)?;
            }
            Request::Stats => {
                write_frame(&mut writer, &ok_response(front_stats_pairs(&state)))?;
            }
            Request::Shards => {
                write_frame(&mut writer, &ok_response([("shards", shards_json(&state))]))?;
            }
            Request::Ping => {
                write_frame(&mut writer, &ok_response([("pong", Json::from(true))]))?;
            }
            Request::Shutdown => {
                write_frame(
                    &mut writer,
                    &ok_response([("shutting_down", Json::from(true))]),
                )?;
                writer.flush()?;
                state.begin_shutdown();
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Supervision
// ---------------------------------------------------------------------

/// Writes the current fabric topology to `state_dir/shards.json` so
/// scripts and operators can find worker pids/addresses without a
/// protocol client. Best-effort; refreshed on every health change.
fn publish(state: &FrontState) {
    let manifest = Json::object([
        ("front", Json::from(state.front_addr.to_string())),
        ("local", Json::from(state.local_addr.to_string())),
        ("shards", shards_json(state)),
    ])
    .dump();
    let _ = std::fs::write(state.state_dir.join("shards.json"), manifest + "\n");
}

fn update_up_gauge(state: &FrontState) {
    let up = state
        .shards
        .iter()
        .filter(|s| s.snapshot().health == ShardHealth::Up)
        .count();
    state.metrics.shards_up.set(up as i64);
}

fn reap(child_slot: &mut Option<Child>) {
    if let Some(mut child) = child_slot.take() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// The supervisor loop: probe, restart within budget, quarantine and
/// reroute beyond it, and reap the worker ring on shutdown.
fn supervise(
    state: Arc<FrontState>,
    mut children: Vec<Option<Child>>,
    mut budgets: Vec<RestartBudget>,
    spawn: WorkerSpawn,
    ping_interval: Duration,
    ping_timeout: Duration,
) {
    update_up_gauge(&state);
    loop {
        // Sleep in short steps so shutdown is honored promptly.
        let step = Duration::from_millis(25);
        let mut slept = Duration::ZERO;
        while slept < ping_interval {
            if state.shutdown.load(Ordering::SeqCst) {
                shutdown_workers(&state, &mut children);
                return;
            }
            std::thread::sleep(step);
            slept += step;
        }
        for id in 0..state.shards.len() {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let snap = state.shards[id].snapshot();
            if snap.health != ShardHealth::Up {
                continue;
            }
            let exited = match children[id].as_mut() {
                Some(child) => matches!(child.try_wait(), Ok(Some(_))),
                None => true,
            };
            let alive = !exited
                && snap
                    .addr
                    .map(|a| shard::ping(a, ping_timeout))
                    .unwrap_or(false);
            if alive {
                continue;
            }
            state.metrics.ping_failures.inc();
            eprintln!(
                "liteworp-served: shard {id} failed its liveness probe ({})",
                if exited {
                    "process exited"
                } else {
                    "unresponsive"
                }
            );
            state.shards[id].mark_degraded();
            publish(&state);
            update_up_gauge(&state);
            reap(&mut children[id]);
            restart_or_quarantine(
                &state,
                id,
                &mut children[id],
                &mut budgets[id],
                &spawn,
                ping_timeout,
            );
            publish(&state);
            update_up_gauge(&state);
        }
    }
}

/// Walks one degraded shard back up the ladder: seeded-backoff-paced
/// restarts (each adopting the shard's state dir with `--resume`) until
/// one answers a ping, or quarantine + deterministic reroute once the
/// budget is dry.
fn restart_or_quarantine(
    state: &Arc<FrontState>,
    id: usize,
    child_slot: &mut Option<Child>,
    budget: &mut RestartBudget,
    spawn: &WorkerSpawn,
    ping_timeout: Duration,
) {
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Some(pause_us) = budget.next_backoff_us() else {
            eprintln!(
                "liteworp-served: shard {id} exhausted its restart budget; quarantining and \
                 rerouting its requests"
            );
            state.shards[id].mark_quarantined();
            reroute_orphans(state, id);
            return;
        };
        std::thread::sleep(Duration::from_micros(pause_us));
        match shard::spawn_worker(spawn, &state.shards[id].state_dir, true) {
            Ok((child, addr)) => {
                if shard::ping(addr, ping_timeout) {
                    let pid = child.id();
                    state.shards[id].mark_restarted(addr, pid);
                    state.metrics.restarts.inc();
                    *child_slot = Some(child);
                    eprintln!(
                        "liteworp-served: shard {id} restarted (pid {pid}, {} restart(s) used)",
                        budget.used()
                    );
                    return;
                }
                let mut child = child;
                let _ = child.kill();
                let _ = child.wait();
            }
            Err(e) => eprintln!("liteworp-served: shard {id} restart failed: {e}"),
        }
    }
}

/// Rerouting at quarantine: every not-yet-done request owned by the
/// dead shard is re-submitted to a survivor (ring successor) or the
/// local engine. The registry is a `BTreeMap`, so orphans reroute in
/// key order — deterministic for a given registry state. Forwarding is
/// best-effort: a reroute that does not land is re-planted by the
/// self-healing status path on the client's next poll.
fn reroute_orphans(state: &Arc<FrontState>, dead: usize) {
    let orphans: Vec<(u64, String, Json, bool)> = {
        let registry = lock(&state.registry);
        registry
            .iter()
            .filter(|(_, r)| r.target == Target::Shard(dead) && r.done_digest.is_none())
            .map(|(k, r)| (*k, r.kind.clone(), r.params.clone(), r.trace))
            .collect()
    };
    if orphans.is_empty() {
        return;
    }
    eprintln!(
        "liteworp-served: rerouting {} orphaned request(s) off shard {dead}",
        orphans.len()
    );
    for (key, kind, params, trace) in orphans {
        let target = pick_target(state, key, Some(dead));
        set_target(state, key, target);
        state.metrics.reroutes.inc();
        state.shards[dead].add_reroutes(1);
        if target == Target::Local {
            state.metrics.submits_local.inc();
        }
        let payload = submit_payload(&kind, &params, trace);
        if let Some(addr) = target_addr(state, target) {
            let _ = shard::forward(addr, &payload);
        }
    }
}

/// Shuts the worker ring down: graceful protocol shutdown where the
/// worker still answers, SIGKILL otherwise, then reap every child.
fn shutdown_workers(state: &FrontState, children: &mut [Option<Child>]) {
    for id in 0..children.len() {
        let addr = state.shards[id].snapshot().addr;
        if let Some(mut child) = children[id].take() {
            let graceful = addr
                .map(|a| shard::forward(a, r#"{"op":"shutdown"}"#).is_ok())
                .unwrap_or(false);
            if !graceful {
                let _ = child.kill();
            }
            let _ = child.wait();
        }
    }
}
