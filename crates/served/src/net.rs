//! The daemon's socket-timeout boundary — the **only** place in this
//! crate that touches the host wall clock.
//!
//! Sweep results never depend on wall time (determinism is seed- and
//! sim-time-based throughout the workspace); the clock here only bounds
//! how long a silent or trickling client can hold a connection handler
//! thread. The lint gate (`liteworp-lint` rule L004) pins the
//! `allow(D001)` sites to this file.

use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long a connection may sit idle between frames before the daemon
/// hangs up on it. Read timeouts surface as transport errors in the
/// framing layer, and the handler closes the connection.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Absolute lifetime cap per connection: even a client that keeps
/// issuing requests is asked to reconnect after this long, so handler
/// threads cannot accumulate forever.
pub const CONN_LIFETIME: Duration = Duration::from_secs(3600);

/// Applies the daemon's socket policy to an accepted connection.
pub fn configure(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IDLE_TIMEOUT))?;
    stream.set_nodelay(true)
}

/// Tracks one connection's absolute lifetime against [`CONN_LIFETIME`].
pub struct ConnDeadline {
    opened: Instant,
    limit: Duration,
}

impl ConnDeadline {
    /// Starts the clock for a freshly accepted connection.
    pub fn new(limit: Duration) -> ConnDeadline {
        ConnDeadline {
            // lint: allow(D001) socket-lifetime boundary: bounds how long
            // a client holds a handler thread; never feeds into results
            opened: Instant::now(),
            limit,
        }
    }

    /// Whether the connection has outlived its welcome.
    pub fn expired(&self) -> bool {
        self.opened.elapsed() >= self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_fresh_deadline_is_not_expired_and_a_zero_one_is() {
        assert!(!ConnDeadline::new(CONN_LIFETIME).expired());
        assert!(ConnDeadline::new(Duration::ZERO).expired());
    }
}
