//! The daemon's socket-timeout boundary — the **only** place in this
//! crate that touches the host wall clock.
//!
//! Sweep results never depend on wall time (determinism is seed- and
//! sim-time-based throughout the workspace); the clock here only bounds
//! how long a silent or trickling client can hold a connection handler
//! thread. The lint gate (`liteworp-lint` rule L004) pins the
//! `allow(D001)` sites to this file.
//!
//! Two layers of defence:
//!
//! * [`configure`] arms a short *poll tick* read timeout on the socket.
//!   Each timeout surfaces as a `WouldBlock` in the framing layer, which
//!   forwards it to the connection's [`FramePacer`].
//! * [`FramePacer`] converts ticks into policy: a client may idle up to
//!   [`IDLE_TIMEOUT`] between frames, but once a frame has started it
//!   must complete within [`FRAME_TIMEOUT`] or the read aborts with the
//!   typed [`FrameError::FrameTimeout`] — a slow-loris client trickling
//!   one byte per tick can no longer hold a handler thread for the
//!   connection lifetime.

use crate::frame::{FrameError, ReadPacer};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long a connection may sit idle between frames before the daemon
/// hangs up on it. Idle expiry surfaces as a transport `Io` error in
/// the framing layer, and the handler closes the connection silently.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Once the first byte of a frame has arrived, the rest must follow
/// within this budget (measured from the start of the read call).
pub const FRAME_TIMEOUT: Duration = Duration::from_secs(20);

/// Socket read timeout — the granularity at which a stalled read checks
/// in with the [`FramePacer`] (and at which shutdown is noticed).
pub const POLL_TICK: Duration = Duration::from_secs(1);

/// Absolute lifetime cap per connection: even a client that keeps
/// issuing requests is asked to reconnect after this long, so handler
/// threads cannot accumulate forever.
pub const CONN_LIFETIME: Duration = Duration::from_secs(3600);

/// Applies the daemon's socket policy to an accepted connection.
pub fn configure(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_TICK))?;
    stream.set_nodelay(true)
}

/// Tracks one connection's absolute lifetime against [`CONN_LIFETIME`].
pub struct ConnDeadline {
    opened: Instant,
    limit: Duration,
}

impl ConnDeadline {
    /// Starts the clock for a freshly accepted connection.
    pub fn new(limit: Duration) -> ConnDeadline {
        ConnDeadline {
            // lint: allow(D001) socket-lifetime boundary: bounds how long
            // a client holds a handler thread; never feeds into results
            opened: Instant::now(),
            limit,
        }
    }

    /// Whether the connection has outlived its welcome.
    pub fn expired(&self) -> bool {
        self.opened.elapsed() >= self.limit
    }
}

/// Per-frame read pacer: construct one before each `read_frame_paced`
/// call. Waiting for a frame to *start* is bounded by the idle limit;
/// assembling a started frame is bounded by idle + frame budget from
/// the start of the call (a client cannot bank idle time to extend a
/// trickled frame beyond that sum).
pub struct FramePacer {
    started: Instant,
    idle_limit: Duration,
    frame_limit: Duration,
}

impl FramePacer {
    /// Starts the per-frame clock with the daemon's default limits.
    pub fn new() -> FramePacer {
        FramePacer::with_limits(IDLE_TIMEOUT, FRAME_TIMEOUT)
    }

    /// Starts the per-frame clock with explicit limits (tests).
    pub fn with_limits(idle_limit: Duration, frame_limit: Duration) -> FramePacer {
        FramePacer {
            // lint: allow(D001) socket-deadline boundary: bounds how long
            // one frame may take to arrive; never feeds into results
            started: Instant::now(),
            idle_limit,
            frame_limit,
        }
    }
}

impl Default for FramePacer {
    fn default() -> FramePacer {
        FramePacer::new()
    }
}

impl ReadPacer for FramePacer {
    fn tick(&self, mid_frame: bool) -> Result<(), FrameError> {
        let elapsed = self.started.elapsed();
        if mid_frame {
            if elapsed >= self.idle_limit + self.frame_limit {
                return Err(FrameError::FrameTimeout);
            }
        } else if elapsed >= self.idle_limit {
            return Err(FrameError::Io("idle timeout".to_string()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_fresh_deadline_is_not_expired_and_a_zero_one_is() {
        assert!(!ConnDeadline::new(CONN_LIFETIME).expired());
        assert!(ConnDeadline::new(Duration::ZERO).expired());
    }

    #[test]
    fn frame_pacer_distinguishes_idle_from_mid_frame_expiry() {
        // Zero limits: both arms expire immediately, with distinct types.
        let p = FramePacer::with_limits(Duration::ZERO, Duration::ZERO);
        assert_eq!(p.tick(true), Err(FrameError::FrameTimeout));
        assert!(matches!(p.tick(false), Err(FrameError::Io(_))));

        // Generous limits: both arms keep waiting.
        let p = FramePacer::with_limits(Duration::from_secs(60), Duration::from_secs(60));
        assert_eq!(p.tick(true), Ok(()));
        assert_eq!(p.tick(false), Ok(()));

        // Idle exhausted but frame budget open: a started frame may
        // still complete while a between-frames wait would hang up.
        let p = FramePacer::with_limits(Duration::ZERO, Duration::from_secs(60));
        assert_eq!(p.tick(true), Ok(()));
        assert!(matches!(p.tick(false), Err(FrameError::Io(_))));
    }
}
