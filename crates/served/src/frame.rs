//! Length-delimited JSONL framing for the service socket.
//!
//! A frame on the wire is `<decimal-length>\n<payload>\n` where the
//! length counts the payload bytes (excluding the trailing newline).
//! The reader also accepts a *bare* JSON line — any line whose first
//! byte is `{` — so a human at `nc` can type requests without counting
//! bytes; responses are always written in the length-delimited form.
//!
//! Frames larger than [`MAX_FRAME`] are rejected before their payload is
//! read, so a hostile or buggy client cannot make the daemon buffer
//! unbounded input.

use std::io::{BufRead, Write};

/// Maximum accepted payload size in bytes (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The declared length exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// The length line was not a decimal number (and not a bare JSON
    /// line). Carries the offending line.
    BadLength(String),
    /// The stream ended mid-frame (declared length, fewer bytes).
    Torn,
    /// The underlying transport failed.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            FrameError::BadLength(line) => write!(f, "bad frame length line: {line:?}"),
            FrameError::Torn => write!(f, "stream ended mid-frame"),
            FrameError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// Writes one length-delimited frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    w.write_all(format!("{}\n", payload.len()).as_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean end of stream (EOF
/// before any byte of a new frame), `Ok(Some(payload))` on success.
/// Blank lines between frames are skipped so interactive sessions can
/// hit return freely.
pub fn read_frame(r: &mut impl BufRead) -> Result<Option<String>, FrameError> {
    let header = loop {
        let mut line = String::new();
        match r.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        break trimmed.to_string();
    };
    // Bare-JSON escape hatch for humans: a line that *is* the payload.
    if header.starts_with('{') {
        return Ok(Some(header));
    }
    let len: usize = header
        .trim()
        .parse()
        .map_err(|_| FrameError::BadLength(header.clone()))?;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    if let Err(e) = r.read_exact(&mut payload) {
        return Err(match e.kind() {
            std::io::ErrorKind::UnexpectedEof => FrameError::Torn,
            _ => FrameError::Io(e.to_string()),
        });
    }
    // Consume the trailing newline (tolerate a missing one at EOF).
    let mut nl = [0u8; 1];
    match r.read_exact(&mut nl) {
        Ok(()) if nl[0] != b'\n' => {
            return Err(FrameError::BadLength(format!(
                "expected newline after {len}-byte payload, got byte {:#04x}",
                nl[0]
            )))
        }
        _ => {}
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::BadLength("payload is not valid UTF-8".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip(payloads: &[&str]) -> Vec<String> {
        let mut buf = Vec::new();
        for p in payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut r = BufReader::new(&buf[..]);
        let mut out = Vec::new();
        while let Some(p) = read_frame(&mut r).unwrap() {
            out.push(p);
        }
        out
    }

    #[test]
    fn frames_round_trip_in_order() {
        let payloads = [r#"{"op":"ping"}"#, "", "exact\nnewlines\ninside", "x"];
        assert_eq!(round_trip(&payloads), payloads);
    }

    #[test]
    fn bare_json_lines_are_accepted() {
        let wire = b"{\"op\":\"ping\"}\n\n{\"op\":\"status\"}\n";
        let mut r = BufReader::new(&wire[..]);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), r#"{"op":"ping"}"#);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), r#"{"op":"status"}"#);
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_rejected_without_reading_them() {
        let wire = format!("{}\nwhatever", MAX_FRAME + 1);
        let mut r = BufReader::new(wire.as_bytes());
        assert_eq!(
            read_frame(&mut r),
            Err(FrameError::Oversized(MAX_FRAME + 1))
        );
    }

    #[test]
    fn torn_frames_and_bad_lengths_are_typed() {
        let mut r = BufReader::new(&b"10\nshort"[..]);
        assert_eq!(read_frame(&mut r), Err(FrameError::Torn));
        let mut r = BufReader::new(&b"not-a-length\n"[..]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::BadLength(_))));
        // A payload not followed by a newline mid-stream is a framing bug.
        let mut r = BufReader::new(&b"2\nabX"[..]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::BadLength(_))));
    }

    #[test]
    fn missing_trailing_newline_at_eof_is_tolerated() {
        let mut r = BufReader::new(&b"5\nhello"[..]);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "hello");
    }
}
