//! Length-delimited JSONL framing for the service socket.
//!
//! A frame on the wire is `<decimal-length>\n<payload>\n` where the
//! length counts the payload bytes (excluding the trailing newline).
//! The reader also accepts a *bare* JSON line — any line whose first
//! byte is `{` — so a human at `nc` can type requests without counting
//! bytes; responses are always written in the length-delimited form.
//!
//! Frames larger than [`MAX_FRAME`] are rejected before their payload is
//! read, so a hostile or buggy client cannot make the daemon buffer
//! unbounded input.
//!
//! ## Pacing
//!
//! [`read_frame_paced`] accepts a [`ReadPacer`] that is consulted every
//! time the transport reports a read timeout (`WouldBlock`/`TimedOut`).
//! The daemon pairs this with a short socket read timeout so a
//! slow-loris client — one that opens a frame and then trickles bytes —
//! is bounded by a per-frame deadline ([`FrameError::FrameTimeout`])
//! instead of holding a handler thread for the connection lifetime.
//! This module stays clock-free: the pacer implementation that actually
//! reads a clock lives in `net.rs`, inside the `WALL_CLOCK_BOUNDARY`.

use std::io::{BufRead, ErrorKind, Write};

/// Maximum accepted payload size in bytes (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The declared length exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// The length line was not a decimal number (and not a bare JSON
    /// line). Carries the offending line.
    BadLength(String),
    /// The stream ended mid-frame (declared length, fewer bytes).
    Torn,
    /// A frame was started but not completed within the per-frame read
    /// deadline (slow-loris defence; see [`ReadPacer`]).
    FrameTimeout,
    /// The underlying transport failed.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            FrameError::BadLength(line) => write!(f, "bad frame length line: {line:?}"),
            FrameError::Torn => write!(f, "stream ended mid-frame"),
            FrameError::FrameTimeout => write!(f, "frame not completed within the read deadline"),
            FrameError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// Decides whether a stalled read may continue.
///
/// `tick` is called once per transport read timeout while a frame is
/// being awaited (`mid_frame == false`) or assembled (`mid_frame ==
/// true`). Returning `Err` aborts the read with that error; returning
/// `Ok(())` retries the read. Implementations hold whatever notion of
/// time they like — the framing layer itself never reads a clock.
pub trait ReadPacer {
    /// One transport timeout elapsed; decide whether to keep waiting.
    fn tick(&self, mid_frame: bool) -> Result<(), FrameError>;
}

/// The pacer behind plain [`read_frame`]: any transport timeout is
/// surfaced as an `Io` error, preserving the historical behavior where
/// the socket read timeout *was* the frame deadline.
struct FailFast;

impl ReadPacer for FailFast {
    fn tick(&self, _mid_frame: bool) -> Result<(), FrameError> {
        Err(FrameError::Io("read timed out".to_string()))
    }
}

/// Writes one length-delimited frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    w.write_all(format!("{}\n", payload.len()).as_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Pulls the next byte off the reader, consulting the pacer on every
/// transport timeout. `Ok(None)` is end of stream.
fn next_byte(
    r: &mut impl BufRead,
    pacer: &impl ReadPacer,
    mid_frame: bool,
) -> Result<Option<u8>, FrameError> {
    loop {
        let got = match r.fill_buf() {
            Ok([]) => return Ok(None),
            Ok(buf) => Some(buf[0]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => None,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.to_string())),
        };
        match got {
            Some(b) => {
                r.consume(1);
                return Ok(Some(b));
            }
            None => pacer.tick(mid_frame)?,
        }
    }
}

/// Reads one frame. Returns `Ok(None)` on a clean end of stream (EOF
/// before any byte of a new frame), `Ok(Some(payload))` on success.
/// Blank lines between frames are skipped so interactive sessions can
/// hit return freely.
pub fn read_frame(r: &mut impl BufRead) -> Result<Option<String>, FrameError> {
    read_frame_paced(r, &FailFast)
}

/// [`read_frame`] with an explicit [`ReadPacer`]. The pacer is ticked
/// on every transport read timeout, with `mid_frame` true once at least
/// one byte of the current frame has been consumed — so an
/// implementation can allow a long idle wait between frames while
/// bounding how long a single frame may take to arrive.
pub fn read_frame_paced(
    r: &mut impl BufRead,
    pacer: &impl ReadPacer,
) -> Result<Option<String>, FrameError> {
    let header = loop {
        let mut line: Vec<u8> = Vec::new();
        loop {
            match next_byte(r, pacer, !line.is_empty())? {
                None if line.is_empty() => return Ok(None),
                None => break,
                Some(b'\n') => break,
                Some(b) => line.push(b),
            }
        }
        let text = String::from_utf8(line)
            .map_err(|_| FrameError::BadLength("header is not valid UTF-8".to_string()))?;
        let trimmed = text.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        break trimmed.to_string();
    };
    // Bare-JSON escape hatch for humans: a line that *is* the payload.
    if header.starts_with('{') {
        return Ok(Some(header));
    }
    let len: usize = header
        .trim()
        .parse()
        .map_err(|_| FrameError::BadLength(header.clone()))?;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = Vec::with_capacity(len);
    while payload.len() < len {
        match next_byte(r, pacer, true)? {
            None => return Err(FrameError::Torn),
            Some(b) => payload.push(b),
        }
    }
    // Consume the trailing newline. A missing one (EOF, or a pacer that
    // gives up waiting for the courtesy byte) is tolerated: the payload
    // is already complete.
    match next_byte(r, pacer, true) {
        Ok(Some(b)) if b != b'\n' => {
            return Err(FrameError::BadLength(format!(
                "expected newline after {len}-byte payload, got byte {b:#04x}"
            )))
        }
        _ => {}
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::BadLength("payload is not valid UTF-8".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::io::{BufReader, Read};

    fn round_trip(payloads: &[&str]) -> Vec<String> {
        let mut buf = Vec::new();
        for p in payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut r = BufReader::new(&buf[..]);
        let mut out = Vec::new();
        while let Some(p) = read_frame(&mut r).unwrap() {
            out.push(p);
        }
        out
    }

    #[test]
    fn frames_round_trip_in_order() {
        let payloads = [r#"{"op":"ping"}"#, "", "exact\nnewlines\ninside", "x"];
        assert_eq!(round_trip(&payloads), payloads);
    }

    #[test]
    fn bare_json_lines_are_accepted() {
        let wire = b"{\"op\":\"ping\"}\n\n{\"op\":\"status\"}\n";
        let mut r = BufReader::new(&wire[..]);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), r#"{"op":"ping"}"#);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), r#"{"op":"status"}"#);
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_rejected_without_reading_them() {
        let wire = format!("{}\nwhatever", MAX_FRAME + 1);
        let mut r = BufReader::new(wire.as_bytes());
        assert_eq!(
            read_frame(&mut r),
            Err(FrameError::Oversized(MAX_FRAME + 1))
        );
    }

    #[test]
    fn torn_frames_and_bad_lengths_are_typed() {
        let mut r = BufReader::new(&b"10\nshort"[..]);
        assert_eq!(read_frame(&mut r), Err(FrameError::Torn));
        let mut r = BufReader::new(&b"not-a-length\n"[..]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::BadLength(_))));
        // A payload not followed by a newline mid-stream is a framing bug.
        let mut r = BufReader::new(&b"2\nabX"[..]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::BadLength(_))));
    }

    #[test]
    fn missing_trailing_newline_at_eof_is_tolerated() {
        let mut r = BufReader::new(&b"5\nhello"[..]);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "hello");
    }

    /// A transport that yields one byte per read, with a read timeout
    /// reported between every byte — the shape of a slow-loris client.
    struct Trickle<'a> {
        bytes: &'a [u8],
        pos: Cell<usize>,
        ready: Cell<bool>,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pos.get() >= self.bytes.len() {
                return Ok(0);
            }
            if !self.ready.get() {
                self.ready.set(true);
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "not yet"));
            }
            self.ready.set(false);
            out[0] = self.bytes[self.pos.get()];
            self.pos.set(self.pos.get() + 1);
            Ok(1)
        }
    }

    /// A pacer that allows `budget` mid-frame ticks before expiring.
    struct CountdownPacer {
        budget: Cell<u32>,
    }

    impl ReadPacer for CountdownPacer {
        fn tick(&self, mid_frame: bool) -> Result<(), FrameError> {
            if !mid_frame {
                return Ok(());
            }
            if self.budget.get() == 0 {
                return Err(FrameError::FrameTimeout);
            }
            self.budget.set(self.budget.get() - 1);
            Ok(())
        }
    }

    #[test]
    fn slow_loris_frame_hits_the_typed_deadline() {
        let wire = b"5\nhello\n";
        // Enough budget: the trickled frame completes.
        let mut r = BufReader::new(Trickle {
            bytes: wire,
            pos: Cell::new(0),
            ready: Cell::new(false),
        });
        let pacer = CountdownPacer {
            budget: Cell::new(64),
        };
        assert_eq!(read_frame_paced(&mut r, &pacer).unwrap().unwrap(), "hello");

        // Budget exhausted mid-frame: typed FrameTimeout, not a generic
        // io error.
        let mut r = BufReader::new(Trickle {
            bytes: wire,
            pos: Cell::new(0),
            ready: Cell::new(false),
        });
        let pacer = CountdownPacer {
            budget: Cell::new(2),
        };
        assert_eq!(
            read_frame_paced(&mut r, &pacer),
            Err(FrameError::FrameTimeout)
        );
    }

    #[test]
    fn idle_waits_between_frames_do_not_count_against_the_frame_budget() {
        // The first ticks happen before any frame byte arrives; a pacer
        // that only limits mid-frame ticks must still read the frame.
        let wire = b"3\nabc\n";
        let mut r = BufReader::new(Trickle {
            bytes: wire,
            pos: Cell::new(0),
            ready: Cell::new(false),
        });
        let pacer = CountdownPacer {
            budget: Cell::new(32),
        };
        assert_eq!(read_frame_paced(&mut r, &pacer).unwrap().unwrap(), "abc");
    }
}
