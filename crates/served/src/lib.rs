//! `liteworp-served`: a long-lived sweep-service daemon for the LITEWORP
//! reproduction.
//!
//! Instead of one process per experiment, the daemon keeps a warm
//! [`liteworp_runner::SweepEngine`] — persistent worker pool, shared
//! content-addressed result cache, per-request resume journals — and
//! serves experiment sweeps to many concurrent clients over a
//! length-delimited JSONL socket protocol (`submit`, `status`, `cancel`,
//! `subscribe`, `stats`, `ping`, `shutdown`; see `EXPERIMENTS.md`
//! §"Served mode").
//!
//! Determinism contract: a sweep served by the daemon produces the
//! byte-identical `results_digest` the batch binaries produce for the
//! same experiment, regardless of concurrency, cache state, duplicate
//! submissions, cancellations, or a crash + `--resume` restart in
//! between. The `liteworp-load` companion binary drives a daemon with
//! thousands of mixed requests and checks exactly that.
//!
//! For horizontal scale and fault isolation, `liteworp-served --front`
//! runs the same binary as a *shard front*: it spawns N worker daemons
//! (each a failure domain with its own pool, cache, and journals),
//! routes submits by the content-addressed request key, supervises the
//! workers (bounded seeded-backoff restarts, quarantine + deterministic
//! rerouting beyond the budget), and degrades onto an in-process engine
//! rather than refuse work. See [`front`] and [`shard`], and
//! DESIGN.md §13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod front;
pub mod net;
pub mod proto;
pub mod server;
pub mod shard;
pub mod state;
