//! The request/response vocabulary of the service protocol.
//!
//! Every frame payload is one JSON object. Requests carry an `op` field
//! selecting the operation; responses always carry `ok` (and `error`
//! when `ok` is false). Request identity is content-addressed: a
//! [`request_key`] is the FNV-64 of the experiment kind plus the
//! *canonicalized* parameter object, so two clients submitting the same
//! experiment — even with differently-ordered JSON fields — share one
//! request, one sweep, and one cache entry.

use liteworp_runner::cache::fnv64;
use liteworp_runner::Json;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue an experiment sweep (idempotent per [`request_key`]).
    Submit {
        /// Catalog kind (see `liteworp_bench::catalog::KINDS`).
        kind: String,
        /// Parameter object (possibly `Null` for all defaults).
        params: Json,
        /// Also run one instrumented seed and retain its telemetry
        /// trace for subscribers.
        trace: bool,
    },
    /// Report a request's phase and result summary.
    Status {
        /// The request key, as printed in the submit response.
        req: u64,
    },
    /// Cancel a request that is still queued (running sweeps finish).
    Cancel {
        /// The request key.
        req: u64,
    },
    /// Stream progress / telemetry / completion frames for a request.
    Subscribe {
        /// The request key.
        req: u64,
    },
    /// Live daemon introspection: queue depth, drain concurrency, cache
    /// hit/miss counters, WAL size, per-phase latency quantiles, uptime.
    Stats,
    /// Per-shard health block of a shard front (health, restart and
    /// reroute counters, worker pids). A plain daemon answers an error.
    Shards,
    /// Liveness probe.
    Ping,
    /// Stop accepting work and shut the daemon down cleanly.
    Shutdown,
}

impl Request {
    /// Parses a request payload. `Err` carries a client-facing reason.
    pub fn parse(payload: &str) -> Result<Request, String> {
        let json = Json::parse(payload).map_err(|e| format!("malformed JSON: {e}"))?;
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field 'op'")?;
        let req_field = |json: &Json| -> Result<u64, String> {
            let text = json
                .get("req")
                .and_then(Json::as_str)
                .ok_or("missing string field 'req'")?;
            parse_key(text).ok_or_else(|| format!("'req' is not a 16-hex request key: {text:?}"))
        };
        match op {
            "submit" => {
                let kind = json
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("submit needs a string field 'kind'")?
                    .to_string();
                let params = json.get("params").cloned().unwrap_or(Json::Null);
                if !matches!(params, Json::Obj(_) | Json::Null) {
                    return Err("'params' must be an object when present".to_string());
                }
                let trace = json.get("trace").and_then(Json::as_bool).unwrap_or(false);
                Ok(Request::Submit {
                    kind,
                    params,
                    trace,
                })
            }
            "status" => Ok(Request::Status {
                req: req_field(&json)?,
            }),
            "cancel" => Ok(Request::Cancel {
                req: req_field(&json)?,
            }),
            "subscribe" => Ok(Request::Subscribe {
                req: req_field(&json)?,
            }),
            "stats" => Ok(Request::Stats),
            "shards" => Ok(Request::Shards),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown op {other:?} (known: submit, status, cancel, subscribe, stats, shards, \
                 ping, shutdown)"
            )),
        }
    }
}

/// The content-addressed identity of a submit: FNV-64 over the kind and
/// the canonicalized parameter object.
pub fn request_key(kind: &str, params: &Json) -> u64 {
    fnv64(format!("{kind}\n{}", canonical(params)).as_bytes())
}

/// Renders a request key the way the protocol prints it (16 hex digits).
pub fn format_key(key: u64) -> String {
    format!("{key:016x}")
}

/// Parses a printed request key back.
pub fn parse_key(text: &str) -> Option<u64> {
    (text.len() == 16).then(|| u64::from_str_radix(text, 16).ok())?
}

/// Canonical dump: objects with keys sorted recursively, so field order
/// on the wire never changes a request's identity.
pub fn canonical(json: &Json) -> String {
    fn sort(json: &Json) -> Json {
        match json {
            Json::Obj(pairs) => {
                let mut sorted: Vec<(String, Json)> =
                    pairs.iter().map(|(k, v)| (k.clone(), sort(v))).collect();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Obj(sorted)
            }
            Json::Arr(items) => Json::Arr(items.iter().map(sort).collect()),
            other => other.clone(),
        }
    }
    sort(json).dump()
}

/// A success response from the given `(key, value)` pairs, with
/// `"ok": true` prepended.
pub fn ok_response<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> String {
    let mut all = vec![("ok".to_string(), Json::from(true))];
    all.extend(pairs.into_iter().map(|(k, v)| (k.into(), v)));
    Json::Obj(all).dump()
}

/// An error response: `{"ok":false,"error":<reason>}`.
pub fn err_response(reason: &str) -> String {
    Json::object([("ok", Json::from(false)), ("error", Json::from(reason))]).dump()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_parses_with_defaults() {
        let r = Request::parse(r#"{"op":"submit","kind":"fig9"}"#).unwrap();
        assert_eq!(
            r,
            Request::Submit {
                kind: "fig9".into(),
                params: Json::Null,
                trace: false
            }
        );
        let r = Request::parse(
            r#"{"op":"submit","kind":"scenario","params":{"nodes":20},"trace":true}"#,
        )
        .unwrap();
        match r {
            Request::Submit { kind, trace, .. } => {
                assert_eq!(kind, "scenario");
                assert!(trace);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::parse("not json")
            .unwrap_err()
            .contains("malformed"));
        assert!(Request::parse(r#"{"kind":"fig9"}"#)
            .unwrap_err()
            .contains("'op'"));
        assert!(Request::parse(r#"{"op":"nope"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(Request::parse(r#"{"op":"submit"}"#)
            .unwrap_err()
            .contains("'kind'"));
        assert!(Request::parse(r#"{"op":"status"}"#)
            .unwrap_err()
            .contains("'req'"));
        assert!(Request::parse(r#"{"op":"status","req":"xyz"}"#)
            .unwrap_err()
            .contains("16-hex"));
        assert!(
            Request::parse(r#"{"op":"submit","kind":"fig9","params":[1]}"#)
                .unwrap_err()
                .contains("object")
        );
    }

    #[test]
    fn stats_parses_and_is_listed_in_the_unknown_op_hint() {
        assert_eq!(Request::parse(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        let hint = Request::parse(r#"{"op":"nope"}"#).unwrap_err();
        assert!(hint.contains("stats"), "{hint}");
    }

    #[test]
    fn shards_parses_and_is_listed_in_the_unknown_op_hint() {
        assert_eq!(
            Request::parse(r#"{"op":"shards"}"#).unwrap(),
            Request::Shards
        );
        let hint = Request::parse(r#"{"op":"nope"}"#).unwrap_err();
        assert!(hint.contains("shards"), "{hint}");
    }

    #[test]
    fn request_key_ignores_field_order_but_not_values() {
        let a = Json::parse(r#"{"nodes":20,"seeds":2}"#).unwrap();
        let b = Json::parse(r#"{"seeds":2,"nodes":20}"#).unwrap();
        let c = Json::parse(r#"{"nodes":21,"seeds":2}"#).unwrap();
        assert_eq!(request_key("fig9", &a), request_key("fig9", &b));
        assert_ne!(request_key("fig9", &a), request_key("fig9", &c));
        assert_ne!(request_key("fig9", &a), request_key("fig8", &a));
    }

    #[test]
    fn keys_round_trip_through_their_printed_form() {
        let key = request_key("sweep", &Json::Null);
        assert_eq!(parse_key(&format_key(key)), Some(key));
        assert_eq!(parse_key("zzz"), None);
        assert_eq!(parse_key("0123456789abcdef0"), None, "too long");
    }

    #[test]
    fn responses_have_the_ok_discipline() {
        let ok = ok_response([("req", Json::from("00ff"))]);
        let parsed = Json::parse(&ok).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        let err = err_response("nope");
        let parsed = Json::parse(&err).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(parsed.get("error").and_then(Json::as_str), Some("nope"));
    }
}
