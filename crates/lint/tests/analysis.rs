//! Workspace-level pins for the structural analyzer: the allow budget
//! per rule family, seed-registry coverage, and the R001 acceptance
//! check on the real `Scenario` definition.

use liteworp_lint::lexer::Lexed;
use liteworp_lint::{allow, ast, check_file, scan, seed_registry, FileClass, SourceFile};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Every escape hatch in the workspace, counted per rule family. The
/// pins move only when an allow is added or removed *on purpose*: a
/// drive-by allow shows up here as a diff the reviewer has to touch.
#[test]
fn allow_counts_per_family_are_pinned() {
    let files = scan::collect_files(&workspace_root()).expect("walk workspace");
    assert!(files.len() > 100, "walk regressed: {} files", files.len());
    let mut counts = [0usize; 26];
    for f in &files {
        let lexed = Lexed::lex(&f.src);
        for a in allow::parse_allows(&f.src, &lexed) {
            let family = a.rule.as_bytes().first().copied().unwrap_or(b'?');
            if family.is_ascii_uppercase() {
                counts[(family - b'A') as usize] += 1;
            }
        }
    }
    let per_family: Vec<(char, usize)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(i, &n)| ((b'A' + i as u8) as char, n))
        .collect();
    assert_eq!(
        per_family,
        vec![('C', 2), ('D', 10), ('P', 25)],
        "allow budget drifted — every new `lint: allow` needs a reviewed reason \
         and a pin update here"
    );
}

/// Every name in the seed-hash registry must correspond to a real type
/// somewhere in the workspace library sources, so a rename cannot
/// silently drop a type out of R001's coverage.
#[test]
fn seed_registry_names_resolve_to_workspace_types() {
    let files = scan::collect_files(&workspace_root()).expect("walk workspace");
    let mut defined: Vec<String> = Vec::new();
    for f in files.iter().filter(|f| f.class == FileClass::Lib) {
        let lexed = Lexed::lex(&f.src);
        let parsed = ast::parse(&f.src, &lexed);
        defined.extend(parsed.types.iter().map(|t| t.name.clone()));
    }
    for name in seed_registry::SEED_HASH_TYPES {
        assert!(
            defined.iter().any(|d| d == name),
            "seed registry names `{name}` but no workspace library type has that \
             name — update crates/lint/src/seed_registry.rs"
        );
    }
}

/// The ISSUE's acceptance check: re-deriving `Debug` on the real
/// `Scenario` (whose Debug string is hashed into every experiment seed)
/// must fail the gate with R001.
#[test]
fn rederiving_debug_on_scenario_fails_r001() {
    let path = workspace_root().join("crates/bench/src/scenario.rs");
    let src = std::fs::read_to_string(&path).expect("read scenario.rs");
    let needle = "#[derive(Clone)]\npub struct Scenario {";
    assert!(
        src.contains(needle),
        "scenario.rs changed shape — update this acceptance test"
    );
    let patched = src.replace(needle, "#[derive(Debug, Clone)]\npub struct Scenario {");
    let file = SourceFile {
        path: "crates/bench/src/scenario.rs".to_string(),
        src: patched,
        class: FileClass::Lib,
        is_crate_root: false,
    };
    let diags = check_file(&file);
    assert!(
        diags.iter().any(|d| d.rule == "R001"),
        "expected R001 on the re-derived Scenario, got: {diags:?}"
    );
    // And the untouched file stays clean, so the diagnostic above is
    // attributable to the injected derive alone.
    let clean = SourceFile {
        path: "crates/bench/src/scenario.rs".to_string(),
        src,
        class: FileClass::Lib,
        is_crate_root: false,
    };
    let diags = check_file(&clean);
    assert!(
        diags.is_empty(),
        "scenario.rs not clean standalone: {diags:?}"
    );
}
