//! Corpus: R002 clean — collect the directory entries, sort, then
//! serialize in the stable order.

use std::io::Write;
use std::path::{Path, PathBuf};

pub fn digest_dir_sorted(dir: &Path, out: &mut Vec<u8>) {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .collect();
    names.sort();
    for name in names {
        let _ = writeln!(out, "{}", name.display());
    }
}
