//! Corpus: an allow with no written reason is rejected.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // lint: allow(P001)
}
