//! Corpus: a used allow is not stale.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // lint: allow(P001) corpus fixture: non-empty by contract
}
