//! Corpus: allows must name real rules.

// lint: allow(Q999) no such rule
pub fn noop() {}
