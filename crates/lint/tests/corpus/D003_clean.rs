//! Corpus: randomness flows through a caller-seeded state word.

pub fn roll(state: &mut u64) -> u32 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*state >> 32) as u32
}
