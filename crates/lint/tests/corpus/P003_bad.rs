//! Corpus: panic in library code.

pub fn check(x: u32) {
    if x > 10 {
        panic!("too big: {x}");
    }
}
