//! Corpus: C001 — nested lock acquisition, directly and via a callee.

use std::sync::{Mutex, PoisonError};

pub struct Shared {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

fn bump(s: &Shared) {
    let mut g = s.b.lock().unwrap_or_else(PoisonError::into_inner);
    *g += 1;
}

pub fn nested_direct(s: &Shared) {
    let ga = s.a.lock().unwrap_or_else(PoisonError::into_inner);
    let gb = s.b.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = *gb + *ga;
}

pub fn nested_via_callee(s: &Shared) {
    let ga = s.a.lock().unwrap_or_else(PoisonError::into_inner);
    bump(s);
    drop(ga);
}
