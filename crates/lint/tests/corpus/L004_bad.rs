//! Corpus: a reasoned D001 allow in a file that is *not* part of the
//! registered wall-clock boundary — the reason is written, the allow
//! suppresses a real read, and it is still rejected (L004).

pub fn ad_hoc_profile() -> f64 {
    // lint: allow(D001) ad-hoc profiling that never got registered
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
