//! Corpus: C002 — blocking while a guard is live: fsync under a file
//! guard, and a `Condvar::wait` that parks with a *different* lock held.

use std::fs::File;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

pub struct Wal {
    pub file: Mutex<File>,
    pub state: Mutex<u32>,
    pub cv: Condvar,
}

pub fn fsync_under_guard(w: &Wal) -> std::io::Result<()> {
    let f = w.file.lock().unwrap_or_else(PoisonError::into_inner);
    f.sync_data()?;
    Ok(())
}

pub fn park_with_foreign_guard(w: &Wal, g: MutexGuard<'_, u32>) {
    let s = w.state.lock().unwrap_or_else(PoisonError::into_inner);
    let _parked = w.cv.wait(g);
    drop(s);
}
