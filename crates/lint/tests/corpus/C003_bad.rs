//! Corpus: C003 — a guard bound to `_` drops before the semicolon.

use std::sync::{Mutex, PoisonError};

pub fn no_op_critical_section(m: &Mutex<u32>) {
    let _ = m.lock().unwrap_or_else(PoisonError::into_inner);
}
