//! Corpus: the supervisor's profiling pattern — a wall-clock read with a
//! written reason is clean. The measurement feeds the run manifest, never
//! the simulation, so determinism is unaffected.

pub fn batch_wall_ms() -> f64 {
    // lint: allow(D001) profiling: batch wall-clock for the manifest only
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64() * 1e3
}
