//! Corpus: R001 — derived `Debug` on a seed-hash registry type.

#[derive(Debug, Clone)]
pub struct Scenario {
    pub nodes: u32,
    pub seed: u64,
}
