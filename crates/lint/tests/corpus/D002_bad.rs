//! Corpus: default-hasher map in library code.

pub type Table = std::collections::HashMap<u32, u32>;
