//! Corpus: a justified allow suppresses cleanly.

pub fn first(xs: &[u32]) -> u32 {
    // lint: allow(P001) corpus fixture: slice is non-empty by contract
    *xs.first().unwrap()
}
