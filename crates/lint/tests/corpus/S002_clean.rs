//! Corpus: counter tables exhaustive against the variant list.

pub enum EventKind {
    Send,
    Recv,
    Drop,
}

pub const KIND_COUNT: usize = 3;

pub const KIND_NAMES: [&str; KIND_COUNT] = ["send", "recv", "drop"];
