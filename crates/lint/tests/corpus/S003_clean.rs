//! S003 clean: every literal at an `obs::` call site is declared in the
//! registry; runtime-built names and local helpers named `span` are out
//! of scope.

pub fn f(span: fn(&str) -> u32) {
    let _guard = obs::span("event_loop");
    liteworp_obs::counter("served.jobs_total").inc();
    obs::gauge("served.queue_depth").set(0);
    // A free function that happens to be called `span` is not an obs site.
    let _ = span("anything_goes");
}
