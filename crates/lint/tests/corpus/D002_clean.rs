//! Corpus: ordered map keeps state walks deterministic.

pub type Table = std::collections::BTreeMap<u32, u32>;
