//! Corpus: the same shape is clean when the file *is* a registered
//! lock-nesting seam — the test presents this fixture to the checker
//! under the registered path `crates/runner/src/pool.rs`.

use std::sync::{Mutex, PoisonError};

pub struct Pair {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn drain(p: &Pair) {
    let ga = p.a.lock().unwrap_or_else(PoisonError::into_inner);
    // lint: allow(C001) two-level deque handoff: registered seam
    let mut gb = p.b.lock().unwrap_or_else(PoisonError::into_inner);
    *gb += *ga;
}
