//! Corpus: library code reports errors as values.

pub fn check(x: u32) -> Result<(), u32> {
    if x > 10 {
        return Err(x);
    }
    Ok(())
}
