//! Corpus: hardened crate root.

#![forbid(unsafe_code)]

pub fn noop() {}
