//! Corpus: counter tables drifted from the variant list.

pub enum EventKind {
    Send,
    Recv,
    Drop,
}

pub const KIND_COUNT: usize = 2;

pub const KIND_NAMES: [&str; KIND_COUNT] = ["send", "recv"];
