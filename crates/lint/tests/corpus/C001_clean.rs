//! Corpus: C001 clean — one lock at a time: drop first, or scope out.

use std::sync::{Mutex, PoisonError};

pub struct Shared {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

fn bump(s: &Shared) {
    let mut g = s.b.lock().unwrap_or_else(PoisonError::into_inner);
    *g += 1;
}

pub fn sequential(s: &Shared) {
    let ga = s.a.lock().unwrap_or_else(PoisonError::into_inner);
    let snapshot = *ga;
    drop(ga);
    let mut gb = s.b.lock().unwrap_or_else(PoisonError::into_inner);
    *gb += snapshot;
}

pub fn scoped(s: &Shared) {
    {
        let mut ga = s.a.lock().unwrap_or_else(PoisonError::into_inner);
        *ga += 1;
    }
    bump(s);
}
