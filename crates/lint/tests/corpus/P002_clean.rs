//! Corpus: typed error instead of expect.

pub fn first(xs: &[u32]) -> Result<u32, &'static str> {
    xs.first().copied().ok_or("empty slice")
}
