//! Corpus: C002 clean — the IO happens after release, and the wait
//! re-binds the same lock it parks on.

use std::fs::File;
use std::io::Write;
use std::sync::{Condvar, Mutex, PoisonError};

pub struct Wal {
    pub file: Mutex<File>,
    pub state: Mutex<u32>,
    pub cv: Condvar,
}

pub fn write_then_release(w: &Wal, buf: &[u8]) -> std::io::Result<()> {
    let mut f = w.file.lock().unwrap_or_else(PoisonError::into_inner);
    f.write_all(buf)?;
    drop(f);
    Ok(())
}

pub fn wait_same_lock(w: &Wal) {
    let mut s = w.state.lock().unwrap_or_else(PoisonError::into_inner);
    while *s == 0 {
        s = w.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
    }
}
