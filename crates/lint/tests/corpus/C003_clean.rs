//! Corpus: C003 clean — a named guard holds the critical section, and
//! `let _ =` on a non-guard value stays out of scope.

use std::sync::{Mutex, PoisonError};

pub fn guarded_section(m: &Mutex<u32>, tick: fn()) {
    let _guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    tick();
}

pub fn underscore_non_guard(v: u64) {
    let _ = v.checked_add(1);
}
