//! Corpus: a reasoned C001 allow in a file that is *not* part of the
//! registered lock-nesting boundary — the reason is written, the allow
//! suppresses a real nested acquisition, and it is still rejected (L005).

use std::sync::{Mutex, PoisonError};

pub struct Pair {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn drain(p: &Pair) {
    let ga = p.a.lock().unwrap_or_else(PoisonError::into_inner);
    // lint: allow(C001) ad-hoc nesting that never got registered
    let mut gb = p.b.lock().unwrap_or_else(PoisonError::into_inner);
    *gb += *ga;
}
