//! Corpus: ambient randomness.

pub fn roll() -> u32 {
    let mut rng = thread_rng();
    rng.gen()
}
