//! Corpus: crate root without the unsafe-code hardening attribute.

pub fn noop() {}
