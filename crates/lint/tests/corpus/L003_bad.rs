//! Corpus: stale allows are themselves errors.

// lint: allow(P001) nothing here unwraps anymore
pub fn noop() {}
