//! Corpus: simulation time flows through explicit tick values.

pub fn stamp(now_ticks: u64) -> u64 {
    now_ticks + 1
}
