//! Corpus: library code returns options instead of panicking.

pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}
