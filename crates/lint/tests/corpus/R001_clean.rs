//! Corpus: R001 clean — seed-hash registry types hand-write `Debug`, so
//! the seed string is an explicit contract rather than a derive side
//! effect.

use std::fmt;

#[derive(Clone)]
pub struct Scenario {
    pub nodes: u32,
    pub seed: u64,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("nodes", &self.nodes)
            .field("seed", &self.seed)
            .finish()
    }
}
