//! Corpus: R002 — an unordered `read_dir` stream feeding a
//! serialization sink inside the loop body.

use std::io::Write;
use std::path::Path;

pub fn digest_dir(dir: &Path, out: &mut Vec<u8>) {
    for entry in std::fs::read_dir(dir).into_iter().flatten().flatten() {
        let _ = writeln!(out, "{}", entry.path().display());
    }
}
