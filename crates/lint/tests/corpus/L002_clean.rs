//! Corpus: allows naming real rules parse cleanly.

pub fn check(x: u32) -> u32 {
    if x == 0 {
        // lint: allow(P003) corpus fixture: zero is rejected by the caller
        panic!("zero");
    }
    x
}
