//! Corpus: the same shape is clean when the file *is* a registered
//! wall-clock seam — the test presents this fixture to the checker under
//! a registered path such as `crates/served/src/net.rs`.

pub fn boundary_profile() -> f64 {
    // lint: allow(D001) socket-lifetime boundary: registered seam
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
