//! S003: a literal name at an `obs::` call site that is missing from the
//! obs name registry ships an orphan time series.

pub fn f() {
    let _guard = obs::span("unregistered_phase");
    liteworp_obs::counter("served.unregistered_total").inc();
}
