//! Fixture corpus for the lint engine.
//!
//! One known-bad and one known-clean file per rule, under
//! `tests/corpus/` (a directory the workspace scanner deliberately
//! skips, since the bad fixtures contain real violations). Each bad
//! fixture asserts the exact rule id and 1-based span it produces, so a
//! lexer or matcher regression shows up as a span drift, not just a
//! missing diagnostic.

use liteworp_lint::lexer::Lexed;
use liteworp_lint::{check_file, rules, Diagnostic, FileClass, SourceFile};
use std::path::Path;

/// Loads a fixture from `tests/corpus/` as an in-memory library file.
fn fixture(name: &str, is_crate_root: bool) -> SourceFile {
    let path = format!("{}/tests/corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    SourceFile {
        path: format!("corpus/{name}"),
        src,
        class: FileClass::Lib,
        is_crate_root,
    }
}

/// Loads a fixture but presents it to the checker under `path` — for
/// rules like L004 whose verdict depends on where the file sits in the
/// workspace.
fn fixture_at(name: &str, path: &str) -> SourceFile {
    let mut f = fixture(name, false);
    f.path = path.to_string();
    f
}

fn spans(diags: &[Diagnostic]) -> Vec<(&str, u32, u32)> {
    diags.iter().map(|d| (d.rule, d.line, d.col)).collect()
}

fn assert_bad(name: &str, expected: &[(&str, u32, u32)]) {
    let diags = check_file(&fixture(name, false));
    assert_eq!(spans(&diags), expected, "{name}: {diags:?}");
}

fn assert_clean(name: &str) {
    let diags = check_file(&fixture(name, false));
    assert!(diags.is_empty(), "{name}: {diags:?}");
}

#[test]
fn d001_wall_clock() {
    assert_bad("D001_bad.rs", &[("D001", 4, 16)]);
    assert_clean("D001_clean.rs");
}

/// The supervisor's profiling pattern: a reasoned allow on a wall-clock
/// read suppresses D001 without tripping allow hygiene (L001–L004). The
/// fixture is presented under a registered wall-clock-boundary path,
/// since a D001 allow anywhere else is L004 by design.
#[test]
fn d001_profiling_allow_is_clean() {
    let diags = check_file(&fixture_at(
        "D001_allowed_clean.rs",
        "crates/runner/src/supervisor.rs",
    ));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d002_default_hasher() {
    assert_bad("D002_bad.rs", &[("D002", 3, 36)]);
    assert_clean("D002_clean.rs");
}

#[test]
fn d003_ambient_randomness() {
    assert_bad("D003_bad.rs", &[("D003", 4, 19)]);
    assert_clean("D003_clean.rs");
}

#[test]
fn p001_unwrap() {
    assert_bad("P001_bad.rs", &[("P001", 4, 17)]);
    assert_clean("P001_clean.rs");
}

#[test]
fn p002_expect() {
    assert_bad("P002_bad.rs", &[("P002", 4, 17)]);
    assert_clean("P002_clean.rs");
}

#[test]
fn p003_panic_macros() {
    assert_bad("P003_bad.rs", &[("P003", 5, 9)]);
    assert_clean("P003_clean.rs");
}

#[test]
fn s001_forbid_unsafe() {
    let diags = check_file(&fixture("S001_bad.rs", true));
    assert_eq!(spans(&diags), vec![("S001", 1, 1)], "{diags:?}");
    let diags = check_file(&fixture("S001_clean.rs", true));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn s002_telemetry_exhaustiveness() {
    let bad = fixture("S002_bad.rs", false);
    let lexed = Lexed::lex(&bad.src);
    let diags = rules::telemetry_rules(&bad, &lexed);
    assert_eq!(spans(&diags), vec![("S002", 1, 1)], "{diags:?}");

    let clean = fixture("S002_clean.rs", false);
    let lexed = Lexed::lex(&clean.src);
    let diags = rules::telemetry_rules(&clean, &lexed);
    assert!(diags.is_empty(), "{diags:?}");
}

/// S003 cross-checks `obs::` call-site literals against the obs name
/// registry. The corpus fixtures run against a synthetic registry so the
/// test does not chase the real names.rs contents.
#[test]
fn s003_obs_name_registry() {
    let names = rules::ObsNames {
        spans: vec!["event_loop".to_string()],
        metrics: vec![
            "served.jobs_total".to_string(),
            "served.queue_depth".to_string(),
        ],
    };

    let bad = fixture("S003_bad.rs", false);
    let lexed = Lexed::lex(&bad.src);
    let diags = rules::obs_name_rules(&bad, &lexed, &names);
    assert_eq!(
        spans(&diags),
        vec![("S003", 5, 28), ("S003", 6, 27)],
        "{diags:?}"
    );

    let clean = fixture("S003_clean.rs", false);
    let lexed = Lexed::lex(&clean.src);
    let diags = rules::obs_name_rules(&clean, &lexed, &names);
    assert!(diags.is_empty(), "{diags:?}");
}

/// The ISSUE's explicit requirement: an allow comment without a written
/// reason is rejected (L001) *and* fails to suppress the violation it
/// sits next to.
#[test]
fn l001_allow_without_reason_is_rejected() {
    assert_bad("L001_bad.rs", &[("L001", 4, 26), ("P001", 4, 17)]);
    assert_clean("L001_clean.rs");
}

#[test]
fn l002_unknown_rule() {
    assert_bad("L002_bad.rs", &[("L002", 3, 1)]);
    assert_clean("L002_clean.rs");
}

#[test]
fn l003_stale_allow() {
    assert_bad("L003_bad.rs", &[("L003", 3, 1)]);
    assert_clean("L003_clean.rs");
}

/// L004 binds the D001 escape hatch to the registered wall-clock
/// boundary: a fully reasoned, genuinely suppressing allow is still
/// rejected when the file is not a registered seam — and the identical
/// source is clean when it is.
#[test]
fn l004_d001_allow_outside_wall_clock_boundary() {
    assert_bad("L004_bad.rs", &[("L004", 6, 5)]);
    let diags = check_file(&fixture_at("L004_clean.rs", "crates/served/src/net.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

/// C001 both ways: a second `.lock()` while a named guard is live, and
/// a call to a helper that acquires on the call graph.
#[test]
fn c001_nested_lock_direct_and_via_callee() {
    assert_bad("C001_bad.rs", &[("C001", 17, 18), ("C001", 23, 5)]);
    assert_clean("C001_clean.rs");
}

/// C002 both ways: `sync_data` under a live file guard, and a
/// `Condvar::wait` that parks while a *different* lock is held.
#[test]
fn c002_blocking_under_guard() {
    assert_bad("C002_bad.rs", &[("C002", 15, 7), ("C002", 21, 24)]);
    assert_clean("C002_clean.rs");
}

#[test]
fn c003_guard_bound_to_underscore() {
    assert_bad("C003_bad.rs", &[("C003", 6, 15)]);
    assert_clean("C003_clean.rs");
}

#[test]
fn r001_derived_debug_on_seed_hash_type() {
    assert_bad("R001_bad.rs", &[("R001", 3, 10)]);
    assert_clean("R001_clean.rs");
}

#[test]
fn r002_unordered_iteration_into_sink() {
    assert_bad("R002_bad.rs", &[("R002", 8, 27)]);
    assert_clean("R002_clean.rs");
}

/// L005 binds the C001 escape hatch to the registered lock-nesting
/// boundary, exactly as L004 does for D001: a reasoned, genuinely
/// suppressing allow is rejected outside the boundary and clean inside
/// it.
#[test]
fn l005_c001_allow_outside_lock_nest_boundary() {
    assert_bad("L005_bad.rs", &[("L005", 14, 5)]);
    let diags = check_file(&fixture_at("L005_clean.rs", "crates/runner/src/pool.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

/// The `--fix` round trip: stripping the stale allow from the L003
/// fixture leaves a file the checker accepts unchanged.
#[test]
fn fix_strips_stale_allows_round_trip() {
    let mut f = fixture("L003_bad.rs", false);
    let diags = check_file(&f);
    let stale: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "L003").collect();
    assert_eq!(stale.len(), 1, "{diags:?}");
    let (rewritten, removed) = liteworp_lint::fix::strip_stale_allows(&f.src, &stale);
    assert_eq!(removed, 1);
    f.src = rewritten;
    let diags = check_file(&f);
    assert!(diags.is_empty(), "after --fix: {diags:?}");
}

/// Every rule in the registry has both a bad and a clean fixture, so a
/// newly added rule cannot ship without corpus coverage.
#[test]
fn every_rule_has_fixture_coverage() {
    let dir = format!("{}/tests/corpus", env!("CARGO_MANIFEST_DIR"));
    for rule in rules::RULES {
        for suffix in ["bad", "clean"] {
            let path = format!("{dir}/{}_{suffix}.rs", rule.id);
            assert!(
                Path::new(&path).is_file(),
                "rule {} is missing its {suffix} fixture at {path}",
                rule.id
            );
        }
    }
}

/// The gate the CI lint step enforces, mirrored as a test: the workspace
/// itself must be clean.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let (diags, files) = liteworp_lint::check_workspace(&root).expect("workspace scan");
    assert!(files > 100, "scanned only {files} files — walk regressed?");
    let rendered: Vec<String> = diags.iter().map(Diagnostic::render).collect();
    assert!(diags.is_empty(), "workspace not lint-clean:\n{rendered:#?}");
}
