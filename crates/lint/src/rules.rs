//! The rule families, matched over the token stream.
//!
//! * **D-rules** — determinism: the invariants behind bit-identical
//!   reruns (runner cache) and the byte-identical no-fault path (chaos).
//! * **P-rules** — panic hygiene: library crates surface `Result`s, they
//!   do not abort the host.
//! * **S-rules** — structure: crate-root hardening and telemetry counter
//!   exhaustiveness.
//! * **L-rules** — hygiene of the `// lint: allow` escape hatch itself
//!   (implemented in [`crate::allow`]).

use crate::diag::{Diagnostic, FileClass, SourceFile};
use crate::lexer::{Kind, Lexed, Token};

/// Static description of one rule, for `--list-rules` and docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier (`D001`, …) used in diagnostics and allows.
    pub id: &'static str,
    /// One-line summary of what the rule forbids.
    pub summary: &'static str,
    /// The invariant the rule protects.
    pub invariant: &'static str,
}

/// Every rule the engine knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        summary: "wall-clock reads (SystemTime::now / Instant::now) outside profiling allows",
        invariant: "simulation time is SimTime only; reruns are bit-identical",
    },
    RuleInfo {
        id: "D002",
        summary: "default-hasher HashMap/HashSet in workspace source",
        invariant: "no hash-order iteration in protocol or aggregation state",
    },
    RuleInfo {
        id: "D003",
        summary: "ambient randomness (thread_rng, RandomState, getrandom, rand::)",
        invariant: "all randomness flows through the runner's seeded PCG32 streams",
    },
    RuleInfo {
        id: "P001",
        summary: ".unwrap() in non-test library code",
        invariant: "library crates return typed errors instead of aborting",
    },
    RuleInfo {
        id: "P002",
        summary: ".expect(...) in non-test library code",
        invariant: "library crates return typed errors instead of aborting",
    },
    RuleInfo {
        id: "P003",
        summary: "panic!/todo!/unimplemented! in non-test library code",
        invariant: "library crates return typed errors instead of aborting",
    },
    RuleInfo {
        id: "C001",
        summary: "nested lock acquisition while a guard is live (directly or via a callee)",
        invariant: "served/runner lock discipline is one lock at a time",
    },
    RuleInfo {
        id: "C002",
        summary:
            "blocking call (fsync, accept, frame IO, Condvar::wait on another lock) under a guard",
        invariant: "critical sections never park or block on IO",
    },
    RuleInfo {
        id: "C003",
        summary: "lock guard bound to `_` (drops immediately — a no-op critical section)",
        invariant: "every acquired guard protects an actual critical section",
    },
    RuleInfo {
        id: "R001",
        summary: "#[derive(Debug)] on a seed-hash registry type (Scenario, NodeParams)",
        invariant: "Debug strings that feed seed hashing are hand-written and stable",
    },
    RuleInfo {
        id: "R002",
        summary: "iteration over an unordered read_dir/vars stream feeding a digest or JSONL sink",
        invariant: "serialized and hashed output bytes are independent of OS enumeration order",
    },
    RuleInfo {
        id: "S001",
        summary: "crate root missing #![forbid(unsafe_code)]",
        invariant: "the whole workspace is forbid-unsafe",
    },
    RuleInfo {
        id: "S002",
        summary: "telemetry per-kind counters drifting from the EventKind variant list",
        invariant: "KIND_COUNT and KIND_NAMES stay exhaustive against EventKind",
    },
    RuleInfo {
        id: "S003",
        summary: "obs metric/span name literal missing from the crates/obs name registry",
        invariant: "every observable name is declared in names.rs and documented",
    },
    RuleInfo {
        id: "L001",
        summary: "lint: allow comment without a justification",
        invariant: "every exception carries a written reason",
    },
    RuleInfo {
        id: "L002",
        summary: "lint: allow naming an unknown rule id",
        invariant: "allows reference real rules only",
    },
    RuleInfo {
        id: "L003",
        summary: "lint: allow that suppresses nothing",
        invariant: "stale exceptions are removed when the violation is fixed",
    },
    RuleInfo {
        id: "L004",
        summary: "lint: allow(D001) outside the registered wall-clock boundary",
        invariant: "wall-clock reads stay confined to the registered profiling and timeout seams",
    },
    RuleInfo {
        id: "L005",
        summary: "lint: allow(C001) outside the registered lock-nesting boundary",
        invariant: "deliberate nested locking stays confined to the registered two-tier queues",
    },
];

/// Whether `id` names a rule this engine implements.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Runs the token-level D- and P-rules applicable to `file`'s class.
pub fn token_rules(file: &SourceFile, lexed: &Lexed) -> Vec<Diagnostic> {
    let (determinism, panics) = match file.class {
        FileClass::Lib => (true, true),
        FileClass::Bin => (true, false),
        FileClass::Test | FileClass::Bench | FileClass::Example => (false, false),
    };
    if !determinism {
        return Vec::new();
    }
    let src = &file.src;
    let toks = &lexed.tokens;
    let regions = test_regions(src, toks);
    let in_test = |off: usize| regions.iter().any(|&(lo, hi)| (lo..hi).contains(&off));
    let mut out = Vec::new();
    let mut emit = |rule: &'static str, tok: Token, message: String| {
        let (line, col) = lexed.line_col(tok.lo);
        out.push(Diagnostic {
            rule,
            path: file.path.clone(),
            line,
            col,
            message,
        });
    };
    for i in 0..toks.len() {
        let t = toks[i];
        if t.kind != Kind::Ident || in_test(t.lo) {
            continue;
        }
        let word = &src[t.lo..t.hi];
        match word {
            "SystemTime" | "Instant" if path_call(src, toks, i, "now") => {
                emit(
                    "D001",
                    t,
                    format!(
                        "wall-clock read `{word}::now()`; simulation paths must use SimTime — \
                         registered wall-clock-boundary sites need \
                         `// lint: allow(D001) <reason>` (L004 rejects the allow elsewhere)"
                    ),
                );
            }
            "HashMap" | "HashSet" => {
                emit(
                    "D002",
                    t,
                    format!(
                        "`{word}` iterates in randomized hash order; use `BTreeMap`/`BTreeSet` \
                         (or a seeded hasher) so state walks are deterministic"
                    ),
                );
            }
            "thread_rng" | "RandomState" | "getrandom" | "from_entropy" => {
                emit(
                    "D003",
                    t,
                    format!(
                        "ambient randomness `{word}`; all randomness must flow through the \
                         runner's seeded PCG32 streams"
                    ),
                );
            }
            "rand" if followed_by_path_sep(toks, i) => {
                emit(
                    "D003",
                    t,
                    "external `rand::` randomness; all randomness must flow through the \
                     runner's seeded PCG32 streams"
                        .to_string(),
                );
            }
            "unwrap" if panics && method_call(src, toks, i) => {
                emit(
                    "P001",
                    t,
                    "`.unwrap()` in library code; return a typed error, or justify with \
                     `// lint: allow(P001) <reason>`"
                        .to_string(),
                );
            }
            "expect" if panics && method_call(src, toks, i) => {
                emit(
                    "P002",
                    t,
                    "`.expect(...)` in library code; return a typed error, or justify with \
                     `// lint: allow(P002) <reason>`"
                        .to_string(),
                );
            }
            "panic" | "todo" | "unimplemented" if panics && macro_bang(toks, i) => {
                emit(
                    "P003",
                    t,
                    format!(
                        "`{word}!` in library code; return a typed error, or justify with \
                         `// lint: allow(P003) <reason>`"
                    ),
                );
            }
            _ => {}
        }
    }
    out
}

/// S001: crate roots must carry `#![forbid(unsafe_code)]`.
pub fn crate_root_rules(file: &SourceFile, lexed: &Lexed) -> Vec<Diagnostic> {
    let toks = &lexed.tokens;
    let src = &file.src;
    for i in 0..toks.len() {
        if punct_at(toks, i, '#')
            && punct_at(toks, i + 1, '!')
            && punct_at(toks, i + 2, '[')
            && ident_at(src, toks, i + 3, "forbid")
            && punct_at(toks, i + 4, '(')
            && ident_at(src, toks, i + 5, "unsafe_code")
        {
            return Vec::new();
        }
    }
    vec![Diagnostic {
        rule: "S001",
        path: file.path.clone(),
        line: 1,
        col: 1,
        message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
    }]
}

/// S002: the telemetry `EventKind` enum, `KIND_COUNT`, and `KIND_NAMES`
/// must agree, so per-kind counter arrays stay exhaustive.
pub fn telemetry_rules(file: &SourceFile, lexed: &Lexed) -> Vec<Diagnostic> {
    let src = &file.src;
    let toks = &lexed.tokens;
    let mut problems = Vec::new();
    let variants = count_enum_variants(src, toks, "EventKind");
    let declared = const_usize_value(src, toks, "KIND_COUNT");
    let names = count_array_strings(src, toks, "KIND_NAMES");
    match (variants, declared, names) {
        (Some(v), Some(c), Some(n)) => {
            if v != c || v != n {
                problems.push(format!(
                    "EventKind has {v} variants but KIND_COUNT = {c} and KIND_NAMES lists {n} \
                     names; per-kind counters would silently drop or misattribute events"
                ));
            }
        }
        _ => problems.push(
            "could not locate EventKind / KIND_COUNT / KIND_NAMES — the telemetry \
             exhaustiveness contract moved; update the S002 checker"
                .to_string(),
        ),
    }
    problems
        .into_iter()
        .map(|message| Diagnostic {
            rule: "S002",
            path: file.path.clone(),
            line: 1,
            col: 1,
            message,
        })
        .collect()
}

/// The obs name registry as parsed from `crates/obs/src/names.rs` (S003).
#[derive(Debug, Clone, Default)]
pub struct ObsNames {
    /// Declared span names (`SPAN_NAMES`).
    pub spans: Vec<String>,
    /// Declared metric names (`METRIC_NAMES`).
    pub metrics: Vec<String>,
}

/// Extracts `SPAN_NAMES` and `METRIC_NAMES` from the obs names file.
/// `None` when either list cannot be located (the caller reports S003).
pub fn parse_obs_names(src: &str, toks: &[Token]) -> Option<ObsNames> {
    Some(ObsNames {
        spans: collect_array_strings(src, toks, "SPAN_NAMES")?,
        metrics: collect_array_strings(src, toks, "METRIC_NAMES")?,
    })
}

/// S003: every literal name at an `obs::span(…)` / `obs::counter(…)` /
/// `obs::gauge(…)` / `obs::histogram(…)` call site must appear in the
/// obs name registry, so no orphan time series can ship. Matches both
/// the `obs::` alias and the full `liteworp_obs::` path; names built at
/// runtime are out of scope (the registry covers their span component).
pub fn obs_name_rules(file: &SourceFile, lexed: &Lexed, names: &ObsNames) -> Vec<Diagnostic> {
    if !matches!(file.class, FileClass::Lib | FileClass::Bin) {
        return Vec::new();
    }
    let src = &file.src;
    let toks = &lexed.tokens;
    let regions = test_regions(src, toks);
    let in_test = |off: usize| regions.iter().any(|&(lo, hi)| (lo..hi).contains(&off));
    let mut out = Vec::new();
    for i in 3..toks.len() {
        let t = toks[i];
        if t.kind != Kind::Ident || in_test(t.lo) {
            continue;
        }
        let func = &src[t.lo..t.hi];
        if !matches!(func, "span" | "counter" | "gauge" | "histogram") {
            continue;
        }
        let qualified = punct_at(toks, i - 1, ':')
            && punct_at(toks, i - 2, ':')
            && (ident_at(src, toks, i - 3, "obs") || ident_at(src, toks, i - 3, "liteworp_obs"));
        if !qualified || !punct_at(toks, i + 1, '(') {
            continue;
        }
        let Some(lit) = toks.get(i + 2).filter(|t| t.kind == Kind::Str) else {
            continue;
        };
        let name = src[lit.lo..lit.hi].trim_matches('"');
        let (list, list_name) = if func == "span" {
            (&names.spans, "SPAN_NAMES")
        } else {
            (&names.metrics, "METRIC_NAMES")
        };
        if !list.iter().any(|n| n == name) {
            let (line, col) = lexed.line_col(lit.lo);
            out.push(Diagnostic {
                rule: "S003",
                path: file.path.clone(),
                line,
                col,
                message: format!(
                    "obs name \"{name}\" at `obs::{func}(…)` is not declared in {list_name} \
                     (crates/obs/src/names.rs); register it there and document it in \
                     EXPERIMENTS.md so no orphan time series ships"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.kind == Kind::Punct(c))
}

fn ident_at(src: &str, toks: &[Token], i: usize, name: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == Kind::Ident && &src[t.lo..t.hi] == name)
}

/// `toks[i]` then `::name` (e.g. `Instant :: now`).
fn path_call(src: &str, toks: &[Token], i: usize, name: &str) -> bool {
    punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':') && ident_at(src, toks, i + 3, name)
}

/// `toks[i]` is followed by `::`.
fn followed_by_path_sep(toks: &[Token], i: usize) -> bool {
    punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':')
}

/// `.name(` — a method call, not a free function or a field.
fn method_call(_src: &str, toks: &[Token], i: usize) -> bool {
    i > 0 && punct_at(toks, i - 1, '.') && punct_at(toks, i + 1, '(')
}

/// `name!` — a macro invocation.
fn macro_bang(toks: &[Token], i: usize) -> bool {
    punct_at(toks, i + 1, '!')
}

/// Byte ranges covered by `#[cfg(test)]` / `#[test]` items (the attribute
/// through the close of the following brace block). D-, P-, C- and
/// R-rules skip these: test code may unwrap, use wall-clock helpers,
/// and hold overlapping guards.
pub(crate) fn test_regions(src: &str, toks: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(punct_at(toks, i, '#') && punct_at(toks, i + 1, '[')) {
            i += 1;
            continue;
        }
        let (is_test_attr, after_attr) = attr_is_test(src, toks, i);
        if !is_test_attr {
            i = after_attr;
            continue;
        }
        // Skip any further attributes between the marker and the item.
        let mut j = after_attr;
        while punct_at(toks, j, '#') && punct_at(toks, j + 1, '[') {
            j = skip_bracket_group(toks, j + 1);
        }
        // The item body is the first `{ … }` before a `;`.
        let mut k = j;
        let mut body_end = None;
        while k < toks.len() {
            match toks[k].kind {
                Kind::Punct(';') => break,
                Kind::Punct('{') => {
                    body_end = Some(skip_brace_group(toks, k));
                    break;
                }
                _ => k += 1,
            }
        }
        match body_end {
            Some(end) => {
                let hi = toks
                    .get(end.saturating_sub(1))
                    .map(|t| t.hi)
                    .unwrap_or(src.len());
                regions.push((toks[i].lo, hi));
                i = end;
            }
            None => i = j,
        }
    }
    regions
}

/// Is the attribute starting at `#`-index `i` a test marker
/// (`#[test]`, or `#[cfg(...)]` mentioning `test`)? Returns the token
/// index just past the attribute either way.
fn attr_is_test(src: &str, toks: &[Token], i: usize) -> (bool, usize) {
    let end = skip_bracket_group(toks, i + 1);
    let body = &toks[i + 2..end.saturating_sub(1).max(i + 2)];
    let is_test = match body.first() {
        Some(t) if t.kind == Kind::Ident && &src[t.lo..t.hi] == "test" => body.len() == 1,
        Some(t) if t.kind == Kind::Ident && &src[t.lo..t.hi] == "cfg" => {
            let has = |word: &str| {
                body.iter()
                    .any(|t| t.kind == Kind::Ident && &src[t.lo..t.hi] == word)
            };
            // `cfg(not(test))` compiles *outside* tests: keep checking it.
            has("test") && !has("not")
        }
        _ => false,
    };
    (is_test, end)
}

/// `toks[open]` is `[`; returns the index just past the matching `]`.
fn skip_bracket_group(toks: &[Token], open: usize) -> usize {
    skip_group(toks, open, '[', ']')
}

/// `toks[open]` is `{`; returns the index just past the matching `}`.
fn skip_brace_group(toks: &[Token], open: usize) -> usize {
    skip_group(toks, open, '{', '}')
}

fn skip_group(toks: &[Token], open: usize, lo: char, hi: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            Kind::Punct(c) if c == lo => depth += 1,
            Kind::Punct(c) if c == hi => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

// ---------------------------------------------------------------------
// S002 micro-parsers
// ---------------------------------------------------------------------

/// Counts the variants of `enum <name> { … }` (attribute-aware).
fn count_enum_variants(src: &str, toks: &[Token], name: &str) -> Option<usize> {
    let mut i = 0usize;
    let open = loop {
        if i >= toks.len() {
            return None;
        }
        if ident_at(src, toks, i, "enum") && ident_at(src, toks, i + 1, name) {
            // generics are not used here; the body brace follows the name
            let mut j = i + 2;
            while j < toks.len() && !punct_at(toks, j, '{') {
                j += 1;
            }
            break j;
        }
        i += 1;
    };
    let end = skip_brace_group(toks, open);
    let mut count = 0usize;
    let mut j = open + 1;
    let mut expecting_variant = true;
    while j + 1 < end {
        match toks[j].kind {
            Kind::Punct('#') if punct_at(toks, j + 1, '[') => {
                j = skip_bracket_group(toks, j + 1);
            }
            Kind::Ident if expecting_variant => {
                count += 1;
                expecting_variant = false;
                j += 1;
            }
            Kind::Punct('{') => j = skip_brace_group(toks, j),
            Kind::Punct('(') => j = skip_group(toks, j, '(', ')'),
            Kind::Punct(',') => {
                expecting_variant = true;
                j += 1;
            }
            _ => j += 1,
        }
    }
    Some(count)
}

/// The literal value of `const <name>: usize = <n>;`.
fn const_usize_value(src: &str, toks: &[Token], name: &str) -> Option<usize> {
    for i in 0..toks.len() {
        if ident_at(src, toks, i, "const") && ident_at(src, toks, i + 1, name) {
            for j in i + 2..(i + 12).min(toks.len()) {
                if toks[j].kind == Kind::Num {
                    let text = src[toks[j].lo..toks[j].hi].replace('_', "");
                    return text.parse().ok();
                }
            }
        }
    }
    None
}

/// Counts the string literals in `<name>: [&str; _] = [ "…", … ];`.
fn count_array_strings(src: &str, toks: &[Token], name: &str) -> Option<usize> {
    collect_array_strings(src, toks, name).map(|v| v.len())
}

/// The string literals in `<name>: … = [ "…", … ];` (also behind a `&`
/// as in `&[&str] = &[ … ]`), unquoted, in declaration order.
fn collect_array_strings(src: &str, toks: &[Token], name: &str) -> Option<Vec<String>> {
    for i in 0..toks.len() {
        if !ident_at(src, toks, i, name) {
            continue;
        }
        // Find the `=` after the declaration, then the bracket group. The
        // type annotation `[&str; KIND_COUNT]` contains both brackets and
        // a `;`, so bracket groups are skipped whole.
        let mut j = i + 1;
        while j < toks.len() && !punct_at(toks, j, '=') && !punct_at(toks, j, ';') {
            if punct_at(toks, j, '[') {
                j = skip_bracket_group(toks, j);
            } else {
                j += 1;
            }
        }
        if !punct_at(toks, j, '=') {
            continue;
        }
        while j < toks.len() && !punct_at(toks, j, '[') {
            j += 1;
        }
        if j >= toks.len() {
            return None;
        }
        let end = skip_bracket_group(toks, j);
        let values = toks[j + 1..end.saturating_sub(1)]
            .iter()
            .filter(|t| t.kind == Kind::Str)
            .map(|t| src[t.lo..t.hi].trim_matches('"').to_string())
            .collect();
        return Some(values);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Lexed;

    fn lib_file(src: &str) -> SourceFile {
        SourceFile {
            path: "x.rs".to_string(),
            src: src.to_string(),
            class: FileClass::Lib,
            is_crate_root: false,
        }
    }

    fn rules_fired(src: &str) -> Vec<&'static str> {
        let f = lib_file(src);
        let lx = Lexed::lex(&f.src);
        token_rules(&f, &lx).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = r#"
            fn lib() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        "#;
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn violations_outside_test_regions_fire() {
        let src = r#"
            fn lib() { Some(1).unwrap(); }
            #[cfg(test)]
            mod tests {}
        "#;
        assert_eq!(rules_fired(src), vec!["P001"]);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(rules_fired("fn f() { g().unwrap_or(0); }").is_empty());
    }

    #[test]
    fn named_expect_method_definition_is_not_flagged() {
        // Defining (or calling free) `expect` is fine; only `.expect(` is.
        assert!(rules_fired("impl P { fn expect(&mut self, b: u8) {} }").is_empty());
        assert_eq!(rules_fired("fn f() { x.expect(\"msg\"); }"), vec!["P002"]);
    }

    #[test]
    fn enum_variant_count_handles_payloads_and_attrs() {
        let src = r#"
            pub enum EventKind {
                A,
                B { x: u32, y: u32 },
                #[doc = "hi"]
                C(u8),
            }
            pub const KIND_COUNT: usize = 3;
            pub const KIND_NAMES: [&str; KIND_COUNT] = ["a", "b", "c"];
        "#;
        let lx = Lexed::lex(src);
        assert_eq!(count_enum_variants(src, &lx.tokens, "EventKind"), Some(3));
        assert_eq!(const_usize_value(src, &lx.tokens, "KIND_COUNT"), Some(3));
        assert_eq!(count_array_strings(src, &lx.tokens, "KIND_NAMES"), Some(3));
        let f = lib_file(src);
        assert!(telemetry_rules(&f, &lx).is_empty());
    }

    #[test]
    fn s002_fires_on_drift() {
        let src = r#"
            pub enum EventKind { A, B }
            pub const KIND_COUNT: usize = 1;
            pub const KIND_NAMES: [&str; 1] = ["a"];
        "#;
        let f = lib_file(src);
        let lx = Lexed::lex(src);
        let diags = telemetry_rules(&f, &lx);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "S002");
    }
}
