//! Human and JSON renderings of a diagnostic run.

use crate::diag::Diagnostic;
use crate::rules::RULES;

/// Human-readable report: one line per diagnostic plus a summary.
pub fn human(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    if diags.is_empty() {
        out.push_str(&format!("lint: {files_scanned} files clean\n"));
    } else {
        out.push_str(&format!(
            "lint: {} diagnostic(s) across {files_scanned} file(s)\n",
            diags.len()
        ));
    }
    out
}

/// JSON report: `{"files_scanned": …, "diagnostics": [ … ]}`.
pub fn json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\"files_scanned\":");
    out.push_str(&files_scanned.to_string());
    out.push_str(",\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            escape(d.rule),
            escape(&d.path),
            d.line,
            d.col,
            escape(&d.message)
        ));
    }
    out.push_str("]}");
    out
}

/// The rule table, for `--list-rules`.
pub fn rule_table() -> String {
    let mut out = String::new();
    for r in RULES {
        out.push_str(&format!(
            "{}  {}\n      protects: {}\n",
            r.id, r.summary, r.invariant
        ));
    }
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic {
            rule: "D001",
            path: "a.rs".to_string(),
            line: 1,
            col: 2,
            message: "uses \"now\"".to_string(),
        };
        let j = json(&[d], 1);
        assert!(j.contains(r#"\"now\""#), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
