//! The structural rule families, built on the skeleton parser and the
//! call graph.
//!
//! * **C-rules** — concurrency discipline: C001 nested lock
//!   acquisition (directly or via a callee on the call graph), C002
//!   blocking calls while a guard is live, C003 guards bound to `_`.
//! * **R-rules** — determinism taint: R001 derived `Debug` on
//!   seed-hash registry types, R002 unordered directory iteration
//!   feeding a digest/serialization sink.
//!
//! The guard walker models Rust temporary lifetimes as parsed by
//! [`crate::ast`]: named `let` bindings persist to end of block,
//! chained acquisitions die at the statement, scrutinee temporaries of
//! `match` / `if let` / `while let` live through the body, and
//! `if`/`while` conditions are terminating scopes. `drop(name)`
//! releases the named guard early. All imprecision is conservative:
//! unresolved or ambiguous calls never flag.

use crate::ast::{Block, Event, FileAst, Pat, ScopeKind, Stmt};
use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, FileClass, SourceFile};
use crate::lexer::Lexed;
use crate::rules::test_regions;
use crate::seed_registry;

/// Call names that block the thread: fsync, socket accept, the served
/// frame IO helpers, and sleeps. Holding a guard across any of these
/// serializes every other client on the lock.
const BLOCKING_CALLS: &[&str] = &[
    "sync_data",
    "sync_all",
    "accept",
    "sleep",
    "read_frame",
    "write_frame",
];

/// Call names that serialize or digest state (R002 sinks).
const SINK_CALLS: &[&str] = &[
    "fnv64",
    "to_jsonl",
    "write_all",
    "write_fmt",
    "writeln",
    "write",
    "serialize",
];

/// Runs the C- and R-rules over one parsed library file. Non-library
/// classes are exempt (bins may hold locks across IO at their own risk;
/// tests and benches are out of scope like the other families).
pub fn structural_rules(
    file: &SourceFile,
    lexed: &Lexed,
    ast: &FileAst,
    graph: &CallGraph,
) -> Vec<Diagnostic> {
    if file.class != FileClass::Lib {
        return Vec::new();
    }
    let regions = test_regions(&file.src, &lexed.tokens);
    let mut w = Walker {
        file,
        lexed,
        graph,
        regions,
        out: Vec::new(),
    };
    for t in &ast.types {
        if !seed_registry::is_seed_hash_type(&t.name) {
            continue;
        }
        for d in &t.derives {
            if d.name == "Debug" && !w.in_test(d.lo) {
                w.emit(
                    "R001",
                    d.lo,
                    format!(
                        "`#[derive(Debug)]` on seed-hash type `{}`: its Debug string feeds \
                         experiment seed hashing, so the derive silently re-seeds every run \
                         when fields change; hand-write the impl (registry: \
                         crates/lint/src/seed_registry.rs)",
                        t.name
                    ),
                );
            }
        }
    }
    for f in &ast.fns {
        if w.in_test(f.lo) {
            continue;
        }
        let mut live = Vec::new();
        w.walk_block(&f.body, &mut live);
        w.r002_block(&f.body);
    }
    w.out
}

/// One live guard: its binding name (None for temporaries and
/// destructured bindings) and the byte offset it was acquired at.
struct Guard {
    name: Option<String>,
    lo: usize,
}

struct Walker<'a> {
    file: &'a SourceFile,
    lexed: &'a Lexed,
    graph: &'a CallGraph,
    regions: Vec<(usize, usize)>,
    out: Vec<Diagnostic>,
}

impl Walker<'_> {
    fn in_test(&self, off: usize) -> bool {
        self.regions.iter().any(|&(lo, hi)| (lo..hi).contains(&off))
    }

    fn emit(&mut self, rule: &'static str, lo: usize, message: String) {
        if self.in_test(lo) {
            return;
        }
        let (line, col) = self.lexed.line_col(lo);
        self.out.push(Diagnostic {
            rule,
            path: self.file.path.clone(),
            line,
            col,
            message,
        });
    }

    fn held_since(&self, live: &[Guard]) -> u32 {
        live.last().map(|g| self.lexed.line_of(g.lo)).unwrap_or(0)
    }

    fn walk_block(&mut self, b: &Block, live: &mut Vec<Guard>) {
        let mark = live.len();
        for s in &b.stmts {
            self.walk_stmt(s, live);
        }
        live.truncate(mark);
    }

    fn walk_stmt(&mut self, s: &Stmt, live: &mut Vec<Guard>) {
        match s {
            Stmt::Let {
                pat,
                init,
                else_block,
                ..
            } => {
                // Does the statement's tail event bind a fresh guard to
                // the pattern? Only an unchained, depth-0 acquisition
                // (or guard-returning call) can.
                let tail = match init.last() {
                    Some(Event::Acquire {
                        lo,
                        chained: false,
                        top: true,
                    }) => Some(*lo),
                    Some(Event::Call {
                        callee,
                        lo,
                        chained: false,
                        top: true,
                    }) if self.graph.is_guard_call(callee) => Some(*lo),
                    _ => None,
                };
                let mark = live.len();
                let head_len = init.len() - usize::from(tail.is_some());
                for e in &init[..head_len] {
                    self.process_event(e, live);
                }
                if let Some(lo) = tail {
                    self.check_nested(lo, live, None);
                }
                live.truncate(mark);
                if let Some(eb) = else_block {
                    self.walk_block(eb, live);
                }
                if let Some(lo) = tail {
                    match pat {
                        Pat::Underscore => self.emit(
                            "C003",
                            lo,
                            "guard bound to `_` drops before the semicolon — a silent no-op \
                             critical section; bind it to a name (`_guard`) if the scope is \
                             intended, or remove the locking"
                                .to_string(),
                        ),
                        Pat::Name(n) => live.push(Guard {
                            name: Some(n.clone()),
                            lo,
                        }),
                        Pat::Other => live.push(Guard { name: None, lo }),
                    }
                }
            }
            Stmt::Expr { events } => {
                let mark = live.len();
                for e in events {
                    self.process_event(e, live);
                }
                live.truncate(mark);
            }
            Stmt::Scope {
                head,
                head_lives,
                body,
                ..
            } => {
                let mark = live.len();
                for e in head {
                    self.process_event(e, live);
                }
                if !head_lives {
                    live.truncate(mark);
                }
                self.walk_block(body, live);
                live.truncate(mark);
            }
        }
    }

    fn process_event(&mut self, e: &Event, live: &mut Vec<Guard>) {
        match e {
            Event::Acquire { lo, .. } => {
                self.check_nested(*lo, live, None);
                live.push(Guard {
                    name: None,
                    lo: *lo,
                });
            }
            Event::Call { callee, lo, .. } => {
                if self.graph.is_guard_call(callee) {
                    self.check_nested(*lo, live, None);
                    live.push(Guard {
                        name: None,
                        lo: *lo,
                    });
                    return;
                }
                if live.is_empty() {
                    return;
                }
                let name = callee.name();
                if BLOCKING_CALLS.contains(&name) {
                    let since = self.held_since(live);
                    self.emit(
                        "C002",
                        *lo,
                        format!(
                            "blocking call `{name}` while a lock guard is live (held since \
                             line {since}); fsync/socket waits under a guard stall every \
                             other holder — move the IO outside the critical section, or \
                             justify with `// lint: allow(C002) <reason>`"
                        ),
                    );
                } else if self.graph.callee_acquires(callee) {
                    self.check_nested(*lo, live, Some(name));
                }
            }
            Event::Drop { name: Some(n) } => {
                live.retain(|g| g.name.as_deref() != Some(n.as_str()));
            }
            Event::Drop { name: None } => {}
            Event::Wait { arg, lo } => {
                let other = live.iter().find(|g| g.name.as_deref() != arg.as_deref());
                if let Some(g) = other {
                    let since = self.lexed.line_of(g.lo);
                    self.emit(
                        "C002",
                        *lo,
                        format!(
                            "`Condvar::wait` parks this thread while a different lock guard \
                             is live (held since line {since}); the wait only releases its \
                             own mutex, so the other lock stays held for the whole park"
                        ),
                    );
                }
            }
            Event::Block(b) => self.walk_block(b, live),
        }
    }

    /// C001: an acquisition at `lo` while `live` is non-empty.
    /// `via` names the callee when the acquisition is on the call graph
    /// rather than at this token.
    fn check_nested(&mut self, lo: usize, live: &[Guard], via: Option<&str>) {
        if live.is_empty() {
            return;
        }
        let since = self.held_since(live);
        let how = match via {
            Some(callee) => format!("`{callee}(…)` acquires a lock on the call graph"),
            None => "a second lock guard is acquired here".to_string(),
        };
        self.emit(
            "C001",
            lo,
            format!(
                "{how} while one is already live (held since line {since}); the workspace \
                 discipline is one lock at a time — restructure to drop the first guard \
                 (collect, then apply), or justify with `// lint: allow(C001) <reason>` \
                 (L005 pins C001 allows to the LOCK_NEST_BOUNDARY registry)"
            ),
        );
    }

    /// R002: `for` over an unordered `read_dir`/`vars` stream whose body
    /// feeds a digest or serialization sink.
    fn r002_block(&mut self, b: &Block) {
        for s in &b.stmts {
            match s {
                Stmt::Scope {
                    kind: ScopeKind::For,
                    head,
                    body,
                    ..
                } => {
                    let unordered = head.iter().find_map(|e| match e {
                        Event::Call { callee, lo, .. }
                            if matches!(callee.name(), "read_dir" | "vars") =>
                        {
                            Some((callee.name().to_string(), *lo))
                        }
                        _ => None,
                    });
                    if let Some((src_name, lo)) = unordered {
                        if let Some(sink) = find_sink(body) {
                            self.emit(
                                "R002",
                                lo,
                                format!(
                                    "iteration over the unordered `{src_name}` stream feeds \
                                     the digest/serialization sink `{sink}`; the OS returns \
                                     entries in arbitrary order, so the output bytes are \
                                     nondeterministic — collect into a Vec, sort, then write"
                                ),
                            );
                        }
                    }
                    self.r002_block(body);
                }
                Stmt::Scope { body, .. } => self.r002_block(body),
                Stmt::Let {
                    init, else_block, ..
                } => {
                    self.r002_events(init);
                    if let Some(eb) = else_block {
                        self.r002_block(eb);
                    }
                }
                Stmt::Expr { events } => self.r002_events(events),
            }
        }
    }

    fn r002_events(&mut self, events: &[Event]) {
        for e in events {
            if let Event::Block(b) = e {
                self.r002_block(b);
            }
        }
    }
}

/// First digest/serialization sink called anywhere in `b`.
fn find_sink(b: &Block) -> Option<String> {
    fn in_events(events: &[Event]) -> Option<String> {
        for e in events {
            match e {
                Event::Call { callee, .. } => {
                    let name = callee.name();
                    if SINK_CALLS.contains(&name) || name.contains("digest") {
                        return Some(name.to_string());
                    }
                }
                Event::Block(inner) => {
                    if let Some(s) = find_sink(inner) {
                        return Some(s);
                    }
                }
                _ => {}
            }
        }
        None
    }
    for s in &b.stmts {
        let hit = match s {
            Stmt::Let {
                init, else_block, ..
            } => in_events(init).or_else(|| else_block.as_ref().and_then(find_sink)),
            Stmt::Expr { events } => in_events(events),
            Stmt::Scope { head, body, .. } => in_events(head).or_else(|| find_sink(body)),
        };
        if hit.is_some() {
            return hit;
        }
    }
    None
}
