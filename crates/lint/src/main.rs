//! The `lint` binary: the workspace determinism / protocol-invariant gate.
//!
//! ```text
//! lint [--root <dir>] [--json] [--list-rules] [--fix]
//! ```
//!
//! `--fix` auto-removes stale allow comments (L003) and re-scans; other
//! diagnostics still have to be fixed by hand.
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` usage or IO error.

use liteworp_lint::{check_workspace, fix, report, Diagnostic};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut apply_fix = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fix" => apply_fix = true,
            "--list-rules" => {
                print!("{}", report::rule_table());
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: lint [--root <dir>] [--json] [--list-rules] [--fix]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if apply_fix {
        match check_workspace(&root).and_then(|(diags, _)| fix_stale_allows(&root, &diags)) {
            Ok(fixed) => eprintln!("lint: --fix removed {fixed} stale allow(s)"),
            Err(err) => {
                eprintln!("lint: {err}");
                return ExitCode::from(2);
            }
        }
    }
    match check_workspace(&root) {
        Ok((diags, files_scanned)) => {
            if json {
                println!("{}", report::json(&diags, files_scanned));
            } else {
                print!("{}", report::human(&diags, files_scanned));
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("lint: {err}");
            ExitCode::from(2)
        }
    }
}

/// Rewrites every file with L003 diagnostics, stripping the stale allow
/// comments. Returns the number of allows removed.
fn fix_stale_allows(root: &Path, diags: &[Diagnostic]) -> Result<usize, String> {
    let mut total = 0usize;
    let mut paths: Vec<&str> = diags
        .iter()
        .filter(|d| d.rule == "L003")
        .map(|d| d.path.as_str())
        .collect();
    paths.sort_unstable();
    paths.dedup();
    for path in paths {
        let full = root.join(path);
        let src =
            std::fs::read_to_string(&full).map_err(|e| format!("read {path} for --fix: {e}"))?;
        let stale: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == "L003" && d.path == path)
            .collect();
        let (out, removed) = fix::strip_stale_allows(&src, &stale);
        if removed > 0 {
            std::fs::write(&full, out).map_err(|e| format!("write {path} for --fix: {e}"))?;
            total += removed;
        }
    }
    Ok(total)
}
