//! The `lint` binary: the workspace determinism / protocol-invariant gate.
//!
//! ```text
//! lint [--root <dir>] [--json] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` usage or IO error.

use liteworp_lint::{check_workspace, report};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => {
                print!("{}", report::rule_table());
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: lint [--root <dir>] [--json] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    match check_workspace(&root) {
        Ok((diags, files_scanned)) => {
            if json {
                println!("{}", report::json(&diags, files_scanned));
            } else {
                print!("{}", report::human(&diags, files_scanned));
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("lint: {err}");
            ExitCode::from(2)
        }
    }
}
