//! `liteworp-lint`: a std-only static-analysis pass for the workspace.
//!
//! The reproduction's headline guarantees — bit-identical reruns for the
//! runner cache, a byte-identical no-fault path for the chaos seam, and
//! honest metric reporting — rest on conventions `rustc` and clippy do not
//! check: no wall-clock time in simulation paths, no hash-order iteration
//! in protocol state, all randomness via the seeded PCG32 streams, no
//! panics in library crates. This crate is the automatic, offline gate for
//! those conventions.
//!
//! # Architecture
//!
//! * [`lexer`] — a lightweight Rust lexer (comment-, string-, and
//!   raw-string-aware, no external deps) producing spanned tokens.
//! * [`ast`] — a skeleton parser over the token stream: items, fn
//!   bodies, blocks, call/acquire events, `let` bindings, derives.
//! * [`callgraph`] — intra-workspace fn-name resolution and a bounded
//!   transitive "acquires a lock" closure.
//! * [`rules`] — the token-level rule families: **D-rules**
//!   (determinism), **P-rules** (panic hygiene), **S-rules**
//!   (structure), **L-rules** (lint-comment hygiene).
//! * [`structural`] — the structural families built on the parser and
//!   call graph: **C-rules** (lock discipline), **R-rules**
//!   (determinism taint; seed registry in [`seed_registry`]).
//! * [`allow`] — the `// lint: allow(<rule>) <reason>` escape hatch; a
//!   justification is mandatory and unused allows are themselves errors.
//! * [`scan`] — workspace walking, file classification (library, bin,
//!   test, bench, example), and the thread-chunked parallel scan.
//! * [`report`] — human-readable (`path:line:col: RULE message`) and JSON
//!   renderings of the diagnostic list.
//! * [`fix`] — the `--fix` rewriter for stale allows (L003).
//!
//! The `lint` binary wires these together and exits non-zero when any
//! diagnostic survives the allow pass, making it usable as a CI gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod ast;
pub mod callgraph;
pub mod diag;
pub mod fix;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod seed_registry;
pub mod structural;

pub use diag::{Diagnostic, FileClass, SourceFile};
pub use scan::check_workspace;

/// Runs every applicable rule on one in-memory source file and applies the
/// allow pass. The call graph is built from this file alone, so callee
/// resolution is intra-file; [`check_workspace`] passes a workspace-wide
/// graph instead. Structure rules that need cross-file context (S002,
/// S003) also run in [`check_workspace`].
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let lexed = lexer::Lexed::lex(&file.src);
    let parsed = ast::parse(&file.src, &lexed);
    let graph = callgraph::CallGraph::build(&[&parsed]);
    check_file_with(file, &lexed, &parsed, &graph)
}

/// [`check_file`] with the lex/parse/graph phases supplied by the
/// caller, so the workspace scan can share one cross-file call graph
/// and run files in parallel.
pub fn check_file_with(
    file: &SourceFile,
    lexed: &lexer::Lexed,
    parsed: &ast::FileAst,
    graph: &callgraph::CallGraph,
) -> Vec<Diagnostic> {
    let allows = allow::parse_allows(&file.src, lexed);
    let mut diags = Vec::new();
    diags.extend(allow::syntax_diagnostics(file, &allows));
    diags.extend(rules::token_rules(file, lexed));
    if file.is_crate_root {
        diags.extend(rules::crate_root_rules(file, lexed));
    }
    diags.extend(structural::structural_rules(file, lexed, parsed, graph));
    allow::apply(file, &allows, diags)
}
