//! `liteworp-lint`: a std-only static-analysis pass for the workspace.
//!
//! The reproduction's headline guarantees — bit-identical reruns for the
//! runner cache, a byte-identical no-fault path for the chaos seam, and
//! honest metric reporting — rest on conventions `rustc` and clippy do not
//! check: no wall-clock time in simulation paths, no hash-order iteration
//! in protocol state, all randomness via the seeded PCG32 streams, no
//! panics in library crates. This crate is the automatic, offline gate for
//! those conventions.
//!
//! # Architecture
//!
//! * [`lexer`] — a lightweight Rust lexer (comment-, string-, and
//!   raw-string-aware, no external deps) producing spanned tokens.
//! * [`rules`] — the rule families, matched over the token stream:
//!   **D-rules** (determinism), **P-rules** (panic hygiene), **S-rules**
//!   (structure), **L-rules** (lint-comment hygiene).
//! * [`allow`] — the `// lint: allow(<rule>) <reason>` escape hatch; a
//!   justification is mandatory and unused allows are themselves errors.
//! * [`scan`] — workspace walking and file classification (library, bin,
//!   test, bench, example); rules apply per class.
//! * [`report`] — human-readable (`path:line:col: RULE message`) and JSON
//!   renderings of the diagnostic list.
//!
//! The `lint` binary wires these together and exits non-zero when any
//! diagnostic survives the allow pass, making it usable as a CI gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

pub use diag::{Diagnostic, FileClass, SourceFile};
pub use scan::check_workspace;

/// Runs every applicable rule on one in-memory source file and applies the
/// allow pass. Structure rules that need cross-file context (S002) run in
/// [`check_workspace`] instead.
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let lexed = lexer::Lexed::lex(&file.src);
    let allows = allow::parse_allows(&file.src, &lexed);
    let mut diags = Vec::new();
    diags.extend(allow::syntax_diagnostics(file, &allows));
    diags.extend(rules::token_rules(file, &lexed));
    if file.is_crate_root {
        diags.extend(rules::crate_root_rules(file, &lexed));
    }
    allow::apply(file, &allows, diags)
}
