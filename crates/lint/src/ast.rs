//! Skeleton parser for the structural rule families (C/R).
//!
//! A recursive-descent pass over the [`crate::lexer`] token stream that
//! recovers just enough shape for lock-discipline and determinism-taint
//! analysis: items (functions, impl/trait methods, types with their
//! derive lists), block structure, `let` bindings, and call/acquire
//! events inside bodies. It is deliberately **not** a Rust grammar:
//! unknown constructs degrade to token skips, never to parse failures,
//! and imprecision is always in the "fewer events" direction so the
//! rules built on top stay false-positive-averse.
//!
//! Temporary-lifetime modeling follows the language: `match` / `if let`
//! / `while let` scrutinee temporaries and `for` iterator temporaries
//! live through the body ([`Stmt::Scope::head_lives`]), `if` / `while`
//! conditions are terminating scopes, and `let` initializer temporaries
//! die at the statement's semicolon unless the binding captures them.

use crate::lexer::{Kind, Lexed, Token};

/// Result of skeleton-parsing one file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// Every function with a body: free fns, impl/trait methods, and
    /// fns nested in blocks (hoisted here).
    pub fns: Vec<FnDef>,
    /// Every `struct` / `enum` / `union` item, with its derive list.
    pub types: Vec<TypeDef>,
}

/// One entry of a `#[derive(...)]` list (`Debug, Clone` yields two).
#[derive(Debug, Clone)]
pub struct Derive {
    /// Trait name as written.
    pub name: String,
    /// Byte offset of the name token.
    pub lo: usize,
}

/// A `struct` / `enum` / `union` item.
#[derive(Debug)]
pub struct TypeDef {
    /// Type name.
    pub name: String,
    /// Entries of any `#[derive(...)]` attributes on the item.
    pub derives: Vec<Derive>,
}

/// A function definition with a parsed body.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// `Some(TypeName)` for `impl TypeName` / `trait TypeName` methods,
    /// `None` for free functions.
    pub owner: Option<String>,
    /// Return-type text with no whitespace (empty for `()`); the call
    /// graph matches `Guard` in it to find guard-returning helpers.
    pub ret: String,
    /// Parsed body.
    pub body: Block,
    /// Byte offset of the `fn` keyword.
    pub lo: usize,
}

/// A `{ … }` body: a statement sequence.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// How a `let` binds its value, as far as guard tracking cares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pat {
    /// `let _ = …` — the value drops before the semicolon.
    Underscore,
    /// `let name = …` / `let mut name = …`.
    Name(String),
    /// Tuple / struct / reference patterns — tracked as an anonymous
    /// live binding (held, but not addressable by `drop(name)`).
    Other,
}

/// Statement kinds the guard walker distinguishes.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> (= <init>)? (else { … })?;`
    Let {
        /// Binding shape.
        pat: Pat,
        /// Events in the initializer, in source order.
        init: Vec<Event>,
        /// Diverging `else { … }` block of a let-else.
        else_block: Option<Block>,
        /// Byte offset of the `let` keyword.
        lo: usize,
    },
    /// Any other expression statement (match arms included).
    Expr {
        /// Events in the expression, in source order.
        events: Vec<Event>,
    },
    /// A control-flow construct with a head expression and a body.
    Scope {
        /// Which construct.
        kind: ScopeKind,
        /// Events in the head (condition / scrutinee / iterator).
        head: Vec<Event>,
        /// Whether head temporaries live through the body: true for
        /// `match` / `if let` / `while let` scrutinees and `for`
        /// iterators; false for `if` / `while` conditions, which are
        /// terminating scopes.
        head_lives: bool,
        /// Body block.
        body: Block,
        /// Byte offset of the keyword.
        lo: usize,
    },
}

/// The control-flow construct of a [`Stmt::Scope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// A bare `{ … }` (or `unsafe { … }`, or an `else` block).
    Plain,
    /// `if cond { … }`.
    If,
    /// `if let pat = scrutinee { … }`.
    IfLet,
    /// `while cond { … }`.
    While,
    /// `while let pat = scrutinee { … }`.
    WhileLet,
    /// `loop { … }`.
    Loop,
    /// `for pat in iter { … }`.
    For,
    /// `match scrutinee { … }` (arms parse as body statements).
    Match,
}

/// What can happen inside an expression, as far as the rules care.
#[derive(Debug)]
pub enum Event {
    /// `.lock()` / `.read()` / `.write()` with an empty argument list —
    /// a guard acquisition (empty parens distinguish `RwLock::read`
    /// from `io::Read::read(buf)`).
    Acquire {
        /// Byte offset of the method-name token.
        lo: usize,
        /// Whether a further (non-poison-recovery) method call consumes
        /// the result in the same expression — a temporary that dies at
        /// the enclosing statement, never a named binding.
        chained: bool,
        /// Whether the call sits at paren depth 0 of its statement, so
        /// a `let` tail can actually bind it.
        top: bool,
    },
    /// Any other call.
    Call {
        /// Callee shape for call-graph resolution.
        callee: Callee,
        /// Byte offset of the callee-name token.
        lo: usize,
        /// See [`Event::Acquire::chained`].
        chained: bool,
        /// See [`Event::Acquire::top`].
        top: bool,
    },
    /// `drop(x)` / `mem::drop(x)` — explicit early release.
    Drop {
        /// The dropped identifier, when syntactically a plain name.
        name: Option<String>,
    },
    /// `.wait(guard)` / `.wait_timeout(guard, …)` — a Condvar park.
    Wait {
        /// First identifier in the argument list: the guard the wait
        /// atomically releases and re-acquires.
        arg: Option<String>,
        /// Byte offset of the method-name token.
        lo: usize,
    },
    /// A nested `{ … }` in expression position: match-arm bodies,
    /// block expressions, closure bodies.
    Block(Block),
}

/// Callee shape, as much of the path as resolution needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `name(…)`.
    Free(String),
    /// `seg::name(…)` — only the last two path segments are kept.
    Path(String, String),
    /// `.name(…)`.
    Method(String),
}

impl Callee {
    /// The callee's final name segment.
    pub fn name(&self) -> &str {
        match self {
            Callee::Free(n) | Callee::Method(n) | Callee::Path(_, n) => n,
        }
    }
}

/// Method names that recover a poisoned lock result rather than consume
/// the guard: chaining through these keeps the acquisition bindable.
const POISON_CHAIN: &[&str] = &["unwrap", "expect", "unwrap_or_else", "unwrap_or", "ok"];

/// Parses one lexed file into its structural skeleton. Never fails.
pub fn parse(src: &str, lexed: &Lexed) -> FileAst {
    let mut p = Parser {
        src,
        toks: &lexed.tokens,
        fns: Vec::new(),
        types: Vec::new(),
    };
    p.items(0, lexed.tokens.len(), None);
    FileAst {
        fns: p.fns,
        types: p.types,
    }
}

struct Parser<'a> {
    src: &'a str,
    toks: &'a [Token],
    fns: Vec<FnDef>,
    types: Vec<TypeDef>,
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &'a str {
        let src = self.src;
        match self.toks.get(i) {
            Some(t) => &src[t.lo..t.hi],
            None => "",
        }
    }

    fn punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == Kind::Punct(c))
    }

    fn ident(&self, i: usize) -> Option<&'a str> {
        let src = self.src;
        self.toks
            .get(i)
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| &src[t.lo..t.hi])
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.ident(i) == Some(name)
    }

    fn lo(&self, i: usize) -> usize {
        self.toks.get(i).map(|t| t.lo).unwrap_or(0)
    }

    /// `toks[open]` is an opening delimiter; index just past its match.
    fn skip_group(&self, open: usize, lo: char, hi: char) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.toks.len() {
            match self.toks[i].kind {
                Kind::Punct(c) if c == lo => depth += 1,
                Kind::Punct(c) if c == hi => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.toks.len()
    }

    /// `toks[i]` is `<`; index just past the matching `>`, `->`-aware.
    /// Bails at `{` / `;` so malformed generics cannot swallow a body.
    fn skip_angles(&self, mut i: usize) -> usize {
        let mut depth = 0i32;
        while i < self.toks.len() {
            match self.toks[i].kind {
                Kind::Punct('<') => depth += 1,
                Kind::Punct('>') if !self.punct(i.wrapping_sub(1), '-') => {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
                Kind::Punct('{') | Kind::Punct(';') => return i,
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Item-level scan of `[i, end)`; `owner` names the enclosing
    /// impl/trait, if any.
    fn items(&mut self, mut i: usize, end: usize, owner: Option<&str>) {
        let mut pending: Vec<Derive> = Vec::new();
        while i < end {
            if self.punct(i, '#') {
                let mut j = i + 1;
                if self.punct(j, '!') {
                    j += 1;
                }
                if !self.punct(j, '[') {
                    i += 1;
                    continue;
                }
                let attr_end = self.skip_group(j, '[', ']');
                if self.is_ident(j + 1, "derive") && self.punct(j + 2, '(') {
                    let list_end = self.skip_group(j + 2, '(', ')');
                    for k in j + 3..list_end.saturating_sub(1) {
                        if let Some(name) = self.ident(k) {
                            pending.push(Derive {
                                name: name.to_string(),
                                lo: self.lo(k),
                            });
                        }
                    }
                }
                i = attr_end;
                continue;
            }
            match self.ident(i) {
                Some("struct") | Some("enum") | Some("union") => {
                    if let Some(name) = self.ident(i + 1) {
                        self.types.push(TypeDef {
                            name: name.to_string(),
                            derives: std::mem::take(&mut pending),
                        });
                    }
                    pending.clear();
                    let mut j = i + 2;
                    while j < end {
                        if self.punct(j, '{') {
                            j = self.skip_group(j, '{', '}');
                            break;
                        }
                        if self.punct(j, '(') {
                            j = self.skip_group(j, '(', ')');
                            continue;
                        }
                        if self.punct(j, ';') {
                            j += 1;
                            break;
                        }
                        j += 1;
                    }
                    i = j;
                }
                Some("fn") => {
                    pending.clear();
                    i = self.parse_fn(i, owner);
                }
                Some("impl") => {
                    pending.clear();
                    i = self.parse_impl(i, end);
                }
                Some("trait") => {
                    pending.clear();
                    let name = self.ident(i + 1).map(str::to_string);
                    let mut j = i + 2;
                    while j < end && !self.punct(j, '{') && !self.punct(j, ';') {
                        if self.punct(j, '<') {
                            j = self.skip_angles(j);
                        } else {
                            j += 1;
                        }
                    }
                    if self.punct(j, '{') {
                        let body_end = self.skip_group(j, '{', '}');
                        self.items(j + 1, body_end.saturating_sub(1), name.as_deref());
                        i = body_end;
                    } else {
                        i = j + 1;
                    }
                }
                Some("mod") => {
                    pending.clear();
                    let mut j = i + 2;
                    while j < end && !self.punct(j, '{') && !self.punct(j, ';') {
                        j += 1;
                    }
                    if self.punct(j, '{') {
                        let body_end = self.skip_group(j, '{', '}');
                        self.items(j + 1, body_end.saturating_sub(1), owner);
                        i = body_end;
                    } else {
                        i = j + 1;
                    }
                }
                Some("macro_rules") => {
                    pending.clear();
                    let mut j = i + 1;
                    while j < end && !self.punct(j, '{') {
                        j += 1;
                    }
                    i = self.skip_group(j, '{', '}');
                }
                _ => match self.toks.get(i).map(|t| t.kind) {
                    Some(Kind::Punct('{')) => i = self.skip_group(i, '{', '}'),
                    Some(Kind::Punct('(')) => i = self.skip_group(i, '(', ')'),
                    Some(Kind::Punct('[')) => i = self.skip_group(i, '[', ']'),
                    _ => i += 1,
                },
            }
        }
    }

    /// `toks[i]` is `impl`; parses the header, recurses into the body
    /// with the self-type's last path segment as owner.
    fn parse_impl(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        if self.punct(j, '<') {
            j = self.skip_angles(j);
        }
        let mut names: Vec<String> = Vec::new();
        while j < end {
            if self.punct(j, '{') || self.punct(j, ';') {
                break;
            }
            match self.ident(j) {
                Some("for") => {
                    names.clear();
                    j += 1;
                }
                Some("where") => {
                    while j < end && !self.punct(j, '{') && !self.punct(j, ';') {
                        j += 1;
                    }
                }
                Some(seg) => {
                    names.push(seg.to_string());
                    j += 1;
                }
                None => {
                    if self.punct(j, '<') {
                        j = self.skip_angles(j);
                    } else {
                        j += 1;
                    }
                }
            }
        }
        if self.punct(j, '{') {
            let body_end = self.skip_group(j, '{', '}');
            let owner = names.last().cloned();
            self.items(j + 1, body_end.saturating_sub(1), owner.as_deref());
            body_end
        } else {
            j + 1
        }
    }

    /// `toks[i]` is `fn`; parses signature and body, records the def.
    fn parse_fn(&mut self, i: usize, owner: Option<&str>) -> usize {
        let Some(name) = self.ident(i + 1) else {
            return i + 1;
        };
        let mut j = i + 2;
        if self.punct(j, '<') {
            j = self.skip_angles(j);
        }
        while j < self.toks.len() && !self.punct(j, '(') {
            if self.punct(j, '{') || self.punct(j, ';') {
                return j; // malformed signature; bail before the body
            }
            j += 1;
        }
        j = self.skip_group(j, '(', ')');
        let mut ret = String::new();
        if self.punct(j, '-') && self.punct(j + 1, '>') {
            j += 2;
            while j < self.toks.len()
                && !self.punct(j, '{')
                && !self.punct(j, ';')
                && !self.is_ident(j, "where")
            {
                ret.push_str(self.text(j));
                j += 1;
            }
        }
        if self.is_ident(j, "where") {
            while j < self.toks.len() && !self.punct(j, '{') && !self.punct(j, ';') {
                j += 1;
            }
        }
        if !self.punct(j, '{') {
            return j + 1; // required trait method / extern decl: no body
        }
        let (body, next) = self.block(j);
        self.fns.push(FnDef {
            name: name.to_string(),
            owner: owner.map(str::to_string),
            ret,
            body,
            lo: self.lo(i),
        });
        next
    }

    /// `toks[open]` is `{`; parses statements to the matching `}`.
    fn block(&mut self, open: usize) -> (Block, usize) {
        let mut stmts = Vec::new();
        let mut i = open + 1;
        while i < self.toks.len() {
            if self.punct(i, '}') {
                return (Block { stmts }, i + 1);
            }
            if self.punct(i, ';') || self.punct(i, ',') {
                i += 1;
                continue;
            }
            if self.punct(i, '#') {
                let mut j = i + 1;
                if self.punct(j, '!') {
                    j += 1;
                }
                i = if self.punct(j, '[') {
                    self.skip_group(j, '[', ']')
                } else {
                    i + 1
                };
                continue;
            }
            if self.punct(i, '{') {
                let lo = self.lo(i);
                let (body, next) = self.block(i);
                stmts.push(Stmt::Scope {
                    kind: ScopeKind::Plain,
                    head: Vec::new(),
                    head_lives: false,
                    body,
                    lo,
                });
                i = next;
                continue;
            }
            let start = i;
            match self.ident(i) {
                Some("let") => i = self.parse_let(i, &mut stmts),
                Some("if") | Some("while") => {
                    let is_if = self.is_ident(i, "if");
                    let is_let = self.is_ident(i + 1, "let");
                    let kind = match (is_if, is_let) {
                        (true, true) => ScopeKind::IfLet,
                        (true, false) => ScopeKind::If,
                        (false, true) => ScopeKind::WhileLet,
                        (false, false) => ScopeKind::While,
                    };
                    let lo = self.lo(i);
                    let (head, j) = self.collect_events(i + 1, true);
                    if self.punct(j, '{') {
                        let (body, next) = self.block(j);
                        stmts.push(Stmt::Scope {
                            kind,
                            head,
                            head_lives: is_let,
                            body,
                            lo,
                        });
                        i = next;
                    } else {
                        i = j + 1;
                    }
                }
                Some("for") => {
                    let lo = self.lo(i);
                    let mut j = i + 1;
                    while j < self.toks.len() && !self.is_ident(j, "in") && !self.punct(j, '{') {
                        if self.punct(j, '(') {
                            j = self.skip_group(j, '(', ')');
                        } else {
                            j += 1;
                        }
                    }
                    let (head, k) = self.collect_events(j + 1, true);
                    if self.punct(k, '{') {
                        let (body, next) = self.block(k);
                        stmts.push(Stmt::Scope {
                            kind: ScopeKind::For,
                            head,
                            head_lives: true,
                            body,
                            lo,
                        });
                        i = next;
                    } else {
                        i = k + 1;
                    }
                }
                Some("loop") => {
                    let lo = self.lo(i);
                    if self.punct(i + 1, '{') {
                        let (body, next) = self.block(i + 1);
                        stmts.push(Stmt::Scope {
                            kind: ScopeKind::Loop,
                            head: Vec::new(),
                            head_lives: false,
                            body,
                            lo,
                        });
                        i = next;
                    } else {
                        i += 1;
                    }
                }
                Some("match") => {
                    let lo = self.lo(i);
                    let (head, j) = self.collect_events(i + 1, true);
                    if self.punct(j, '{') {
                        let (body, next) = self.block(j);
                        stmts.push(Stmt::Scope {
                            kind: ScopeKind::Match,
                            head,
                            head_lives: true,
                            body,
                            lo,
                        });
                        i = next;
                    } else {
                        i = j + 1;
                    }
                }
                Some("unsafe") if self.punct(i + 1, '{') => {
                    let lo = self.lo(i);
                    let (body, next) = self.block(i + 1);
                    stmts.push(Stmt::Scope {
                        kind: ScopeKind::Plain,
                        head: Vec::new(),
                        head_lives: false,
                        body,
                        lo,
                    });
                    i = next;
                }
                Some("else") => {
                    if self.punct(i + 1, '{') {
                        let lo = self.lo(i);
                        let (body, next) = self.block(i + 1);
                        stmts.push(Stmt::Scope {
                            kind: ScopeKind::Plain,
                            head: Vec::new(),
                            head_lives: false,
                            body,
                            lo,
                        });
                        i = next;
                    } else {
                        i += 1; // `else if`: next iteration parses the if
                    }
                }
                Some("fn") => i = self.parse_fn(i, None),
                _ => {
                    let (events, j) = self.collect_events(i, false);
                    if !events.is_empty() {
                        stmts.push(Stmt::Expr { events });
                    }
                    i = j;
                }
            }
            if i <= start {
                i = start + 1; // progress guarantee on malformed input
            }
        }
        (Block { stmts }, i)
    }

    /// `toks[i]` is `let`; parses the whole statement.
    fn parse_let(&mut self, i: usize, stmts: &mut Vec<Stmt>) -> usize {
        let lo = self.lo(i);
        let mut j = i + 1;
        if self.is_ident(j, "mut") {
            j += 1;
        }
        // Pattern: a single bare identifier is Name/Underscore; anything
        // else (tuples, structs, refs, paths) is Other.
        let pat_start = j;
        let mut single: Option<&str> = self.ident(j);
        // Scan to the `=` (or `;` for `let x;`) at depth 0.
        let mut k = j;
        while k < self.toks.len() {
            match self.toks[k].kind {
                Kind::Punct('=') => break,
                Kind::Punct(';') => break,
                Kind::Punct('(') => k = self.skip_group(k, '(', ')'),
                Kind::Punct('[') => k = self.skip_group(k, '[', ']'),
                Kind::Punct('{') => k = self.skip_group(k, '{', '}'),
                Kind::Punct('<') => k = self.skip_angles(k),
                _ => k += 1,
            }
        }
        // The pattern region is `pat_start..first ':' or '='`; a single
        // ident followed directly by `:` or `=` (or `;`) keeps its name.
        if !(self.punct(pat_start + 1, ':')
            || self.punct(pat_start + 1, '=')
            || self.punct(pat_start + 1, ';'))
        {
            single = None;
        }
        let pat = match single {
            Some("_") => Pat::Underscore,
            Some(name) => Pat::Name(name.to_string()),
            None => Pat::Other,
        };
        if self.punct(k, ';') {
            stmts.push(Stmt::Let {
                pat,
                init: Vec::new(),
                else_block: None,
                lo,
            });
            return k + 1;
        }
        let (init, m) = self.collect_events(k + 1, false);
        let (else_block, next) = if self.is_ident(m, "else") && self.punct(m + 1, '{') {
            let (eb, n) = self.block(m + 1);
            (Some(eb), n)
        } else {
            (None, m)
        };
        stmts.push(Stmt::Let {
            pat,
            init,
            else_block,
            lo,
        });
        next
    }

    /// Collects events from `i` to the statement boundary: depth-0 `;`,
    /// `,`, `}` or `else` (none consumed). A depth-0 `{` terminates the
    /// scan when `brace_ends` (scope heads) and otherwise recurses as a
    /// nested [`Event::Block`].
    fn collect_events(&mut self, mut i: usize, brace_ends: bool) -> (Vec<Event>, usize) {
        let mut events = Vec::new();
        let mut depth = 0usize;
        while i < self.toks.len() {
            match self.toks[i].kind {
                Kind::Punct('(') | Kind::Punct('[') => {
                    depth += 1;
                    i += 1;
                }
                Kind::Punct(')') | Kind::Punct(']') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    i += 1;
                }
                Kind::Punct(';') | Kind::Punct(',') if depth == 0 => break,
                Kind::Punct('}') if depth == 0 => break,
                Kind::Punct('{') => {
                    if depth == 0 && brace_ends {
                        break;
                    }
                    let (body, next) = self.block(i);
                    events.push(Event::Block(body));
                    i = next;
                }
                Kind::Ident => {
                    let name = self.text(i);
                    if depth == 0 && name == "else" {
                        break;
                    }
                    i = self.ident_in_expr(i, name, depth, &mut events);
                }
                _ => i += 1,
            }
        }
        (events, i)
    }

    /// Handles one identifier inside an expression, emitting an event
    /// when it heads a call. Returns the next scan index.
    fn ident_in_expr(
        &mut self,
        i: usize,
        name: &'a str,
        depth: usize,
        events: &mut Vec<Event>,
    ) -> usize {
        let lo = self.lo(i);
        let top = depth == 0;
        let is_method = i > 0 && self.punct(i - 1, '.');
        let called = self.punct(i + 1, '(');
        if is_method && called {
            if matches!(name, "lock" | "read" | "write") && self.punct(i + 2, ')') {
                events.push(Event::Acquire {
                    lo,
                    chained: self.is_chained(i + 3),
                    top,
                });
                return i + 3;
            }
            if matches!(name, "wait" | "wait_timeout" | "wait_while") {
                events.push(Event::Wait {
                    arg: self.ident(i + 2).map(str::to_string),
                    lo,
                });
                return i + 1;
            }
            if POISON_CHAIN.contains(&name) {
                return i + 1;
            }
            let group_end = self.skip_group(i + 1, '(', ')');
            events.push(Event::Call {
                callee: Callee::Method(name.to_string()),
                lo,
                chained: self.is_chained(group_end),
                top,
            });
            return i + 1;
        }
        if !is_method && self.punct(i + 1, '!') {
            // Macro: treat as a free call for sink detection.
            if self.punct(i + 2, '{') {
                events.push(Event::Call {
                    callee: Callee::Free(name.to_string()),
                    lo,
                    chained: false,
                    top,
                });
                return self.skip_group(i + 2, '{', '}');
            }
            if self.punct(i + 2, '(') || self.punct(i + 2, '[') {
                events.push(Event::Call {
                    callee: Callee::Free(name.to_string()),
                    lo,
                    chained: false,
                    top,
                });
                return i + 2;
            }
            return i + 1;
        }
        if !is_method && called {
            if name == "drop" {
                events.push(Event::Drop {
                    name: self
                        .ident(i + 2)
                        .filter(|_| self.punct(i + 3, ')'))
                        .map(str::to_string),
                });
                return i + 1;
            }
            let pathed = i >= 3 && self.punct(i - 1, ':') && self.punct(i - 2, ':');
            let callee = match (pathed, self.ident(i - 3)) {
                (true, Some(seg)) => Callee::Path(seg.to_string(), name.to_string()),
                _ => Callee::Free(name.to_string()),
            };
            let group_end = self.skip_group(i + 1, '(', ')');
            events.push(Event::Call {
                callee,
                lo,
                chained: self.is_chained(group_end),
                top,
            });
            return i + 1;
        }
        i + 1
    }

    /// `j` is just past a call's closing paren: is the result consumed
    /// by further chaining (after `?` and poison-recovery links)?
    fn is_chained(&self, mut j: usize) -> bool {
        loop {
            while self.punct(j, '?') {
                j += 1;
            }
            if !self.punct(j, '.') {
                return false;
            }
            let Some(name) = self.ident(j + 1) else {
                return false;
            };
            if POISON_CHAIN.contains(&name) && self.punct(j + 2, '(') {
                j = self.skip_group(j + 2, '(', ')');
                continue;
            }
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Lexed;

    fn ast(src: &str) -> FileAst {
        parse(src, &Lexed::lex(src))
    }

    #[test]
    fn items_and_derives() {
        let a = ast(r#"
            #[derive(Debug, Clone)]
            pub struct Scenario { pub nodes: u32 }
            pub enum Kind { A, B }
            impl Scenario {
                pub fn build(&self) -> u32 { self.nodes }
            }
            fn free() {}
        "#);
        assert_eq!(a.types.len(), 2);
        assert_eq!(a.types[0].name, "Scenario");
        let derives: Vec<&str> = a.types[0].derives.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(derives, ["Debug", "Clone"]);
        assert!(a.types[1].derives.is_empty());
        assert_eq!(a.fns.len(), 2);
        assert_eq!(a.fns[0].name, "build");
        assert_eq!(a.fns[0].owner.as_deref(), Some("Scenario"));
        assert_eq!(a.fns[1].owner, None);
    }

    #[test]
    fn impl_trait_for_type_owner_is_the_type() {
        let a = ast("impl std::fmt::Debug for NodeParams { fn fmt(&self) {} }");
        assert_eq!(a.fns[0].owner.as_deref(), Some("NodeParams"));
    }

    #[test]
    fn guard_return_type_is_captured() {
        let a = ast("fn lock<'a>(m: &'a Mutex<u32>) -> MutexGuard<'a, u32> { m.lock().unwrap_or_else(PoisonError::into_inner) }");
        assert_eq!(a.fns[0].name, "lock");
        assert!(a.fns[0].ret.contains("Guard"));
    }

    #[test]
    fn acquire_chaining_and_binding() {
        let a = ast(r#"
            fn f(m: &Mutex<Vec<u32>>) {
                let g = m.lock().unwrap_or_else(PoisonError::into_inner);
                let n = m.lock().unwrap().len();
            }
        "#);
        let body = &a.fns[0].body;
        let Stmt::Let { pat, init, .. } = &body.stmts[0] else {
            panic!("expected let: {body:?}");
        };
        assert_eq!(*pat, Pat::Name("g".to_string()));
        assert!(matches!(
            init.as_slice(),
            [Event::Acquire {
                chained: false,
                top: true,
                ..
            }]
        ));
        let Stmt::Let { init, .. } = &body.stmts[1] else {
            panic!("expected let");
        };
        // `.lock().unwrap().len()`: a chained acquire, then the `.len()`
        // method-call event.
        assert!(matches!(
            init.first(),
            Some(Event::Acquire { chained: true, .. })
        ));
    }

    #[test]
    fn scope_heads_and_liveness() {
        let a = ast(r#"
            fn f(m: &Mutex<u32>) {
                if check(m) { work(); }
                match fetch(m) { Some(x) => { use_it(x); } None => {} }
                for e in std::fs::read_dir(d) { sink(e); }
            }
        "#);
        let body = &a.fns[0].body;
        let kinds: Vec<(ScopeKind, bool)> = body
            .stmts
            .iter()
            .map(|s| match s {
                Stmt::Scope {
                    kind, head_lives, ..
                } => (*kind, *head_lives),
                other => panic!("expected scope: {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            [
                (ScopeKind::If, false),
                (ScopeKind::Match, true),
                (ScopeKind::For, true)
            ]
        );
        let Stmt::Scope { head, .. } = &body.stmts[2] else {
            unreachable!()
        };
        assert!(head.iter().any(|e| matches!(
            e,
            Event::Call { callee, .. } if callee == &Callee::Path("fs".into(), "read_dir".into())
        )));
    }

    #[test]
    fn drop_wait_and_let_else() {
        let a = ast(r#"
            fn f(s: &S) {
                let mut q = s.queue.lock().unwrap_or_else(PoisonError::into_inner);
                q = s.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
                drop(q);
                let Some(v) = s.get() else { return; };
            }
        "#);
        let body = &a.fns[0].body;
        let Stmt::Expr { events } = &body.stmts[1] else {
            panic!("expected expr: {body:?}");
        };
        assert!(matches!(
            events.as_slice(),
            [Event::Wait { arg: Some(a), .. }] if a == "q"
        ));
        let Stmt::Expr { events } = &body.stmts[2] else {
            panic!("expected drop expr");
        };
        assert!(matches!(
            events.as_slice(),
            [Event::Drop { name: Some(n) }] if n == "q"
        ));
        let Stmt::Let {
            pat, else_block, ..
        } = &body.stmts[3]
        else {
            panic!("expected let-else");
        };
        assert_eq!(*pat, Pat::Other);
        assert!(else_block.is_some());
    }

    #[test]
    fn nested_fn_is_hoisted_and_block_expr_nests() {
        let a = ast(r#"
            fn outer() {
                fn inner(m: &Mutex<u32>) { let _g = m.lock().unwrap(); }
                let task = { step_one(); step_two() };
            }
        "#);
        assert_eq!(a.fns.len(), 2);
        assert_eq!(a.fns[0].name, "inner");
        let outer = &a.fns[1];
        let Stmt::Let { init, .. } = &outer.body.stmts[0] else {
            panic!("expected let: {outer:?}");
        };
        assert!(matches!(init.as_slice(), [Event::Block(_)]));
    }
}
