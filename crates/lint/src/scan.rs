//! Workspace walking, file classification, and the parallel scan.
//!
//! The walk is deterministic: directory entries are sorted before
//! descending, and the parallel phases write results into per-file
//! index slots before a final `(path, line, col, rule)` sort — so two
//! runs over the same tree emit diagnostics in the same order
//! regardless of thread scheduling. The lint engine obeys the
//! determinism discipline it enforces.
//!
//! The scan runs in two thread-chunked phases: lex+parse every file,
//! then (after the sequential cross-file call-graph build) evaluate
//! every rule family per file.

use crate::ast::FileAst;
use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, FileClass, SourceFile};
use crate::lexer::Lexed;
use crate::rules;
use std::path::{Path, PathBuf};

/// The telemetry file carrying the `EventKind` exhaustiveness contract
/// (S002). Workspace-relative.
pub const TELEMETRY_EVENT_FILE: &str = "crates/telemetry/src/event.rs";

/// The obs name registry every `obs::span(…)`/`obs::counter(…)` literal
/// must appear in (S003). Workspace-relative.
pub const OBS_NAMES_FILE: &str = "crates/obs/src/names.rs";

/// Directories never scanned (fixture corpora contain deliberate
/// violations; `target` is build output).
const SKIP_DIRS: &[&str] = &["target", "corpus", ".git"];

/// Checks a whole workspace rooted at `root`. Returns the surviving
/// diagnostics (empty means the gate passes) plus the number of files
/// scanned, or an IO error description.
pub fn check_workspace(root: &Path) -> Result<(Vec<Diagnostic>, usize), String> {
    let files = collect_files(root)?;
    let count = files.len();
    // Phase 1 (parallel): lex and skeleton-parse every file.
    let parsed: Vec<(Lexed, FileAst)> = par_map(&files, |f| {
        let lexed = Lexed::lex(&f.src);
        let ast = crate::ast::parse(&f.src, &lexed);
        (lexed, ast)
    });
    // Sequential: one call graph over every fn in the workspace, so
    // C-rules resolve callees across crate boundaries.
    let asts: Vec<&FileAst> = parsed.iter().map(|(_, a)| a).collect();
    let graph = CallGraph::build(&asts);
    let obs_names = files
        .iter()
        .zip(&parsed)
        .find(|(f, _)| f.path == OBS_NAMES_FILE)
        .and_then(|(f, (lexed, _))| rules::parse_obs_names(&f.src, &lexed.tokens));
    // Phase 2 (parallel): every rule family, per file, into index
    // slots; the final sort makes the order scheduling-independent.
    let indices: Vec<usize> = (0..files.len()).collect();
    let per_file: Vec<Vec<Diagnostic>> = par_map(&indices, |&i| {
        let file = &files[i];
        let (lexed, ast) = &parsed[i];
        let mut out = crate::check_file_with(file, lexed, ast, &graph);
        if let Some(names) = &obs_names {
            out.extend(rules::obs_name_rules(file, lexed, names));
        }
        if file.path == TELEMETRY_EVENT_FILE {
            out.extend(rules::telemetry_rules(file, lexed));
        }
        out
    });
    let mut diags: Vec<Diagnostic> = per_file.into_iter().flatten().collect();
    if obs_names.is_none() {
        diags.push(Diagnostic {
            rule: "S003",
            path: OBS_NAMES_FILE.to_string(),
            line: 1,
            col: 1,
            message: "could not locate SPAN_NAMES / METRIC_NAMES — the obs name registry \
                      moved; update the S003 checker"
                .to_string(),
        });
    }
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok((diags, count))
}

/// Applies `f` to every item, fanning out over scoped worker threads in
/// contiguous chunks. Results land in input order, so the output is
/// identical to a sequential map. Small inputs stay sequential.
fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8);
    if workers == 1 || items.len() < 2 * workers {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        let f = &f;
        let mut rest: &mut [Option<R>] = &mut out;
        for batch in items.chunks(chunk) {
            let (slot, tail) = rest.split_at_mut(batch.len());
            rest = tail;
            s.spawn(move || {
                for (dst, item) in slot.iter_mut().zip(batch) {
                    *dst = Some(f(item));
                }
            });
        }
    });
    out.into_iter().flatten().collect()
}

/// Every `.rs` file the gate covers, classified, in sorted path order.
pub fn collect_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir)? {
        walk(&crate_dir.join("src"), root, &mut out)?;
        walk(&crate_dir.join("tests"), root, &mut out)?;
        walk(&crate_dir.join("benches"), root, &mut out)?;
        walk(&crate_dir.join("examples"), root, &mut out)?;
    }
    walk(&root.join("src"), root, &mut out)?;
    walk(&root.join("tests"), root, &mut out)?;
    walk(&root.join("examples"), root, &mut out)?;
    Ok(out)
}

/// Sorted subdirectories of `dir` (empty when `dir` does not exist).
fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut dirs = Vec::new();
    if !dir.is_dir() {
        return Ok(dirs);
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            dirs.push(path);
        }
    }
    dirs.sort();
    Ok(dirs)
}

/// Recursively collects `.rs` files under `dir`, classifying each.
fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = relative(root, &path);
            let src = std::fs::read_to_string(&path).map_err(|e| format!("read {rel}: {e}"))?;
            out.push(SourceFile {
                class: classify(&rel),
                is_crate_root: is_crate_root(&rel),
                path: rel,
                src,
            });
        }
    }
    Ok(())
}

/// Workspace-relative display path with forward slashes.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Classifies a workspace-relative path into its build role.
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.contains(&"tests") {
        FileClass::Test
    } else if parts.contains(&"benches") {
        FileClass::Bench
    } else if parts.contains(&"examples") {
        FileClass::Example
    } else if parts.contains(&"bin") || rel.ends_with("src/main.rs") {
        FileClass::Bin
    } else {
        FileClass::Lib
    }
}

/// Crate roots: `crates/<name>/src/lib.rs` and the workspace `src/lib.rs`.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/core/src/watch.rs"), FileClass::Lib);
        assert_eq!(classify("crates/bench/src/bin/fig8.rs"), FileClass::Bin);
        assert_eq!(classify("crates/lint/src/main.rs"), FileClass::Bin);
        assert_eq!(classify("crates/core/tests/proptests.rs"), FileClass::Test);
        assert_eq!(
            classify("crates/bench/benches/microbench.rs"),
            FileClass::Bench
        );
        assert_eq!(classify("tests/determinism.rs"), FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Example);
    }

    #[test]
    fn crate_roots() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(!is_crate_root("crates/core/src/watch.rs"));
    }
}
