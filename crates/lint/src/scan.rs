//! Workspace walking and file classification.
//!
//! The walk is deterministic: directory entries are sorted before
//! descending, so two runs over the same tree emit diagnostics in the
//! same order — the lint engine obeys the determinism discipline it
//! enforces.

use crate::diag::{Diagnostic, FileClass, SourceFile};
use crate::lexer::Lexed;
use crate::rules;
use std::path::{Path, PathBuf};

/// The telemetry file carrying the `EventKind` exhaustiveness contract
/// (S002). Workspace-relative.
pub const TELEMETRY_EVENT_FILE: &str = "crates/telemetry/src/event.rs";

/// The obs name registry every `obs::span(…)`/`obs::counter(…)` literal
/// must appear in (S003). Workspace-relative.
pub const OBS_NAMES_FILE: &str = "crates/obs/src/names.rs";

/// Directories never scanned (fixture corpora contain deliberate
/// violations; `target` is build output).
const SKIP_DIRS: &[&str] = &["target", "corpus", ".git"];

/// Checks a whole workspace rooted at `root`. Returns the surviving
/// diagnostics (empty means the gate passes) plus the number of files
/// scanned, or an IO error description.
pub fn check_workspace(root: &Path) -> Result<(Vec<Diagnostic>, usize), String> {
    let files = collect_files(root)?;
    let count = files.len();
    let obs_names = files
        .iter()
        .find(|f| f.path == OBS_NAMES_FILE)
        .and_then(|f| {
            let lexed = Lexed::lex(&f.src);
            rules::parse_obs_names(&f.src, &lexed.tokens)
        });
    let mut diags = Vec::new();
    match &obs_names {
        Some(names) => {
            for file in &files {
                let lexed = Lexed::lex(&file.src);
                diags.extend(rules::obs_name_rules(file, &lexed, names));
            }
        }
        None => diags.push(Diagnostic {
            rule: "S003",
            path: OBS_NAMES_FILE.to_string(),
            line: 1,
            col: 1,
            message: "could not locate SPAN_NAMES / METRIC_NAMES — the obs name registry \
                      moved; update the S003 checker"
                .to_string(),
        }),
    }
    for file in &files {
        diags.extend(crate::check_file(file));
        if file.path == TELEMETRY_EVENT_FILE {
            let lexed = Lexed::lex(&file.src);
            diags.extend(rules::telemetry_rules(file, &lexed));
        }
    }
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok((diags, count))
}

/// Every `.rs` file the gate covers, classified, in sorted path order.
pub fn collect_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir)? {
        walk(&crate_dir.join("src"), root, &mut out)?;
        walk(&crate_dir.join("tests"), root, &mut out)?;
        walk(&crate_dir.join("benches"), root, &mut out)?;
        walk(&crate_dir.join("examples"), root, &mut out)?;
    }
    walk(&root.join("src"), root, &mut out)?;
    walk(&root.join("tests"), root, &mut out)?;
    walk(&root.join("examples"), root, &mut out)?;
    Ok(out)
}

/// Sorted subdirectories of `dir` (empty when `dir` does not exist).
fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut dirs = Vec::new();
    if !dir.is_dir() {
        return Ok(dirs);
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            dirs.push(path);
        }
    }
    dirs.sort();
    Ok(dirs)
}

/// Recursively collects `.rs` files under `dir`, classifying each.
fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = relative(root, &path);
            let src = std::fs::read_to_string(&path).map_err(|e| format!("read {rel}: {e}"))?;
            out.push(SourceFile {
                class: classify(&rel),
                is_crate_root: is_crate_root(&rel),
                path: rel,
                src,
            });
        }
    }
    Ok(())
}

/// Workspace-relative display path with forward slashes.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Classifies a workspace-relative path into its build role.
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.contains(&"tests") {
        FileClass::Test
    } else if parts.contains(&"benches") {
        FileClass::Bench
    } else if parts.contains(&"examples") {
        FileClass::Example
    } else if parts.contains(&"bin") || rel.ends_with("src/main.rs") {
        FileClass::Bin
    } else {
        FileClass::Lib
    }
}

/// Crate roots: `crates/<name>/src/lib.rs` and the workspace `src/lib.rs`.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/core/src/watch.rs"), FileClass::Lib);
        assert_eq!(classify("crates/bench/src/bin/fig8.rs"), FileClass::Bin);
        assert_eq!(classify("crates/lint/src/main.rs"), FileClass::Bin);
        assert_eq!(classify("crates/core/tests/proptests.rs"), FileClass::Test);
        assert_eq!(
            classify("crates/bench/benches/microbench.rs"),
            FileClass::Bench
        );
        assert_eq!(classify("tests/determinism.rs"), FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Example);
    }

    #[test]
    fn crate_roots() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(!is_crate_root("crates/core/src/watch.rs"));
    }
}
