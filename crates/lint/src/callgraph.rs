//! Intra-workspace call graph for the C-rule family.
//!
//! Built from the skeleton ASTs of every scanned file: each function
//! contributes its (name, owner) pair, whether it returns a guard,
//! whether it acquires a lock directly, and the calls it makes. A
//! bounded fixpoint then closes "acquires" transitively.
//!
//! # Resolution contract (what it can and cannot resolve)
//!
//! * Free calls (`name(…)`) resolve against free functions only;
//!   `seg::name(…)` prefers methods of `seg`, then free functions.
//! * Method calls (`.name(…)`) resolve against impl/trait methods of
//!   that name across the workspace — except names on the std-method
//!   blocklist ([`STD_METHOD_NAMES`]), which are far more likely to be
//!   `Vec::push` than a workspace method and are never resolved.
//! * A call only counts as acquiring when the candidate set is
//!   **non-empty and every candidate acquires**: unresolved or
//!   ambiguous calls degrade to intra-fn analysis and can never create
//!   a false positive.
//! * The closure is cycle-tolerant (a recursion cycle with no direct
//!   acquisition inside it never becomes "acquires") and bounded at
//!   [`MAX_DEPTH`] propagation rounds, so pathological graphs cannot
//!   blow up the scan.

use crate::ast::{Block, Callee, Event, FileAst, FnDef, Stmt};

/// Method names resolution skips: common std container/sync/io method
/// names that would otherwise shadow-resolve to unrelated workspace
/// methods of the same name.
pub const STD_METHOD_NAMES: &[&str] = &[
    "load", "store", "set", "get", "len", "push", "pop", "insert", "remove", "clear", "iter",
    "next", "clone", "send", "recv", "join", "take", "append", "extend", "contains", "parse",
    "write", "read", "flush",
];

/// Propagation rounds for the transitive "acquires" closure: call
/// chains deeper than this are not followed.
pub const MAX_DEPTH: usize = 6;

/// One function node in the graph.
#[derive(Debug)]
struct FnNode {
    name: String,
    owner: Option<String>,
    ret_guard: bool,
    direct_acquire: bool,
    calls: Vec<Callee>,
}

/// The workspace call graph, with the transitive acquire set closed.
#[derive(Debug, Default)]
pub struct CallGraph {
    fns: Vec<FnNode>,
    acquires: Vec<bool>,
}

impl CallGraph {
    /// Builds the graph over every fn in `asts` and closes the
    /// "acquires transitively" relation.
    pub fn build(asts: &[&FileAst]) -> CallGraph {
        let mut fns = Vec::new();
        for ast in asts {
            for f in &ast.fns {
                let (calls, direct_acquire) = collect_calls(f);
                fns.push(FnNode {
                    name: f.name.clone(),
                    owner: f.owner.clone(),
                    ret_guard: is_lock_guard_ty(&f.ret),
                    direct_acquire,
                    calls,
                });
            }
        }
        let mut graph = CallGraph {
            acquires: vec![false; fns.len()],
            fns,
        };
        // Direct layer: an explicit `.lock()`-style acquire, or a call
        // to a guard-returning helper (acquiring at the call site).
        for i in 0..graph.fns.len() {
            let has_event_acquire = graph.fns[i].direct_acquire;
            let calls_guard_fn = graph.fns[i].calls.iter().any(|c| graph.is_guard_call(c));
            graph.acquires[i] = has_event_acquire || calls_guard_fn;
        }
        // Bounded fixpoint for the transitive layer. Cycles are
        // naturally tolerated: a cycle only turns true when some member
        // already acquires directly.
        for _ in 0..MAX_DEPTH {
            let mut changed = false;
            for i in 0..graph.fns.len() {
                if graph.acquires[i] {
                    continue;
                }
                let now = graph.fns[i].calls.iter().any(|c| graph.callee_acquires(c));
                if now {
                    graph.acquires[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        graph
    }

    /// Candidate fn indices a callee may resolve to (empty when the
    /// call is out-of-workspace, blocklisted, or otherwise unknown).
    fn candidates(&self, callee: &Callee) -> Vec<usize> {
        match callee {
            Callee::Free(name) => self
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.owner.is_none() && &f.name == name)
                .map(|(i, _)| i)
                .collect(),
            Callee::Method(name) => {
                if STD_METHOD_NAMES.contains(&name.as_str()) {
                    return Vec::new();
                }
                self.fns
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.owner.is_some() && &f.name == name)
                    .map(|(i, _)| i)
                    .collect()
            }
            Callee::Path(seg, name) => {
                let owned: Vec<usize> = self
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.owner.as_deref() == Some(seg.as_str()) && &f.name == name)
                    .map(|(i, _)| i)
                    .collect();
                if !owned.is_empty() {
                    return owned;
                }
                self.fns
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.owner.is_none() && &f.name == name)
                    .map(|(i, _)| i)
                    .collect()
            }
        }
    }

    /// Whether a call to `callee` yields a lock guard: resolvable, and
    /// every candidate returns a `…Guard` type.
    pub fn is_guard_call(&self, callee: &Callee) -> bool {
        let cands = self.candidates(callee);
        !cands.is_empty() && cands.iter().all(|&i| self.fns[i].ret_guard)
    }

    /// Whether calling `callee` acquires a lock somewhere on the
    /// (bounded) call graph: resolvable, and every candidate acquires.
    pub fn callee_acquires(&self, callee: &Callee) -> bool {
        let cands = self.candidates(callee);
        !cands.is_empty() && cands.iter().all(|&i| self.acquires[i])
    }

    /// Number of fn nodes (for tests and reporting).
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }
}

/// Whether a return-type text names a *lock* guard. Requiring a
/// lock-ish word next to `Guard` keeps RAII guards that are not locks —
/// the obs crate's `SpanGuard` timer, gauge holds — from turning every
/// instrumented function into a C001 acquire site.
fn is_lock_guard_ty(ret: &str) -> bool {
    ret.contains("Guard")
        && (ret.contains("Mutex") || ret.contains("RwLock") || ret.contains("Lock"))
}

/// Flattens every call in a fn body (nested blocks and closure bodies
/// included); the second component is whether the body has an explicit
/// `.lock()`-style acquire event anywhere.
fn collect_calls(f: &FnDef) -> (Vec<Callee>, bool) {
    let mut calls = Vec::new();
    let mut direct = false;
    flatten_block(&f.body, &mut calls, &mut direct);
    (calls, direct)
}

fn flatten_block(b: &Block, calls: &mut Vec<Callee>, direct: &mut bool) {
    for s in &b.stmts {
        match s {
            Stmt::Let {
                init, else_block, ..
            } => {
                flatten_events(init, calls, direct);
                if let Some(eb) = else_block {
                    flatten_block(eb, calls, direct);
                }
            }
            Stmt::Expr { events } => flatten_events(events, calls, direct),
            Stmt::Scope { head, body, .. } => {
                flatten_events(head, calls, direct);
                flatten_block(body, calls, direct);
            }
        }
    }
}

fn flatten_events(events: &[Event], calls: &mut Vec<Callee>, direct: &mut bool) {
    for e in events {
        match e {
            Event::Acquire { .. } => *direct = true,
            Event::Call { callee, .. } => calls.push(callee.clone()),
            Event::Block(b) => flatten_block(b, calls, direct),
            Event::Drop { .. } | Event::Wait { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::lexer::Lexed;

    fn graph(src: &str) -> (ast::FileAst, CallGraph) {
        let lexed = Lexed::lex(src);
        let a = ast::parse(src, &lexed);
        let g = CallGraph::build(&[&a]);
        (a, g)
    }

    #[test]
    fn direct_and_transitive_acquire() {
        let (_, g) = graph(
            r#"
            fn leaf(m: &Mutex<u32>) { let _g = m.lock().unwrap(); }
            fn middle(m: &Mutex<u32>) { leaf(m); }
            fn top(m: &Mutex<u32>) { middle(m); }
            fn unrelated() { helper_elsewhere(); }
            "#,
        );
        assert!(g.callee_acquires(&Callee::Free("leaf".into())));
        assert!(g.callee_acquires(&Callee::Free("middle".into())));
        assert!(g.callee_acquires(&Callee::Free("top".into())));
        assert!(!g.callee_acquires(&Callee::Free("unrelated".into())));
        // Unresolved name: degrades to "does not acquire".
        assert!(!g.callee_acquires(&Callee::Free("helper_elsewhere".into())));
    }

    #[test]
    fn cycles_without_acquire_stay_false() {
        let (_, g) = graph(
            r#"
            fn ping(n: u32) { if n > 0 { pong(n - 1); } }
            fn pong(n: u32) { if n > 0 { ping(n - 1); } }
            "#,
        );
        assert!(!g.callee_acquires(&Callee::Free("ping".into())));
        assert!(!g.callee_acquires(&Callee::Free("pong".into())));
    }

    #[test]
    fn cycle_with_acquire_propagates() {
        let (_, g) = graph(
            r#"
            fn ping(m: &Mutex<u32>, n: u32) { let _g = m.lock().unwrap(); pong(m, n); }
            fn pong(m: &Mutex<u32>, n: u32) { if n > 0 { ping(m, n - 1); } }
            "#,
        );
        assert!(g.callee_acquires(&Callee::Free("pong".into())));
    }

    #[test]
    fn ambiguous_candidates_never_flag() {
        let (_, g) = graph(
            r#"
            impl A { fn poke(&self) { let _g = self.m.lock().unwrap(); } }
            impl B { fn poke(&self) { self.counter += 1; } }
            "#,
        );
        // Two candidates, only one acquires: conservative no.
        assert!(!g.callee_acquires(&Callee::Method("poke".into())));
    }

    #[test]
    fn std_method_names_are_blocklisted() {
        let (_, g) = graph(
            r#"
            impl Wal { fn append(&self) { let _g = self.m.lock().unwrap(); } }
            "#,
        );
        assert!(!g.callee_acquires(&Callee::Method("append".into())));
        // But a path call naming the owner still resolves.
        assert!(g.callee_acquires(&Callee::Path("Wal".into(), "append".into())));
    }

    #[test]
    fn guard_returning_helper_is_an_acquire_site() {
        let (_, g) = graph(
            r#"
            fn lock<'a>(m: &'a Mutex<u32>) -> MutexGuard<'a, u32> {
                m.lock().unwrap_or_else(PoisonError::into_inner)
            }
            fn user(m: &Mutex<u32>) { let g = lock(m); drop(g); }
            "#,
        );
        assert!(g.is_guard_call(&Callee::Free("lock".into())));
        assert!(g.callee_acquires(&Callee::Free("user".into())));
    }

    /// RAII guards that are not locks — span timers, gauge holds — must
    /// not count as acquire sites, or every instrumented fn nests.
    #[test]
    fn non_lock_raii_guards_are_not_acquires() {
        let (_, g) = graph(
            r#"
            fn span(name: &'static str) -> SpanGuard { SpanGuard::enter(name) }
            fn instrumented() { let _s = span("job"); }
            "#,
        );
        assert!(!g.is_guard_call(&Callee::Free("span".into())));
        assert!(!g.callee_acquires(&Callee::Free("instrumented".into())));
    }
}
