//! The seed-hash type registry (R001).
//!
//! Experiment seeds derive from the `Debug` rendering of scenario
//! configuration (`exec::SimCell::descriptor` hashes
//! `format!("{:?}", scenario)`), so the byte-for-byte shape of those
//! `Debug` strings is part of the reproducibility contract. PR 8 proved
//! the failure mode: replacing `Scenario`'s hand-written `Debug` with a
//! derived one silently re-seeded every experiment in the workspace,
//! because the derived output included fields the hand-written impl
//! deliberately elides at their defaults.
//!
//! Any type listed here must keep a hand-written `Debug` impl; R001
//! flags `#[derive(Debug)]` on them. Extend the list in the same change
//! that makes a new type's `Debug` string seed-bearing.

/// Types whose `Debug` output feeds seed hashing and must therefore be
/// hand-written, never derived.
pub const SEED_HASH_TYPES: &[&str] = &["Scenario", "NodeParams"];

/// Whether `name` is a registered seed-hash type.
pub fn is_seed_hash_type(name: &str) -> bool {
    SEED_HASH_TYPES.contains(&name)
}
