//! Diagnostic and source-file types shared by every rule family.

/// How a file participates in the build; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source under `src/` (not `src/bin/`): all rules apply.
    Lib,
    /// Binary source (`src/bin/**`, `src/main.rs`): determinism rules
    /// apply, panic-hygiene rules do not (a CLI may abort).
    Bin,
    /// Integration tests (`tests/**`): only allow-comment hygiene.
    Test,
    /// Benchmarks (`benches/**`): only allow-comment hygiene (benches
    /// legitimately read the wall clock).
    Bench,
    /// Examples (`examples/**`): only allow-comment hygiene.
    Example,
}

/// One source file queued for checking.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (diagnostics print this verbatim).
    pub path: String,
    /// Full file contents.
    pub src: String,
    /// Build role of the file.
    pub class: FileClass,
    /// Whether this is a crate root (`src/lib.rs`), which must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// One finding: a rule violated at a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`D001`, `P002`, …).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation, including the remedy.
    pub message: String,
}

impl Diagnostic {
    /// Renders the canonical single-line form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}
