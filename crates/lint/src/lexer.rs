//! A lightweight Rust lexer: enough fidelity to tell code from comments,
//! strings (including raw and byte strings), char literals, and lifetimes,
//! with byte-accurate spans. It does not parse; rules pattern-match over
//! the token stream.

/// What a token is. Literal contents are never inspected by rules, so all
/// string-ish literals collapse into [`Kind::Str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// An identifier or keyword (`foo`, `fn`, `HashMap`, `r#type`).
    Ident,
    /// A single punctuation byte (`.`, `:`, `!`, `{`, …).
    Punct(char),
    /// A string, raw-string, byte-string, or raw-byte-string literal.
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A numeric literal (`42`, `0xFF`, `1.5e3`, `1_000u64`).
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its byte span.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token kind.
    pub kind: Kind,
    /// Byte offset of the first byte.
    pub lo: usize,
    /// Byte offset one past the last byte.
    pub hi: usize,
}

/// One comment (line or block), span covering the comment markers.
#[derive(Debug, Clone, Copy)]
pub struct Comment {
    /// Byte offset of the `//` or `/*`.
    pub lo: usize,
    /// Byte offset one past the comment end.
    pub hi: usize,
}

/// The result of lexing one file: tokens, comments, and a line table.
#[derive(Debug)]
pub struct Lexed {
    /// Code tokens, in order.
    pub tokens: Vec<Token>,
    /// Comments, in order (doc comments included).
    pub comments: Vec<Comment>,
    line_starts: Vec<usize>,
    len: usize,
}

impl Lexed {
    /// Lexes `src`. Never fails: unterminated constructs extend to EOF.
    pub fn lex(src: &str) -> Lexed {
        let b = src.as_bytes();
        let mut tokens = Vec::new();
        let mut comments = Vec::new();
        let mut line_starts = vec![0usize];
        for (i, &c) in b.iter().enumerate() {
            if c == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut i = 0usize;
        while i < b.len() {
            let c = b[i];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => i += 1,
                b'/' if b.get(i + 1) == Some(&b'/') => {
                    let lo = i;
                    while i < b.len() && b[i] != b'\n' {
                        i += 1;
                    }
                    comments.push(Comment { lo, hi: i });
                }
                b'/' if b.get(i + 1) == Some(&b'*') => {
                    let lo = i;
                    let mut depth = 1usize;
                    i += 2;
                    while i < b.len() && depth > 0 {
                        if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                            depth += 1;
                            i += 2;
                        } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    comments.push(Comment { lo, hi: i });
                }
                b'"' => {
                    let lo = i;
                    i = skip_string(b, i + 1);
                    tokens.push(Token {
                        kind: Kind::Str,
                        lo,
                        hi: i,
                    });
                }
                b'r' | b'b' if starts_special_literal(b, i) => {
                    let lo = i;
                    i = skip_special_literal(b, i);
                    let kind = if b[lo] == b'b' && b.get(lo + 1) == Some(&b'\'') {
                        Kind::Char
                    } else {
                        Kind::Str
                    };
                    tokens.push(Token { kind, lo, hi: i });
                }
                b'\'' => {
                    let lo = i;
                    let (kind, next) = skip_quote(b, i);
                    i = next;
                    tokens.push(Token { kind, lo, hi: i });
                }
                _ if c == b'_' || c.is_ascii_alphabetic() => {
                    let lo = i;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: Kind::Ident,
                        lo,
                        hi: i,
                    });
                }
                _ if c.is_ascii_digit() => {
                    let lo = i;
                    i = skip_number(b, i);
                    tokens.push(Token {
                        kind: Kind::Num,
                        lo,
                        hi: i,
                    });
                }
                _ if c < 0x80 => {
                    tokens.push(Token {
                        kind: Kind::Punct(c as char),
                        lo: i,
                        hi: i + 1,
                    });
                    i += 1;
                }
                _ => i += utf8_len(c), // non-ascii outside strings: skip the char
            }
        }
        Lexed {
            tokens,
            comments,
            line_starts,
            len: b.len(),
        }
    }

    /// 1-based `(line, column)` of a byte offset.
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx,
            Err(idx) => idx - 1,
        };
        let col = offset - self.line_starts[line];
        (line as u32 + 1, col as u32 + 1)
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> u32 {
        self.line_col(offset).0
    }

    /// Byte length of the lexed source.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the source was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0xF0..=0xFF => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

/// `i` points at `r` or `b`: does a raw/byte string or byte char start here?
fn starts_special_literal(b: &[u8], i: usize) -> bool {
    match (b[i], b.get(i + 1)) {
        (b'r', Some(&b'"')) | (b'r', Some(&b'#')) => matches_raw(b, i + 1),
        (b'b', Some(&b'"')) | (b'b', Some(&b'\'')) => true,
        (b'b', Some(&b'r')) => matches_raw(b, i + 2),
        _ => false,
    }
}

/// At `i` sits `"` or a run of `#` that must end in `"` for a raw string.
fn matches_raw(b: &[u8], mut i: usize) -> bool {
    while b.get(i) == Some(&b'#') {
        i += 1;
    }
    b.get(i) == Some(&b'"')
}

/// Skips the body of a normal (escaped) string; `i` is just past the
/// opening quote. Returns the offset just past the closing quote.
fn skip_string(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'` starting at `i`.
fn skip_special_literal(b: &[u8], mut i: usize) -> usize {
    if b[i] == b'b' {
        i += 1;
        if b.get(i) == Some(&b'\'') {
            // byte char literal: escape-aware, single quote terminated
            i += 1;
            while i < b.len() {
                match b[i] {
                    b'\\' => i += 2,
                    b'\'' => return i + 1,
                    _ => i += 1,
                }
            }
            return i;
        }
        if b.get(i) == Some(&b'"') {
            return skip_string(b, i + 1);
        }
    }
    // raw (possibly byte-) string: r, then hashes, then quote
    debug_assert_eq!(b[i], b'r');
    i += 1;
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote (guaranteed by starts_special_literal)
    while i < b.len() {
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// `i` points at a `'`: lifetime or char literal? Returns (kind, next).
fn skip_quote(b: &[u8], i: usize) -> (Kind, usize) {
    let next = b.get(i + 1).copied().unwrap_or(0);
    let is_ident_start = next == b'_' || next.is_ascii_alphabetic();
    if is_ident_start && b.get(i + 2) != Some(&b'\'') {
        // lifetime: 'a, 'static (identifier not followed by closing quote)
        let mut j = i + 1;
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        return (Kind::Lifetime, j);
    }
    // char literal, escape-aware
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return (Kind::Char, j + 1),
            b'\n' => break, // unterminated; bail at end of line
            _ => j += 1,
        }
    }
    (Kind::Char, j)
}

/// Skips a numeric literal (integers, floats, radix prefixes, suffixes).
fn skip_number(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        let c = b[i];
        let in_literal = c == b'_'
            || c.is_ascii_alphanumeric()
            || (c == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
            || ((c == b'+' || c == b'-') // exponent sign: 1.5e-3
                && matches!(b.get(i.wrapping_sub(1)), Some(&b'e') | Some(&b'E'))
                && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()));
        if !in_literal {
            break;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        let lx = Lexed::lex(src);
        lx.tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| src[t.lo..t.hi].to_string())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now in /* nested */ block */
            let s = "HashMap::new()";
            let r = r#"Instant::now()"#;
            let b = b"unwrap()";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|s| s == "HashMap" || s == "Instant"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }";
        let lx = Lexed::lex(src);
        let lifetimes = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .count();
        let chars = lx.tokens.iter().filter(|t| t.kind == Kind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "a\nbb\n  c";
        let lx = Lexed::lex(src);
        let c = lx.tokens.last().copied();
        let Some(tok) = c else { panic!("no tokens") };
        assert_eq!(lx.line_col(tok.lo), (3, 3));
    }

    #[test]
    fn byte_char_literal_lexes() {
        let src = "let q = b'\\''; let x = b\"bytes\";";
        let lx = Lexed::lex(src);
        assert!(lx.tokens.iter().any(|t| t.kind == Kind::Char));
        assert!(lx.tokens.iter().any(|t| t.kind == Kind::Str));
    }
}
