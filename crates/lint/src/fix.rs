//! `--fix`: mechanical removal of stale allow comments (L003).
//!
//! An L003 diagnostic anchors at the start of a `// lint: allow(…)`
//! comment that no longer suppresses anything. The fix is textual and
//! loses nothing else: a standalone allow line is deleted whole; a
//! trailing allow is cut from its line, keeping the code before it.

use crate::diag::Diagnostic;

/// Rewrites `src` with the stale allow comments at the given L003
/// diagnostic positions removed. Positions are 1-based `(line, col)`
/// pairs as reported; anything out of bounds is ignored. Returns the
/// new contents and how many allows were removed.
pub fn strip_stale_allows(src: &str, diags: &[&Diagnostic]) -> (String, usize) {
    let mut lines: Vec<Option<String>> = src.split('\n').map(|l| Some(l.to_string())).collect();
    let mut removed = 0usize;
    for d in diags {
        if d.rule != "L003" {
            continue;
        }
        let idx = d.line as usize;
        if idx == 0 || idx > lines.len() {
            continue;
        }
        let Some(line) = lines[idx - 1].clone() else {
            continue;
        };
        let cut = (d.col as usize).saturating_sub(1);
        if cut > line.len() || !line.is_char_boundary(cut) {
            continue;
        }
        let prefix = &line[..cut];
        if prefix.trim().is_empty() {
            lines[idx - 1] = None; // standalone allow: drop the line
        } else {
            lines[idx - 1] = Some(prefix.trim_end().to_string());
        }
        removed += 1;
    }
    let kept: Vec<String> = lines.into_iter().flatten().collect();
    (kept.join("\n"), removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn l003(line: u32, col: u32) -> Diagnostic {
        Diagnostic {
            rule: "L003",
            path: "x.rs".to_string(),
            line,
            col,
            message: String::new(),
        }
    }

    #[test]
    fn standalone_allow_line_is_deleted() {
        let src = "fn f() {}\n// lint: allow(P001) stale\nfn g() {}\n";
        let (out, n) = strip_stale_allows(src, &[&l003(2, 1)]);
        assert_eq!(out, "fn f() {}\nfn g() {}\n");
        assert_eq!(n, 1);
    }

    #[test]
    fn trailing_allow_keeps_the_code() {
        let src = "fn f() { g(); } // lint: allow(P001) stale\n";
        let (out, n) = strip_stale_allows(src, &[&l003(1, 17)]);
        assert_eq!(out, "fn f() { g(); }\n");
        assert_eq!(n, 1);
    }

    #[test]
    fn non_l003_and_out_of_bounds_are_ignored() {
        let src = "fn f() {}\n";
        let mut other = l003(1, 1);
        other.rule = "P001";
        let (out, n) = strip_stale_allows(src, &[&other, &l003(99, 1)]);
        assert_eq!(out, src);
        assert_eq!(n, 0);
    }
}
