//! The `// lint: allow(<rule>) <reason>` escape hatch.
//!
//! An allow suppresses matching diagnostics on its own line (trailing
//! form) or on the next line (standalone form). The reason is mandatory
//! (L001), the rule id must exist (L002), an allow that suppresses
//! nothing is itself an error (L003) so stale exceptions get removed,
//! and a `D001` allow is only legitimate inside the registered
//! wall-clock boundary (L004) — see [`WALL_CLOCK_BOUNDARY`].

use crate::diag::{Diagnostic, FileClass, SourceFile};
use crate::lexer::Lexed;
use crate::rules::is_known_rule;

/// The registered wall-clock boundary: the only library/binary sources
/// where a `D001` allow is legitimate. Everything here is a host-side
/// seam — profiling that feeds run manifests, the bench timing harness,
/// or the daemon's socket-lifetime timeouts — and none of it feeds
/// simulation state. A `D001` allow anywhere else is L004: either route
/// the timing need through one of these seams, or (for a genuinely new
/// boundary) extend this registry in the same change that adds the read.
pub const WALL_CLOCK_BOUNDARY: &[&str] = &[
    "crates/bench/src/timing.rs",
    "crates/obs/src/clock.rs",
    "crates/runner/src/pool.rs",
    "crates/runner/src/service.rs",
    "crates/runner/src/supervisor.rs",
    "crates/served/src/net.rs",
];

/// The registered lock-nesting boundary: the only library/binary
/// sources where a `C001` allow is legitimate. The work-stealing pool's
/// injector→local refill deliberately holds both queue locks for one
/// batch move in a fixed order; that is the whole list. A `C001` allow
/// anywhere else is L005: restructure to one lock at a time (collect
/// under the first guard, drop it, then apply), or — for a genuinely
/// new two-tier structure with a documented lock order — extend this
/// registry in the same change.
pub const LOCK_NEST_BOUNDARY: &[&str] = &["crates/runner/src/pool.rs"];

/// One parsed allow comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule id the allow names (not yet validated).
    pub rule: String,
    /// Justification text after the closing parenthesis (may be empty —
    /// that is L001's job to reject).
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// 1-based column of the comment start.
    pub col: u32,
    /// The line whose diagnostics this allow suppresses: its own line for
    /// a trailing allow, or the line of the next code token for a
    /// standalone one (continuation comment lines in between are fine).
    pub target_line: u32,
}

/// Extracts every `lint:` comment from a lexed file. Anything starting
/// with `lint:` is parsed strictly so typos surface as L-diagnostics
/// instead of silently failing to suppress.
pub fn parse_allows(src: &str, lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let text = &src[c.lo..c.hi];
        let stripped = text
            .trim_start_matches('/')
            .trim_start_matches(['!', '*'])
            .trim_start();
        let Some(rest) = stripped.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (line, col) = lexed.line_col(c.lo);
        let target_line = if is_line_start(src, c.lo) {
            lexed
                .tokens
                .iter()
                .find(|t| t.lo >= c.hi)
                .map(|t| lexed.line_col(t.lo).0)
                .unwrap_or(line + 1)
        } else {
            line
        };
        let (rule, reason) = match rest.strip_prefix("allow(") {
            Some(after) => match after.split_once(')') {
                Some((rule, reason)) => (rule.trim().to_string(), reason.trim().to_string()),
                None => (after.trim().to_string(), String::new()),
            },
            // `lint:` with anything other than `allow(` — treat the whole
            // remainder as a bogus rule name so L002 reports it.
            None => (rest.split_whitespace().next().unwrap_or("").to_string(), {
                String::new()
            }),
        };
        out.push(Allow {
            rule,
            reason,
            line,
            col,
            target_line,
        });
    }
    out
}

/// Whether only whitespace precedes `offset` on its line.
fn is_line_start(src: &str, offset: usize) -> bool {
    src[..offset]
        .bytes()
        .rev()
        .take_while(|&b| b != b'\n')
        .all(|b| b == b' ' || b == b'\t')
}

/// L001/L002/L004: malformed or mis-sited allows are diagnostics in
/// their own right.
pub fn syntax_diagnostics(file: &SourceFile, allows: &[Allow]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for a in allows {
        if !is_known_rule(&a.rule) {
            out.push(Diagnostic {
                rule: "L002",
                path: file.path.clone(),
                line: a.line,
                col: a.col,
                message: format!(
                    "`lint: allow({})` names an unknown rule; run `lint --list-rules`",
                    a.rule
                ),
            });
            continue;
        }
        if a.reason.is_empty() {
            out.push(Diagnostic {
                rule: "L001",
                path: file.path.clone(),
                line: a.line,
                col: a.col,
                message: format!(
                    "`lint: allow({})` has no justification; write the reason after the \
                     closing parenthesis",
                    a.rule
                ),
            });
        }
        if a.rule == "D001"
            && matches!(file.class, FileClass::Lib | FileClass::Bin)
            && !WALL_CLOCK_BOUNDARY.contains(&file.path.as_str())
        {
            out.push(Diagnostic {
                rule: "L004",
                path: file.path.clone(),
                line: a.line,
                col: a.col,
                message: format!(
                    "`lint: allow(D001)` outside the registered wall-clock boundary \
                     ({}); route timing through an existing seam or register this \
                     file in WALL_CLOCK_BOUNDARY alongside the read it justifies",
                    WALL_CLOCK_BOUNDARY.join(", ")
                ),
            });
        }
        if a.rule == "C001"
            && matches!(file.class, FileClass::Lib | FileClass::Bin)
            && !LOCK_NEST_BOUNDARY.contains(&file.path.as_str())
        {
            out.push(Diagnostic {
                rule: "L005",
                path: file.path.clone(),
                line: a.line,
                col: a.col,
                message: format!(
                    "`lint: allow(C001)` outside the registered lock-nesting boundary \
                     ({}); restructure to one lock at a time, or register this file in \
                     LOCK_NEST_BOUNDARY alongside the documented lock order it justifies",
                    LOCK_NEST_BOUNDARY.join(", ")
                ),
            });
        }
    }
    out
}

/// Applies the allow pass: drops diagnostics covered by a valid allow,
/// then reports unused allows (L003). L-diagnostics are never allowable.
pub fn apply(file: &SourceFile, allows: &[Allow], diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let valid: Vec<&Allow> = allows
        .iter()
        .filter(|a| is_known_rule(&a.rule) && !a.reason.is_empty())
        .collect();
    let mut used = vec![false; valid.len()];
    let mut out = Vec::new();
    for d in diags {
        let mut suppressed = false;
        if !d.rule.starts_with('L') {
            for (i, a) in valid.iter().enumerate() {
                if a.rule == d.rule && a.target_line == d.line {
                    used[i] = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for (i, a) in valid.iter().enumerate() {
        if !used[i] {
            out.push(Diagnostic {
                rule: "L003",
                path: file.path.clone(),
                line: a.line,
                col: a.col,
                message: format!(
                    "`lint: allow({})` suppresses nothing on line {}; remove the stale allow",
                    a.rule, a.target_line
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::FileClass;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            path: "x.rs".to_string(),
            src: src.to_string(),
            class: FileClass::Lib,
            is_crate_root: false,
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        crate::check_file(&file(src))
    }

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let src = "fn f() { x.unwrap(); } // lint: allow(P001) invariant: x checked above\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn standalone_allow_suppresses_next_line() {
        let src = "// lint: allow(P001) invariant: x checked above\nfn f() { x.unwrap(); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_l001_and_does_not_suppress() {
        let src = "fn f() { x.unwrap(); } // lint: allow(P001)\n";
        let rules: Vec<&str> = run(src).iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"L001"), "{rules:?}");
        assert!(rules.contains(&"P001"), "{rules:?}");
    }

    #[test]
    fn unknown_rule_is_l002() {
        let src = "fn f() {} // lint: allow(Z999) because\n";
        let rules: Vec<&str> = run(src).iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["L002"]);
    }

    #[test]
    fn unused_allow_is_l003() {
        let src = "fn f() {} // lint: allow(P001) nothing here anymore\n";
        let rules: Vec<&str> = run(src).iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["L003"]);
    }

    #[test]
    fn wrong_rule_id_does_not_suppress() {
        let src = "fn f() { x.unwrap(); } // lint: allow(P002) wrong family\n";
        let rules: Vec<&str> = run(src).iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"P001"), "{rules:?}");
        assert!(rules.contains(&"L003"), "{rules:?}");
    }
}
