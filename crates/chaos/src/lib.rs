//! Deterministic fault injection and protocol invariant checking.
//!
//! This crate turns the test suite from example-based into an executable
//! specification of LITEWORP: inject seeded faults into a simulated run
//! and machine-check that the protocol's event stream stays legal.
//!
//! Three pieces:
//!
//! * [`plan::FaultPlan`] — pure data describing what to break:
//!   probabilistic frame drop, corruption, duplication, bounded
//!   reorder/jitter, node crash/reboot windows, and per-node clock drift.
//!   Plans sample from a [`plan::FuzzProfile`], shrink toward minimal
//!   counterexamples, and round-trip through a reproducer command line.
//! * [`inject::Injector`] — a [`liteworp_netsim::fault::FaultHook`]
//!   executing a plan from its own PCG32 streams, fully deterministic
//!   per `(scenario seed, plan)` pair.
//! * [`engine_faults::EngineFaultPlan`] — chaos for the *runner* itself:
//!   a [`liteworp_runner::supervisor::JobFaultHook`] injecting transient
//!   per-attempt job failures (io / panic / invariant) so the
//!   supervisor's retry, quarantine, and journal paths are exercised
//!   deterministically.
//! * [`process_faults::ProcessFaultPlan`] — chaos for the *service
//!   fabric*: kill -9 a shard worker mid-drain, stall its accept loop,
//!   or tear its request-WAL tail, sampled and shrunk like every other
//!   plan. The shard front (`liteworp-served --front`) must drain to
//!   byte-identical digests under any sampled plan.
//! * [`oracle`] — replays a [`liteworp_telemetry::EventLog`] and asserts
//!   the protocol invariants (alert quorum, `MalC` provenance, watch
//!   bound, absorbing isolation, honest immunity). See the module docs
//!   for the precise statement of each.
//!
//! The `chaos_fuzz` binary in `liteworp-bench` drives scenario × plan
//! sweeps through the runner's job pool and shrinks any violation it
//! finds; `EXPERIMENTS.md` documents the workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine_faults;
pub mod inject;
pub mod oracle;
pub mod plan;
pub mod process_faults;

pub use engine_faults::EngineFaultPlan;
pub use inject::Injector;
pub use oracle::{check, Immunity, Invariant, OracleConfig, ReplayStats, Violation};
pub use plan::{parse_crashes, parse_drifts, ClockDrift, CrashWindow, FaultPlan, FuzzProfile};
pub use process_faults::{parse_process_faults, ProcessFault, ProcessFaultPlan};
