//! Fault plans: the complete, serializable description of what to break.
//!
//! A [`FaultPlan`] is pure data — which fraction of receptions to drop,
//! corrupt, duplicate, or delay, which nodes crash when, and whose clocks
//! drift. Combined with a scenario and a seed it identifies a chaos run
//! exactly: the [`descriptor`](FaultPlan::descriptor) string feeds the
//! runner's content-addressed cache, and [`cli_args`](FaultPlan::cli_args)
//! round-trips the plan through a `chaos_fuzz --replay` command line.

use liteworp_runner::rng::{Pcg32, Rng};

/// One node-crash window: the node is dead (no timers, no radio, no
/// tunnel) for `from_us <= t < until_us`, then reboots with state intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashing node's index.
    pub node: u32,
    /// Start of the outage, inclusive, in simulation microseconds.
    pub from_us: u64,
    /// End of the outage, exclusive; must be strictly greater than
    /// `from_us`.
    pub until_us: u64,
}

/// A per-node clock-drift entry: every timer delay the node schedules is
/// scaled by `(1_000_000 + ppm) / 1_000_000`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDrift {
    /// The drifting node's index.
    pub node: u32,
    /// Parts-per-million skew; positive runs slow, negative fast. Must be
    /// greater than `-1_000_000`.
    pub ppm: i64,
}

/// A complete fault-injection plan.
///
/// Probabilities apply independently per `(frame, receiver)` pair, after
/// the simulator's own collision and noise models.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's private PCG32 streams (independent of the
    /// scenario seed, so shrinking fault intensities never perturbs the
    /// underlying traffic pattern).
    pub seed: u64,
    /// Probability a reception vanishes silently.
    pub drop: f64,
    /// Probability a reception arrives corrupted (seen as a collision).
    pub corrupt: f64,
    /// Probability a reception arrives twice.
    pub duplicate: f64,
    /// Probability a reception is delayed (and possibly reordered).
    pub delay: f64,
    /// Upper bound on the delay jitter, in microseconds.
    pub max_jitter_us: u64,
    /// Node outage windows.
    pub crashes: Vec<CrashWindow>,
    /// Per-node clock skews.
    pub drifts: Vec<ClockDrift>,
}

impl Default for FaultPlan {
    /// The null plan: injects nothing at all.
    fn default() -> Self {
        FaultPlan {
            seed: 1,
            drop: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_jitter_us: 0,
            crashes: Vec::new(),
            drifts: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// Whether this plan injects nothing (the null plan).
    pub fn is_null(&self) -> bool {
        self.drop == 0.0
            && self.corrupt == 0.0
            && self.duplicate == 0.0
            && self.delay == 0.0
            && self.crashes.is_empty()
            && self.drifts.is_empty()
    }

    /// Total per-reception fault probability (the sum of `drop`,
    /// `corrupt`, `duplicate`, and `delay`) — the "fault intensity" the
    /// oracle's honest-immunity ceiling is expressed against.
    pub fn intensity(&self) -> f64 {
        self.drop + self.corrupt + self.duplicate + self.delay
    }

    /// Validates ranges: probabilities in `[0, 1]` with a total at most 1,
    /// well-formed crash windows, and sane drift magnitudes.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop", self.drop),
            ("corrupt", self.corrupt),
            ("duplicate", self.duplicate),
            ("delay", self.delay),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} probability {p} outside [0, 1]"));
            }
        }
        if self.intensity() > 1.0 {
            return Err(format!("total fault intensity {} > 1", self.intensity()));
        }
        if self.delay > 0.0 && self.max_jitter_us == 0 {
            return Err("delay probability set but max_jitter_us is 0".into());
        }
        for c in &self.crashes {
            if c.until_us <= c.from_us {
                return Err(format!("empty crash window for node {}", c.node));
            }
        }
        for d in &self.drifts {
            if d.ppm <= -1_000_000 {
                return Err(format!("drift {} ppm would reverse time", d.ppm));
            }
        }
        Ok(())
    }

    /// A stable, human-readable identity string. Together with the
    /// scenario descriptor it keys the runner's result cache, so any field
    /// change invalidates cached outcomes.
    pub fn descriptor(&self) -> String {
        format!("{self:?}")
    }

    /// Draws a random plan under `profile`'s ceilings for a run of
    /// `run_us` microseconds over `nodes` nodes.
    pub fn sample(rng: &mut Pcg32, nodes: u32, run_us: u64, profile: &FuzzProfile) -> FaultPlan {
        let frac = |rng: &mut Pcg32, max: f64| {
            if max > 0.0 {
                rng.gen_f64() * max
            } else {
                0.0
            }
        };
        let drop = frac(rng, profile.drop_max);
        let corrupt = frac(rng, profile.corrupt_max);
        let duplicate = frac(rng, profile.duplicate_max);
        let delay = frac(rng, profile.delay_max);
        let max_jitter_us = if delay > 0.0 {
            rng.gen_range(1..=profile.jitter_max_us.max(1))
        } else {
            0
        };
        let mut crashes = Vec::new();
        let crash_count = rng.gen_range(0..=profile.crashes_max as u64);
        for _ in 0..crash_count {
            let len = rng
                .gen_range(profile.crash_min_us..=profile.crash_max_us.max(profile.crash_min_us));
            if len >= run_us {
                continue;
            }
            let from_us = rng.gen_range(0..=(run_us - len));
            crashes.push(CrashWindow {
                node: rng.gen_range(0..nodes),
                from_us,
                until_us: from_us + len,
            });
        }
        let mut drifts = Vec::new();
        let drift_count = rng.gen_range(0..=profile.drift_nodes_max as u64);
        for _ in 0..drift_count {
            let magnitude = rng.gen_range(0..=profile.drift_ppm_max.unsigned_abs());
            let ppm = if rng.gen_bool(0.5) {
                magnitude as i64
            } else {
                -(magnitude as i64)
            };
            drifts.push(ClockDrift {
                node: rng.gen_range(0..nodes),
                ppm,
            });
        }
        let plan = FaultPlan {
            seed: rng.next_u64(),
            drop,
            corrupt,
            duplicate,
            delay,
            max_jitter_us,
            crashes,
            drifts,
        };
        debug_assert!(plan.validate().is_ok());
        plan
    }

    /// Ordered simplification candidates for greedy shrinking: each is a
    /// strictly "smaller" plan (one fault class removed, a list cleared or
    /// halved, or a probability halved). The driver keeps the first
    /// candidate that still violates and repeats until none does.
    pub fn shrink_candidates(&self) -> Vec<FaultPlan> {
        let mut out = Vec::new();
        let mut push = |plan: FaultPlan| {
            if plan != *self {
                out.push(plan);
            }
        };
        // Whole fault classes first: the biggest steps.
        if !self.crashes.is_empty() {
            push(FaultPlan {
                crashes: Vec::new(),
                ..self.clone()
            });
        }
        if !self.drifts.is_empty() {
            push(FaultPlan {
                drifts: Vec::new(),
                ..self.clone()
            });
        }
        if self.drop > 0.0 {
            push(FaultPlan {
                drop: 0.0,
                ..self.clone()
            });
        }
        if self.corrupt > 0.0 {
            push(FaultPlan {
                corrupt: 0.0,
                ..self.clone()
            });
        }
        if self.duplicate > 0.0 {
            push(FaultPlan {
                duplicate: 0.0,
                ..self.clone()
            });
        }
        if self.delay > 0.0 {
            push(FaultPlan {
                delay: 0.0,
                max_jitter_us: 0,
                ..self.clone()
            });
        }
        // Then finer steps: halve lists and probabilities.
        if self.crashes.len() > 1 {
            push(FaultPlan {
                crashes: self.crashes[..self.crashes.len() / 2].to_vec(),
                ..self.clone()
            });
        }
        if self.drifts.len() > 1 {
            push(FaultPlan {
                drifts: self.drifts[..self.drifts.len() / 2].to_vec(),
                ..self.clone()
            });
        }
        let halve = |p: f64| if p > 1e-6 { p / 2.0 } else { 0.0 };
        if self.drop > 1e-6 {
            push(FaultPlan {
                drop: halve(self.drop),
                ..self.clone()
            });
        }
        if self.corrupt > 1e-6 {
            push(FaultPlan {
                corrupt: halve(self.corrupt),
                ..self.clone()
            });
        }
        if self.duplicate > 1e-6 {
            push(FaultPlan {
                duplicate: halve(self.duplicate),
                ..self.clone()
            });
        }
        if self.delay > 1e-6 {
            push(FaultPlan {
                delay: halve(self.delay),
                ..self.clone()
            });
        }
        if self.max_jitter_us > 1 && self.delay > 0.0 {
            push(FaultPlan {
                max_jitter_us: self.max_jitter_us / 2,
                ..self.clone()
            });
        }
        out
    }

    /// The `chaos_fuzz --replay` flags reproducing exactly this plan.
    pub fn cli_args(&self) -> String {
        let mut s = format!(
            "--plan-seed {} --drop {} --corrupt {} --duplicate {} --delay {} --jitter-us {}",
            self.seed, self.drop, self.corrupt, self.duplicate, self.delay, self.max_jitter_us
        );
        if !self.crashes.is_empty() {
            let spec: Vec<String> = self
                .crashes
                .iter()
                .map(|c| format!("{}@{}-{}", c.node, c.from_us, c.until_us))
                .collect();
            s.push_str(&format!(" --crashes {}", spec.join(",")));
        }
        if !self.drifts.is_empty() {
            let spec: Vec<String> = self
                .drifts
                .iter()
                .map(|d| format!("{}@{}", d.node, d.ppm))
                .collect();
            s.push_str(&format!(" --drifts {}", spec.join(",")));
        }
        s
    }
}

/// Parses a `--crashes` spec: `node@from-until[,node@from-until...]`,
/// times in microseconds.
pub fn parse_crashes(spec: &str) -> Result<Vec<CrashWindow>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (node, window) = part
            .split_once('@')
            .ok_or_else(|| format!("bad crash entry {part:?} (want node@from-until)"))?;
        let (from, until) = window
            .split_once('-')
            .ok_or_else(|| format!("bad crash window {window:?} (want from-until)"))?;
        out.push(CrashWindow {
            node: node
                .parse()
                .map_err(|e| format!("bad node {node:?}: {e}"))?,
            from_us: from
                .parse()
                .map_err(|e| format!("bad start {from:?}: {e}"))?,
            until_us: until
                .parse()
                .map_err(|e| format!("bad end {until:?}: {e}"))?,
        });
    }
    Ok(out)
}

/// Parses a `--drifts` spec: `node@ppm[,node@ppm...]`.
pub fn parse_drifts(spec: &str) -> Result<Vec<ClockDrift>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (node, ppm) = part
            .split_once('@')
            .ok_or_else(|| format!("bad drift entry {part:?} (want node@ppm)"))?;
        out.push(ClockDrift {
            node: node
                .parse()
                .map_err(|e| format!("bad node {node:?}: {e}"))?,
            ppm: ppm.parse().map_err(|e| format!("bad ppm {ppm:?}: {e}"))?,
        });
    }
    Ok(out)
}

/// Sampling ceilings for [`FaultPlan::sample`].
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzProfile {
    /// Maximum drop probability.
    pub drop_max: f64,
    /// Maximum corruption probability.
    pub corrupt_max: f64,
    /// Maximum duplication probability.
    pub duplicate_max: f64,
    /// Maximum delay probability.
    pub delay_max: f64,
    /// Maximum jitter bound, microseconds.
    pub jitter_max_us: u64,
    /// Maximum number of crash windows.
    pub crashes_max: u32,
    /// Minimum crash-window length, microseconds.
    pub crash_min_us: u64,
    /// Maximum crash-window length, microseconds.
    pub crash_max_us: u64,
    /// Maximum number of drifting nodes.
    pub drift_nodes_max: u32,
    /// Maximum drift magnitude, ppm.
    pub drift_ppm_max: i64,
}

impl FuzzProfile {
    /// The benign envelope: fault intensities low enough that the paper's
    /// false-alarm analysis (Section 5.1) predicts essentially zero false
    /// isolations at the default γ = 2, yet every fault class is
    /// exercised. Jitter stays far below the 2 s watch timeout so delayed
    /// forwards do not masquerade as drops.
    pub fn benign() -> Self {
        FuzzProfile {
            drop_max: 0.01,
            corrupt_max: 0.02,
            duplicate_max: 0.02,
            delay_max: 0.02,
            jitter_max_us: 100_000,
            crashes_max: 2,
            crash_min_us: 2_000_000,
            crash_max_us: 20_000_000,
            drift_nodes_max: 3,
            drift_ppm_max: 200,
        }
    }

    /// A harsher envelope for hunting: everything benign allows, times
    /// five, with longer outages. Violations found here are interesting
    /// but do not indict the protocol's benign-regime guarantees.
    pub fn harsh() -> Self {
        FuzzProfile {
            drop_max: 0.05,
            corrupt_max: 0.10,
            duplicate_max: 0.10,
            delay_max: 0.10,
            jitter_max_us: 500_000,
            crashes_max: 4,
            crash_min_us: 2_000_000,
            crash_max_us: 60_000_000,
            drift_nodes_max: 6,
            drift_ppm_max: 1_000,
        }
    }

    /// The worst-case intensity a plan sampled under this profile can
    /// reach (the oracle's benign ceiling).
    pub fn intensity_max(&self) -> f64 {
        self.drop_max + self.corrupt_max + self.duplicate_max + self.delay_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan(seed: u64) -> FaultPlan {
        let mut rng = Pcg32::seed_from_u64(seed);
        FaultPlan::sample(&mut rng, 30, 300_000_000, &FuzzProfile::benign())
    }

    #[test]
    fn null_plan_is_null() {
        assert!(FaultPlan::default().is_null());
        assert_eq!(FaultPlan::default().intensity(), 0.0);
        assert!(FaultPlan::default().validate().is_ok());
    }

    #[test]
    fn sampled_plans_validate_and_stay_under_profile() {
        let profile = FuzzProfile::benign();
        for seed in 0..50 {
            let plan = sample_plan(seed);
            plan.validate().expect("sampled plan must validate");
            assert!(plan.intensity() <= profile.intensity_max() + 1e-12);
            assert!(plan.crashes.len() <= profile.crashes_max as usize);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(sample_plan(7), sample_plan(7));
        assert_ne!(sample_plan(7), sample_plan(8));
    }

    #[test]
    fn descriptor_distinguishes_plans() {
        let a = sample_plan(1);
        let b = sample_plan(2);
        assert_ne!(a.descriptor(), b.descriptor());
        assert_eq!(a.descriptor(), a.clone().descriptor());
    }

    #[test]
    fn shrink_candidates_are_strictly_simpler() {
        let plan = sample_plan(3);
        for cand in plan.shrink_candidates() {
            assert_ne!(cand, plan);
            cand.validate().expect("shrunk plan must validate");
            assert!(
                cand.intensity() <= plan.intensity() + 1e-12,
                "shrinking must not raise intensity"
            );
        }
        // The null plan cannot shrink further.
        assert!(FaultPlan::default().shrink_candidates().is_empty());
    }

    #[test]
    fn crash_and_drift_specs_round_trip() {
        let mut plan = sample_plan(4);
        plan.crashes = vec![
            CrashWindow {
                node: 3,
                from_us: 1_000_000,
                until_us: 4_000_000,
            },
            CrashWindow {
                node: 9,
                from_us: 2,
                until_us: 5,
            },
        ];
        plan.drifts = vec![
            ClockDrift { node: 1, ppm: 40 },
            ClockDrift { node: 8, ppm: -25 },
        ];
        let crash_spec = "3@1000000-4000000,9@2-5";
        let drift_spec = "1@40,8@-25";
        assert_eq!(parse_crashes(crash_spec).unwrap(), plan.crashes);
        assert_eq!(parse_drifts(drift_spec).unwrap(), plan.drifts);
        let args = plan.cli_args();
        assert!(args.contains(crash_spec), "{args}");
        assert!(args.contains(drift_spec), "{args}");
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(parse_crashes("3@5-2x").is_err());
        assert!(parse_crashes("nope").is_err());
        assert!(parse_drifts("1@fast").is_err());
        let plan = FaultPlan {
            drop: 1.5,
            ..Default::default()
        };
        assert!(plan.validate().is_err());
        let plan = FaultPlan {
            delay: 0.1,
            ..Default::default()
        };
        assert!(plan.validate().is_err(), "delay without jitter bound");
        let plan = FaultPlan {
            crashes: vec![CrashWindow {
                node: 0,
                from_us: 5,
                until_us: 5,
            }],
            ..Default::default()
        };
        assert!(plan.validate().is_err(), "empty crash window");
    }
}
