//! Process-level fault plans for the shard fabric.
//!
//! [`FaultPlan`](crate::plan::FaultPlan) breaks *frames inside a
//! simulation*; [`ProcessFaultPlan`] breaks the *service processes that
//! run simulations*: kill -9 a worker daemon mid-drain, stall a worker's
//! accept loop (alive process, dead socket — exactly what a protocol
//! ping catches and an exit-status check misses), or corrupt the tail
//! of a worker's request WAL before it resumes. The shard front must
//! survive every sampled plan with a byte-identical sorted digest set —
//! the `shard` integration tests and `scripts/shard_smoke.sh` assert
//! exactly that.
//!
//! Like every chaos plan in this crate, a [`ProcessFaultPlan`] is pure
//! data: sampled deterministically from a seed, validated, shrinkable
//! toward a minimal counterexample, and round-trippable through a
//! reproducer command line. The *mechanics* live next to the victims —
//! `--stall-accept-secs` on the daemon binary, `kill -9` by pid from the
//! front's `shards.json` manifest, a file truncation/garbage append for
//! WAL corruption — so this module stays dependency-free data.

use liteworp_runner::rng::{Pcg32, Rng};

/// One process-level fault against a shard worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessFault {
    /// SIGKILL the worker once it has drained `after_done` requests —
    /// no flush, no goodbye; the supervisor finds out via exit status
    /// and a failed ping.
    Kill {
        /// The victim shard's ring index.
        shard: usize,
        /// How many completed requests to wait for before the kill
        /// (0 = kill as soon as the worker is up).
        after_done: u64,
    },
    /// Start the worker with its accept loop stalling this many
    /// milliseconds after each accepted connection: the process stays
    /// alive while new connections starve, so only the protocol ping
    /// can catch it.
    StallAccept {
        /// The victim shard's ring index.
        shard: usize,
        /// Stall duration per accepted connection, milliseconds.
        millis: u64,
    },
    /// Append a torn, garbage tail to the worker's `requests.jsonl`
    /// after killing it, before the supervisor restarts it with
    /// `--resume` — the WAL loader must truncate it back to the last
    /// clean record.
    CorruptWalTail {
        /// The victim shard's ring index.
        shard: usize,
        /// How many garbage bytes to append (no trailing newline).
        bytes: usize,
    },
}

impl ProcessFault {
    /// The victim shard's ring index.
    pub fn shard(&self) -> usize {
        match self {
            ProcessFault::Kill { shard, .. }
            | ProcessFault::StallAccept { shard, .. }
            | ProcessFault::CorruptWalTail { shard, .. } => *shard,
        }
    }
}

/// A complete process-level fault plan against a front with `shards`
/// workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessFaultPlan {
    /// Seed the plan was sampled from (kept for the reproducer line).
    pub seed: u64,
    /// Ring size the plan was sampled for.
    pub shards: usize,
    /// The faults, in injection order.
    pub faults: Vec<ProcessFault>,
}

impl ProcessFaultPlan {
    /// Draws a plan with up to `max_faults` faults against a ring of
    /// `shards` workers. Deterministic per `(seed, shards, max_faults)`.
    /// At most one fault per shard, so a plan never asks for the same
    /// victim twice (a killed worker cannot also stall).
    pub fn sample(seed: u64, shards: usize, max_faults: usize) -> ProcessFaultPlan {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut faults = Vec::new();
        let budget = max_faults.min(shards);
        let count = if budget > 0 {
            rng.gen_range(1..=budget as u64) as usize
        } else {
            0
        };
        let mut victims: Vec<usize> = (0..shards).collect();
        for _ in 0..count {
            let pick = rng.gen_range(0..victims.len() as u64) as usize;
            let shard = victims.swap_remove(pick);
            let fault = match rng.gen_range(0..3u64) {
                0 => ProcessFault::Kill {
                    shard,
                    after_done: rng.gen_range(0..=4u64),
                },
                1 => ProcessFault::StallAccept {
                    shard,
                    millis: rng.gen_range(100..=2_000u64),
                },
                _ => ProcessFault::CorruptWalTail {
                    shard,
                    bytes: rng.gen_range(1..=64u64) as usize,
                },
            };
            faults.push(fault);
        }
        let plan = ProcessFaultPlan {
            seed,
            shards,
            faults,
        };
        debug_assert!(plan.validate().is_ok());
        plan
    }

    /// Validates shard indices, per-shard uniqueness, and fault shapes.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.shards];
        for fault in &self.faults {
            let shard = fault.shard();
            if shard >= self.shards {
                return Err(format!("fault targets shard {shard} of {}", self.shards));
            }
            if std::mem::replace(&mut seen[shard], true) {
                return Err(format!("shard {shard} targeted twice"));
            }
            match fault {
                ProcessFault::StallAccept { millis: 0, .. } => {
                    return Err("zero-length accept stall injects nothing".into());
                }
                ProcessFault::CorruptWalTail { bytes: 0, .. } => {
                    return Err("zero-byte WAL corruption injects nothing".into());
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Ordered simplification candidates for greedy shrinking: drop a
    /// fault, or weaken one (kill later → kill sooner is *not* simpler,
    /// so only list shortening and stall/garbage halving qualify).
    pub fn shrink_candidates(&self) -> Vec<ProcessFaultPlan> {
        let mut out = Vec::new();
        for drop in 0..self.faults.len() {
            let mut faults = self.faults.clone();
            faults.remove(drop);
            out.push(ProcessFaultPlan {
                faults,
                ..self.clone()
            });
        }
        for (i, fault) in self.faults.iter().enumerate() {
            let weakened = match fault {
                ProcessFault::StallAccept { shard, millis } if *millis > 1 => {
                    Some(ProcessFault::StallAccept {
                        shard: *shard,
                        millis: millis / 2,
                    })
                }
                ProcessFault::CorruptWalTail { shard, bytes } if *bytes > 1 => {
                    Some(ProcessFault::CorruptWalTail {
                        shard: *shard,
                        bytes: bytes / 2,
                    })
                }
                _ => None,
            };
            if let Some(weakened) = weakened {
                let mut faults = self.faults.clone();
                faults[i] = weakened;
                out.push(ProcessFaultPlan {
                    faults,
                    ..self.clone()
                });
            }
        }
        out
    }

    /// A reproducer command-line fragment: `--proc-seed S --shards N
    /// --proc-faults kill:SHARD@DONE,stall:SHARD@MS,waltear:SHARD@BYTES`.
    pub fn cli_args(&self) -> String {
        let mut s = format!("--proc-seed {} --shards {}", self.seed, self.shards);
        if !self.faults.is_empty() {
            let spec: Vec<String> = self
                .faults
                .iter()
                .map(|f| match f {
                    ProcessFault::Kill { shard, after_done } => {
                        format!("kill:{shard}@{after_done}")
                    }
                    ProcessFault::StallAccept { shard, millis } => {
                        format!("stall:{shard}@{millis}")
                    }
                    ProcessFault::CorruptWalTail { shard, bytes } => {
                        format!("waltear:{shard}@{bytes}")
                    }
                })
                .collect();
            s.push_str(&format!(" --proc-faults {}", spec.join(",")));
        }
        s
    }
}

/// Parses a `--proc-faults` spec back into faults (see
/// [`ProcessFaultPlan::cli_args`]).
pub fn parse_process_faults(spec: &str) -> Result<Vec<ProcessFault>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (kind, rest) = part
            .split_once(':')
            .ok_or_else(|| format!("bad fault entry {part:?} (want kind:shard@arg)"))?;
        let (shard, arg) = rest
            .split_once('@')
            .ok_or_else(|| format!("bad fault target {rest:?} (want shard@arg)"))?;
        let shard: usize = shard
            .parse()
            .map_err(|e| format!("bad shard {shard:?}: {e}"))?;
        let arg: u64 = arg.parse().map_err(|e| format!("bad arg {arg:?}: {e}"))?;
        out.push(match kind {
            "kill" => ProcessFault::Kill {
                shard,
                after_done: arg,
            },
            "stall" => ProcessFault::StallAccept { shard, millis: arg },
            "waltear" => ProcessFault::CorruptWalTail {
                shard,
                bytes: arg as usize,
            },
            other => return Err(format!("unknown fault kind {other:?}")),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_valid() {
        for seed in 0..50 {
            let plan = ProcessFaultPlan::sample(seed, 3, 2);
            plan.validate().expect("sampled plan must validate");
            assert!(
                !plan.faults.is_empty(),
                "max_faults >= 1 draws at least one"
            );
            assert!(plan.faults.len() <= 2);
            assert_eq!(plan, ProcessFaultPlan::sample(seed, 3, 2));
        }
        assert_ne!(
            ProcessFaultPlan::sample(1, 3, 2),
            ProcessFaultPlan::sample(2, 3, 2)
        );
    }

    #[test]
    fn each_shard_is_targeted_at_most_once() {
        for seed in 0..50 {
            let plan = ProcessFaultPlan::sample(seed, 2, 5);
            let mut shards: Vec<usize> = plan.faults.iter().map(ProcessFault::shard).collect();
            shards.sort_unstable();
            shards.dedup();
            assert_eq!(shards.len(), plan.faults.len(), "{plan:?}");
        }
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let plan = ProcessFaultPlan {
            seed: 0,
            shards: 2,
            faults: vec![ProcessFault::Kill {
                shard: 2,
                after_done: 0,
            }],
        };
        assert!(plan.validate().is_err(), "out-of-range shard");
        let plan = ProcessFaultPlan {
            seed: 0,
            shards: 2,
            faults: vec![
                ProcessFault::Kill {
                    shard: 0,
                    after_done: 0,
                },
                ProcessFault::StallAccept {
                    shard: 0,
                    millis: 100,
                },
            ],
        };
        assert!(plan.validate().is_err(), "double-targeted shard");
        let plan = ProcessFaultPlan {
            seed: 0,
            shards: 2,
            faults: vec![ProcessFault::StallAccept {
                shard: 0,
                millis: 0,
            }],
        };
        assert!(plan.validate().is_err(), "null stall");
    }

    #[test]
    fn shrink_candidates_are_strictly_simpler_and_valid() {
        let plan = ProcessFaultPlan::sample(9, 3, 3);
        for cand in plan.shrink_candidates() {
            assert_ne!(cand, plan);
            cand.validate().expect("shrunk plan must validate");
        }
        let empty = ProcessFaultPlan {
            seed: 0,
            shards: 1,
            faults: Vec::new(),
        };
        assert!(empty.shrink_candidates().is_empty());
    }

    #[test]
    fn cli_args_round_trip() {
        for seed in 0..20 {
            let plan = ProcessFaultPlan::sample(seed, 3, 3);
            let args = plan.cli_args();
            let spec = args
                .split("--proc-faults ")
                .nth(1)
                .expect("sampled plans have at least one fault");
            assert_eq!(parse_process_faults(spec).unwrap(), plan.faults, "{args}");
        }
        assert!(parse_process_faults("explode:0@1").is_err());
        assert!(parse_process_faults("kill:0").is_err());
    }
}
