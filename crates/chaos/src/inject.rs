//! The [`Injector`]: a [`FaultHook`] executing a [`FaultPlan`].
//!
//! Determinism layout: the injector owns two private PCG32 streams seeded
//! from the plan seed. The *decision* stream draws exactly one value per
//! reception regardless of which fault classes are enabled, so zeroing
//! one class during shrinking does not perturb the decisions of the
//! others; the *jitter* stream is drawn only when a delay verdict needs a
//! magnitude.

use crate::plan::FaultPlan;
use liteworp_netsim::fault::{FaultHook, Reception};
use liteworp_netsim::field::NodeId;
use liteworp_netsim::time::{SimDuration, SimTime};
use liteworp_runner::rng::{Pcg32, Rng};

/// Executes a [`FaultPlan`] deterministically.
pub struct Injector {
    plan: FaultPlan,
    decide: Pcg32,
    jitter: Pcg32,
}

impl Injector {
    /// Builds an injector for `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not validate.
    pub fn new(plan: FaultPlan) -> Self {
        // lint: allow(P002) documented panic: executing an invalid plan
        // would silently skew fault probabilities
        plan.validate().expect("invalid fault plan");
        let decide = Pcg32::seed_from_u64(plan.seed);
        let jitter = Pcg32::seed_from_u64(plan.seed ^ 0x6a09_e667_f3bc_c908);
        Injector {
            plan,
            decide,
            jitter,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FaultHook for Injector {
    fn on_reception(&mut self, _now: SimTime, _tx: NodeId, _rx: NodeId) -> Reception {
        // One draw per reception, always, to keep streams aligned across
        // shrink steps.
        let u = self.decide.gen_f64();
        let mut edge = self.plan.drop;
        if u < edge {
            return Reception::Drop;
        }
        edge += self.plan.corrupt;
        if u < edge {
            return Reception::Corrupt;
        }
        edge += self.plan.duplicate;
        if u < edge {
            return Reception::Duplicate;
        }
        edge += self.plan.delay;
        if u < edge {
            let us = self.jitter.gen_range(1..=self.plan.max_jitter_us.max(1));
            return Reception::Delay(SimDuration::from_micros(us));
        }
        Reception::Deliver
    }

    fn down_until(&self, now: SimTime, node: NodeId) -> Option<SimTime> {
        let t = now.as_micros();
        self.plan
            .crashes
            .iter()
            .filter(|c| c.node == node.0 && c.from_us <= t && t < c.until_us)
            .map(|c| c.until_us)
            .max()
            .map(SimTime::from_micros)
    }

    fn timer_delay(&self, node: NodeId, delay: SimDuration) -> SimDuration {
        match self.plan.drifts.iter().find(|d| d.node == node.0) {
            Some(d) => {
                let scaled = delay.as_micros() as i128 * (1_000_000 + d.ppm) as i128 / 1_000_000;
                SimDuration::from_micros(scaled.max(0) as u64)
            }
            None => delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ClockDrift, CrashWindow};

    fn plan() -> FaultPlan {
        FaultPlan {
            seed: 11,
            drop: 0.25,
            corrupt: 0.25,
            duplicate: 0.25,
            delay: 0.25,
            max_jitter_us: 1000,
            crashes: vec![CrashWindow {
                node: 4,
                from_us: 100,
                until_us: 200,
            }],
            drifts: vec![ClockDrift {
                node: 2,
                ppm: 100_000,
            }],
        }
    }

    #[test]
    fn verdicts_follow_plan_probabilities() {
        let mut inj = Injector::new(plan());
        let mut counts = [0u32; 5];
        for i in 0..4000 {
            let v = inj.on_reception(SimTime::from_micros(i), NodeId(0), NodeId(1));
            let idx = match v {
                Reception::Deliver => 0,
                Reception::Drop => 1,
                Reception::Corrupt => 2,
                Reception::Duplicate => 3,
                Reception::Delay(d) => {
                    assert!(d.as_micros() >= 1 && d.as_micros() <= 1000);
                    4
                }
            };
            counts[idx] += 1;
        }
        // Every fault class fires roughly a quarter of the time.
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert!((800..1200).contains(&c), "class {i}: {c} of 4000");
        }
        assert_eq!(counts[0], 0, "intensity 1.0 leaves nothing untouched");
    }

    #[test]
    fn verdict_stream_is_deterministic() {
        let run = || {
            let mut inj = Injector::new(plan());
            (0..64)
                .map(|i| inj.on_reception(SimTime::from_micros(i), NodeId(0), NodeId(1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zeroing_one_class_preserves_other_decisions() {
        // The decision stream draws once per reception either way, so a
        // reception that dropped in the full plan cannot turn into a
        // different fault class when `corrupt` is zeroed.
        let full = plan();
        let mut without_corrupt = plan();
        without_corrupt.corrupt = 0.0;
        let mut a = Injector::new(full);
        let mut b = Injector::new(without_corrupt);
        for i in 0..2000 {
            let now = SimTime::from_micros(i);
            let va = a.on_reception(now, NodeId(0), NodeId(1));
            let vb = b.on_reception(now, NodeId(0), NodeId(1));
            if va == Reception::Drop {
                assert_eq!(vb, Reception::Drop, "drop decisions must be stable");
            }
        }
    }

    #[test]
    fn crash_window_bounds_are_half_open() {
        let inj = Injector::new(plan());
        let down = |t| inj.down_until(SimTime::from_micros(t), NodeId(4));
        assert_eq!(down(99), None);
        assert_eq!(down(100), Some(SimTime::from_micros(200)));
        assert_eq!(down(199), Some(SimTime::from_micros(200)));
        assert_eq!(down(200), None);
        assert_eq!(
            inj.down_until(SimTime::from_micros(150), NodeId(5)),
            None,
            "other nodes unaffected"
        );
    }

    #[test]
    fn drift_scales_timer_delays() {
        let inj = Injector::new(plan());
        let d = SimDuration::from_micros(1000);
        assert_eq!(inj.timer_delay(NodeId(2), d).as_micros(), 1100);
        assert_eq!(inj.timer_delay(NodeId(3), d).as_micros(), 1000);
        let mut negative = plan();
        negative.drifts = vec![ClockDrift {
            node: 2,
            ppm: -100_000,
        }];
        let inj = Injector::new(negative);
        assert_eq!(inj.timer_delay(NodeId(2), d).as_micros(), 900);
    }
}
