//! The protocol invariant oracle: replays a [`EventLog`] and checks that
//! the recorded behavior is one LITEWORP could legally have produced.
//!
//! The invariants, and how each maps onto the telemetry vocabulary:
//!
//! 1. **Alert quorum** — network-wide isolation (`Isolated` with
//!    `by_alerts: true`) requires `γ` accepted alerts from *distinct*
//!    guards at that node, and local isolation (`by_alerts: false`)
//!    requires a prior `MalC` threshold crossing for that suspect at that
//!    node. No alert from the same guard may be accepted twice.
//! 2. **MalC provenance** — every `MalcIncrement` carries the configured
//!    weight for its reason (`V_f` for fabrication, `V_d` for drop), a
//!    drop-reason increment is only legal in the same expiry sweep as a
//!    `WatchBufferExpired` at the same guard and timestamp, and the
//!    post-increment counter is at least the weight just added.
//! 3. **Watch bound** — every expiry sweep releases between 1 and
//!    `watch_capacity` entries, so the watch buffer never grew past its
//!    configured bound.
//! 4. **Isolation is absorbing** — once a node isolates a suspect it
//!    never re-adds it as a neighbor, never accepts another alert about
//!    it, and never network-isolates it a second time. (This is the
//!    observable footprint of "isolated nodes source and sink no further
//!    frames": every neighbor that isolated the suspect refuses all
//!    subsequent protocol interaction with it.)
//! 5. **Honest immunity** — in attack-free runs below a configured fault
//!    intensity, no honest node is ever network-isolated; with no faults
//!    at all, no honest node is isolated even locally. Local false
//!    accusations under benign faults are tolerated noise (the paper's
//!    Section 5.1 point: the γ quorum absorbs them) and are only counted.
//!
//! The oracle is strictly an observer: it never touches protocol state,
//! so it can machine-check any run the simulator can produce.

use liteworp::config::Config;
use liteworp_runner::json::Json;
use liteworp_telemetry::{EventKind, EventLog, MalcReason};
use std::collections::{BTreeMap, BTreeSet};

/// Which invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Isolation without the required quorum or threshold crossing, or a
    /// double-counted guard.
    AlertQuorum,
    /// A `MalC` increment with the wrong weight or no matching cause.
    MalcProvenance,
    /// A watch-buffer expiry sweep outside `[1, watch_capacity]`.
    WatchBounded,
    /// Interaction with an already-isolated suspect.
    IsolationAbsorbing,
    /// An honest node isolated in an attack-free run.
    HonestImmunity,
    /// The event log overflowed its ring, so the history is incomplete
    /// and the other invariants cannot be decided.
    LogTruncated,
}

impl Invariant {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::AlertQuorum => "alert_quorum",
            Invariant::MalcProvenance => "malc_provenance",
            Invariant::WatchBounded => "watch_bounded",
            Invariant::IsolationAbsorbing => "isolation_absorbing",
            Invariant::HonestImmunity => "honest_immunity",
            Invariant::LogTruncated => "log_truncated",
        }
    }

    /// Parses the stable name back.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "alert_quorum" => Invariant::AlertQuorum,
            "malc_provenance" => Invariant::MalcProvenance,
            "watch_bounded" => Invariant::WatchBounded,
            "isolation_absorbing" => Invariant::IsolationAbsorbing,
            "honest_immunity" => Invariant::HonestImmunity,
            "log_truncated" => Invariant::LogTruncated,
            _ => return None,
        })
    }
}

/// One invariant violation found in a replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: Invariant,
    /// Simulation time of the offending event, microseconds.
    pub time_us: u64,
    /// Node at which the offending event was recorded.
    pub node: u32,
    /// Human-readable explanation.
    pub detail: String,
}

impl Violation {
    /// Serializes to a flat JSON object.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("invariant", Json::from(self.invariant.name())),
            ("t_us", Json::from(self.time_us)),
            ("node", Json::from(self.node as u64)),
            ("detail", Json::from(self.detail.as_str())),
        ])
    }

    /// Parses the [`Violation::to_json`] shape back.
    pub fn from_json(json: &Json) -> Option<Self> {
        Some(Violation {
            invariant: Invariant::from_name(json.get("invariant")?.as_str()?)?,
            time_us: json.get("t_us")?.as_u64()?,
            node: json.get("node")?.as_u64()? as u32,
            detail: json.get("detail")?.as_str()?.to_string(),
        })
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] t={}us node={}: {}",
            self.invariant.name(),
            self.time_us,
            self.node,
            self.detail
        )
    }
}

/// How strictly honest nodes must be protected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Immunity {
    /// Attack present (or fault intensity above the benign ceiling):
    /// honest-immunity checks are off; the structural invariants still
    /// apply.
    Off,
    /// Attack-free run under benign faults: an honest node must never be
    /// *network*-isolated (γ accepted alerts), though a single confused
    /// guard may locally accuse one.
    NetworkWide,
    /// Attack-free, fault-free run: any isolation of an honest node, even
    /// local, is a violation.
    Strict,
}

/// Oracle parameters, mirroring the protocol [`Config`] plus run context.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// γ: accepted alerts from distinct guards needed for isolation.
    pub confidence_index: u32,
    /// `V_f`: the fabrication `MalC` weight.
    pub fabrication_weight: u32,
    /// `V_d`: the drop `MalC` weight.
    pub drop_weight: u32,
    /// `C_t`: the local accusation threshold.
    pub malc_threshold: u32,
    /// Maximum live watch-buffer entries per guard.
    pub watch_capacity: u32,
    /// Nodes that actually are malicious in this run (exempt from the
    /// honest-immunity invariant).
    pub malicious: Vec<u32>,
    /// Honest-immunity strictness for this run.
    pub immunity: Immunity,
}

impl OracleConfig {
    /// Builds oracle parameters from the protocol configuration.
    pub fn from_protocol(cfg: &Config, malicious: &[u32], immunity: Immunity) -> Self {
        OracleConfig {
            confidence_index: cfg.confidence_index as u32,
            fabrication_weight: cfg.fabrication_weight,
            drop_weight: cfg.drop_weight,
            malc_threshold: cfg.malc_threshold,
            watch_capacity: cfg.watch_capacity as u32,
            malicious: malicious.to_vec(),
            immunity,
        }
    }
}

/// Summary counters of one replay — context for interpreting violations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Events replayed.
    pub events: u64,
    /// `Isolated` events seen (all flavors).
    pub isolations: u64,
    /// Honest suspects locally accused (tolerated noise under
    /// [`Immunity::NetworkWide`]).
    pub honest_local_accusations: u64,
    /// `MalcIncrement` events seen.
    pub malc_increments: u64,
    /// `WatchBufferExpired` sweeps seen.
    pub watch_expiries: u64,
}

/// Replays `log` against `cfg` and returns every violation found, in
/// event order, plus summary counters.
pub fn check(log: &EventLog, cfg: &OracleConfig) -> (Vec<Violation>, ReplayStats) {
    let mut violations = Vec::new();
    let mut stats = ReplayStats::default();
    if log.dropped() > 0 {
        violations.push(Violation {
            invariant: Invariant::LogTruncated,
            time_us: 0,
            node: 0,
            detail: format!(
                "event ring dropped {} events; invariants undecidable",
                log.dropped()
            ),
        });
        return (violations, stats);
    }
    let malicious: BTreeSet<u32> = cfg.malicious.iter().copied().collect();
    // Replay state, all keyed by (observer node, suspect).
    let mut accepted_guards: BTreeMap<(u32, u32), BTreeSet<u32>> = BTreeMap::new();
    let mut crossed: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut isolated: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut net_isolated: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut last_expiry: BTreeMap<u32, u64> = BTreeMap::new();
    for e in log.events() {
        stats.events += 1;
        let (t, n) = (e.time_us, e.node);
        let mut flag = |invariant: Invariant, detail: String| {
            violations.push(Violation {
                invariant,
                time_us: t,
                node: n,
                detail,
            });
        };
        match e.kind {
            EventKind::WatchBufferExpired { expired } => {
                stats.watch_expiries += 1;
                if expired == 0 || expired > cfg.watch_capacity {
                    flag(
                        Invariant::WatchBounded,
                        format!(
                            "expiry sweep released {expired} entries (capacity {})",
                            cfg.watch_capacity
                        ),
                    );
                }
                last_expiry.insert(n, t);
            }
            EventKind::MalcIncrement {
                suspect,
                delta,
                malc,
                reason,
            } => {
                stats.malc_increments += 1;
                let expected = match reason {
                    MalcReason::Fabrication => cfg.fabrication_weight,
                    MalcReason::Drop => cfg.drop_weight,
                };
                if delta != expected {
                    flag(
                        Invariant::MalcProvenance,
                        format!(
                            "{} increment of {delta} (configured weight {expected})",
                            reason.name()
                        ),
                    );
                }
                if malc < delta {
                    flag(
                        Invariant::MalcProvenance,
                        format!("counter {malc} below the delta {delta} just added"),
                    );
                }
                if reason == MalcReason::Drop && last_expiry.get(&n) != Some(&t) {
                    flag(
                        Invariant::MalcProvenance,
                        format!(
                            "drop charge against {suspect} without a watch expiry \
                             at this guard and timestamp"
                        ),
                    );
                }
                if malc >= cfg.malc_threshold {
                    crossed.insert((n, suspect));
                    if !malicious.contains(&suspect) {
                        stats.honest_local_accusations += 1;
                    }
                }
            }
            EventKind::AlertReceived {
                guard,
                suspect,
                accepted: true,
            } => {
                if isolated.contains(&(n, suspect)) {
                    flag(
                        Invariant::IsolationAbsorbing,
                        format!("accepted an alert about already-isolated {suspect}"),
                    );
                }
                let guards = accepted_guards.entry((n, suspect)).or_default();
                if !guards.insert(guard) {
                    flag(
                        Invariant::AlertQuorum,
                        format!("alert from guard {guard} about {suspect} counted twice"),
                    );
                }
            }
            EventKind::Isolated { suspect, by_alerts } => {
                stats.isolations += 1;
                if by_alerts {
                    let quorum = accepted_guards
                        .get(&(n, suspect))
                        .map_or(0, |g| g.len() as u32);
                    if quorum < cfg.confidence_index {
                        flag(
                            Invariant::AlertQuorum,
                            format!(
                                "network isolation of {suspect} on {quorum} accepted \
                                 guard alerts (γ = {})",
                                cfg.confidence_index
                            ),
                        );
                    }
                    if !net_isolated.insert((n, suspect)) {
                        flag(
                            Invariant::IsolationAbsorbing,
                            format!("{suspect} network-isolated twice"),
                        );
                    }
                } else if !crossed.contains(&(n, suspect)) {
                    flag(
                        Invariant::AlertQuorum,
                        format!(
                            "local isolation of {suspect} without a MalC threshold \
                             crossing (C_t = {})",
                            cfg.malc_threshold
                        ),
                    );
                }
                if !malicious.contains(&suspect) {
                    let broken = match cfg.immunity {
                        Immunity::Off => false,
                        Immunity::NetworkWide => by_alerts,
                        Immunity::Strict => true,
                    };
                    if broken {
                        flag(
                            Invariant::HonestImmunity,
                            format!(
                                "honest node {suspect} {} in an attack-free run",
                                if by_alerts {
                                    "network-isolated"
                                } else {
                                    "locally isolated"
                                }
                            ),
                        );
                    }
                }
                isolated.insert((n, suspect));
            }
            EventKind::NeighborAdded { peer } if isolated.contains(&(n, peer)) => {
                flag(
                    Invariant::IsolationAbsorbing,
                    format!("re-added isolated node {peer} as a neighbor"),
                );
            }
            _ => {}
        }
    }
    (violations, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liteworp_telemetry::Event;

    fn cfg(immunity: Immunity) -> OracleConfig {
        OracleConfig::from_protocol(&Config::default(), &[7], immunity)
    }

    fn log_of(events: &[(u64, u32, EventKind)]) -> EventLog {
        let mut log = EventLog::default();
        for &(time_us, node, kind) in events {
            log.record(Event {
                time_us,
                node,
                kind,
            });
        }
        log
    }

    /// A legal detection sequence: two fabrications and two drop charges
    /// cross C_t = 6 at guard 1, then guard 2's and guard 1's alerts
    /// network-isolate the suspect at node 3.
    fn legal_events() -> Vec<(u64, u32, EventKind)> {
        let m = |delta, malc, reason| EventKind::MalcIncrement {
            suspect: 7,
            delta,
            malc,
            reason,
        };
        vec![
            (1, 1, EventKind::NeighborAdded { peer: 7 }),
            (10, 1, m(2, 2, MalcReason::Fabrication)),
            (20, 1, EventKind::WatchBufferExpired { expired: 2 }),
            (20, 1, m(1, 3, MalcReason::Drop)),
            (20, 1, m(1, 4, MalcReason::Drop)),
            (30, 1, m(2, 6, MalcReason::Fabrication)),
            (30, 1, EventKind::Suspected { suspect: 7 }),
            (
                30,
                1,
                EventKind::Isolated {
                    suspect: 7,
                    by_alerts: false,
                },
            ),
            (
                40,
                3,
                EventKind::AlertReceived {
                    guard: 1,
                    suspect: 7,
                    accepted: true,
                },
            ),
            (
                45,
                3,
                EventKind::AlertReceived {
                    guard: 2,
                    suspect: 7,
                    accepted: true,
                },
            ),
            (
                45,
                3,
                EventKind::Isolated {
                    suspect: 7,
                    by_alerts: true,
                },
            ),
        ]
    }

    #[test]
    fn legal_sequence_passes() {
        let (violations, stats) = check(&log_of(&legal_events()), &cfg(Immunity::Strict));
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(stats.isolations, 2);
        assert_eq!(stats.malc_increments, 4);
        assert_eq!(stats.honest_local_accusations, 0);
    }

    #[test]
    fn quorum_shortfall_is_flagged() {
        let mut events = legal_events();
        events.remove(9); // drop guard 2's alert: only 1 accepted, γ = 2
        let (violations, _) = check(&log_of(&events), &cfg(Immunity::Strict));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].invariant, Invariant::AlertQuorum);
    }

    #[test]
    fn duplicate_guard_does_not_satisfy_quorum() {
        let mut events = legal_events();
        // Guard 1 accepted twice instead of two distinct guards.
        events[9] = (
            45,
            3,
            EventKind::AlertReceived {
                guard: 1,
                suspect: 7,
                accepted: true,
            },
        );
        let (violations, _) = check(&log_of(&events), &cfg(Immunity::Strict));
        let kinds: Vec<Invariant> = violations.iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&Invariant::AlertQuorum), "{violations:?}");
    }

    #[test]
    fn drop_charge_needs_matching_expiry() {
        let mut events = legal_events();
        events.remove(2); // the WatchBufferExpired backing the drop charges
        let (violations, _) = check(&log_of(&events), &cfg(Immunity::Strict));
        assert!(
            violations
                .iter()
                .all(|v| v.invariant == Invariant::MalcProvenance),
            "{violations:?}"
        );
        assert_eq!(violations.len(), 2, "one per orphaned drop charge");
    }

    #[test]
    fn wrong_weight_is_flagged() {
        let events = vec![(
            5,
            1,
            EventKind::MalcIncrement {
                suspect: 7,
                delta: 3,
                malc: 3,
                reason: MalcReason::Fabrication,
            },
        )];
        let (violations, _) = check(&log_of(&events), &cfg(Immunity::Off));
        assert_eq!(violations[0].invariant, Invariant::MalcProvenance);
    }

    #[test]
    fn watch_bound_is_enforced() {
        let over = Config::default().watch_capacity as u32 + 1;
        let events = vec![
            (5, 1, EventKind::WatchBufferExpired { expired: over }),
            (6, 1, EventKind::WatchBufferExpired { expired: 0 }),
        ];
        let (violations, _) = check(&log_of(&events), &cfg(Immunity::Off));
        assert_eq!(violations.len(), 2);
        assert!(violations
            .iter()
            .all(|v| v.invariant == Invariant::WatchBounded));
    }

    #[test]
    fn isolation_is_absorbing() {
        let mut events = legal_events();
        events.push((50, 3, EventKind::NeighborAdded { peer: 7 }));
        events.push((
            55,
            3,
            EventKind::AlertReceived {
                guard: 4,
                suspect: 7,
                accepted: true,
            },
        ));
        events.push((
            60,
            3,
            EventKind::Isolated {
                suspect: 7,
                by_alerts: true,
            },
        ));
        let (violations, _) = check(&log_of(&events), &cfg(Immunity::Strict));
        let kinds: Vec<Invariant> = violations.iter().map(|v| v.invariant).collect();
        assert_eq!(
            kinds,
            vec![
                Invariant::IsolationAbsorbing, // re-added neighbor
                Invariant::IsolationAbsorbing, // alert accepted post-isolation
                Invariant::IsolationAbsorbing, // isolated twice
            ],
            "{violations:?}"
        );
    }

    #[test]
    fn honest_immunity_scales_with_strictness() {
        // Node 9 is honest (only 7 is malicious); it gets locally
        // isolated after a legitimate-looking crossing.
        let events = vec![
            (
                10,
                1,
                EventKind::MalcIncrement {
                    suspect: 9,
                    delta: 2,
                    malc: 6,
                    reason: MalcReason::Fabrication,
                },
            ),
            (
                10,
                1,
                EventKind::Isolated {
                    suspect: 9,
                    by_alerts: false,
                },
            ),
        ];
        let log = log_of(&events);
        let (strict, stats) = check(&log, &cfg(Immunity::Strict));
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].invariant, Invariant::HonestImmunity);
        assert_eq!(stats.honest_local_accusations, 1);
        let (network, _) = check(&log, &cfg(Immunity::NetworkWide));
        assert!(
            network.is_empty(),
            "local accusations tolerated: {network:?}"
        );
        let (off, _) = check(&log, &cfg(Immunity::Off));
        assert!(off.is_empty());
    }

    #[test]
    fn honest_network_isolation_breaks_networkwide_immunity() {
        let events = vec![
            (
                10,
                3,
                EventKind::AlertReceived {
                    guard: 1,
                    suspect: 9,
                    accepted: true,
                },
            ),
            (
                11,
                3,
                EventKind::AlertReceived {
                    guard: 2,
                    suspect: 9,
                    accepted: true,
                },
            ),
            (
                11,
                3,
                EventKind::Isolated {
                    suspect: 9,
                    by_alerts: true,
                },
            ),
        ];
        let (violations, _) = check(&log_of(&events), &cfg(Immunity::NetworkWide));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].invariant, Invariant::HonestImmunity);
    }

    #[test]
    fn truncated_log_short_circuits() {
        let mut log = EventLog::with_capacity(4);
        for i in 0..10 {
            log.record(Event {
                time_us: i,
                node: 0,
                kind: EventKind::HelloSent,
            });
        }
        let (violations, _) = check(&log, &cfg(Immunity::Strict));
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::LogTruncated);
    }
}
