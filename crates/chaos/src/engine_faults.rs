//! Engine-level fault profile: chaos for the *runner*, not the protocol.
//!
//! [`EngineFaultPlan`] implements the supervisor's
//! [`liteworp_runner::supervisor::JobFaultHook`] seam, deterministically
//! deciding per `(job, attempt)` whether the attempt fails before the
//! simulation body runs — transient I/O errors, panics, or
//! invariant-violation verdicts, each with its own probability.
//!
//! Determinism layout mirrors [`crate::inject::Injector`]: every decision
//! is re-derived from scratch as a pure function of
//! `(plan seed, job derived_seed, attempt)` — no shared mutable stream —
//! so verdicts are identical at any thread count and on any scheduling.
//! Faults are *transient* by construction: a job draws how many of its
//! leading attempts fail (`1..=max_faulty_attempts`), so a supervisor
//! retry budget of at least `max_faulty_attempts` always recovers every
//! job, and the sweep's results digest equals the fault-free sweep's.
//! That equality is the deterministic-retry proof the CI asserts.

use liteworp_runner::rng::{derive_seed, Pcg32, Rng};
use liteworp_runner::supervisor::{JobFailure, JobFaultHook};
use liteworp_runner::JobSpec;

/// Salt separating engine-fault decisions from every other consumer of a
/// job's derived seed.
const ENGINE_FAULT_SALT: u64 = 0x454e_4746_4c54_2101; // "ENGFLT!"

/// Deterministic, per-attempt engine fault injection policy.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineFaultPlan {
    /// Seed decorrelating this plan from the simulation streams.
    pub seed: u64,
    /// Probability a job is struck by transient I/O failures.
    pub io: f64,
    /// Probability a job is struck by transient panics.
    pub panic: f64,
    /// Probability a job is struck by transient invariant-violation
    /// verdicts.
    pub invariant: f64,
    /// Upper bound on how many leading attempts of a struck job fail
    /// (the actual count is drawn uniformly from `1..=this`). A
    /// supervisor allowing at least this many retries recovers every
    /// struck job.
    pub max_faulty_attempts: u32,
}

impl EngineFaultPlan {
    /// A quiet plan: nothing fails.
    pub fn none() -> EngineFaultPlan {
        EngineFaultPlan {
            seed: 0,
            io: 0.0,
            panic: 0.0,
            invariant: 0.0,
            max_faulty_attempts: 1,
        }
    }

    /// The standard transient profile used by the CI smoke and the
    /// experiment binaries' `--engine-faults <p>`: strikes a fraction `p`
    /// of jobs with I/O faults on their first 1–2 attempts.
    pub fn transient(seed: u64, p: f64) -> EngineFaultPlan {
        EngineFaultPlan {
            seed,
            io: p,
            panic: 0.0,
            invariant: 0.0,
            max_faulty_attempts: 2,
        }
    }

    /// True when no fault class has a positive probability.
    pub fn is_quiet(&self) -> bool {
        self.io <= 0.0 && self.panic <= 0.0 && self.invariant <= 0.0
    }

    /// The per-job verdict, re-derived from scratch: which failure (if
    /// any) strikes this job, and how many leading attempts it poisons.
    fn verdict(&self, job: &JobSpec) -> Option<(JobFailure, u32)> {
        let mut rng = Pcg32::seed_from_u64(derive_seed(
            self.seed ^ ENGINE_FAULT_SALT,
            job.derived_seed(),
        ));
        // One draw per class, always, so enabling one class never
        // perturbs another's decisions (same discipline as the Injector).
        let io_hit = rng.gen_f64() < self.io;
        let panic_hit = rng.gen_f64() < self.panic;
        let invariant_hit = rng.gen_f64() < self.invariant;
        let faulty = rng.gen_range(1..=self.max_faulty_attempts.max(1));
        let failure = if io_hit {
            JobFailure::Io(format!(
                "injected transient io fault (plan seed {})",
                self.seed
            ))
        } else if panic_hit {
            JobFailure::Panic(format!(
                "injected transient panic (plan seed {})",
                self.seed
            ))
        } else if invariant_hit {
            JobFailure::InvariantViolation(format!(
                "injected invariant verdict (plan seed {})",
                self.seed
            ))
        } else {
            return None;
        };
        Some((failure, faulty))
    }
}

impl JobFaultHook for EngineFaultPlan {
    fn inject(&self, job: &JobSpec, attempt: u32) -> Option<JobFailure> {
        if self.is_quiet() {
            return None;
        }
        let (failure, faulty) = self.verdict(job)?;
        (attempt < faulty).then_some(failure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seed: u64) -> JobSpec {
        JobSpec {
            label: format!("cell seed={seed}"),
            scenario: "engine-fault-test".into(),
            seed,
        }
    }

    #[test]
    fn quiet_plan_never_injects() {
        let plan = EngineFaultPlan::none();
        for seed in 0..50 {
            for attempt in 0..3 {
                assert_eq!(plan.inject(&job(seed), attempt), None);
            }
        }
    }

    #[test]
    fn verdicts_are_deterministic_and_scheduling_independent() {
        let plan = EngineFaultPlan::transient(7, 0.5);
        for seed in 0..50 {
            let j = job(seed);
            // Re-querying any (job, attempt) — in any order — gives the
            // same answer: no hidden stream state.
            let first: Vec<_> = (0..4).map(|a| plan.inject(&j, a)).collect();
            let again: Vec<_> = (0..4).rev().map(|a| plan.inject(&j, 3 - a)).collect();
            assert_eq!(first, again);
        }
    }

    #[test]
    fn faults_are_transient_within_the_attempt_bound() {
        let plan = EngineFaultPlan::transient(3, 1.0);
        let mut struck = 0;
        for seed in 0..40 {
            let j = job(seed);
            if plan.inject(&j, 0).is_some() {
                struck += 1;
                assert_eq!(
                    plan.inject(&j, plan.max_faulty_attempts),
                    None,
                    "attempt {} must succeed",
                    plan.max_faulty_attempts
                );
            }
        }
        assert_eq!(struck, 40, "p=1.0 strikes every job");
    }

    #[test]
    fn strike_rate_tracks_probability() {
        let plan = EngineFaultPlan::transient(11, 0.3);
        let struck = (0..400)
            .filter(|&s| plan.inject(&job(s), 0).is_some())
            .count();
        assert!((60..180).contains(&struck), "~30% of 400, got {struck}");
    }

    #[test]
    fn classes_do_not_perturb_each_other() {
        // Adding a panic probability must not change which jobs the io
        // class strikes (one draw per class, fixed order).
        let io_only = EngineFaultPlan {
            seed: 5,
            io: 0.4,
            panic: 0.0,
            invariant: 0.0,
            max_faulty_attempts: 2,
        };
        let both = EngineFaultPlan {
            panic: 0.9,
            ..io_only.clone()
        };
        for seed in 0..100 {
            let j = job(seed);
            let io_struck = matches!(io_only.inject(&j, 0), Some(JobFailure::Io(_)));
            let both_io_struck = matches!(both.inject(&j, 0), Some(JobFailure::Io(_)));
            assert_eq!(io_struck, both_io_struck, "seed {seed}");
        }
    }
}
