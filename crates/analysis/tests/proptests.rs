//! Property-based tests of the analytical model's numerical invariants.

use liteworp_analysis::detection::{CollisionModel, DetectionModel};
use liteworp_analysis::false_alarm::FalseAlarmModel;
use liteworp_analysis::geometry::GuardGeometry;
use liteworp_analysis::special::{binomial_pmf, binomial_tail, regularized_incomplete_beta};
use proptest::prelude::*;

proptest! {
    // ------------------------------------------------------------------
    // Special functions.
    // ------------------------------------------------------------------
    #[test]
    fn binomial_tail_is_a_probability(n in 1u64..200, k in 0u64..220, p in 0.0f64..=1.0) {
        let t = binomial_tail(n, k, p);
        prop_assert!((0.0..=1.0).contains(&t), "tail {t}");
    }

    #[test]
    fn binomial_tail_monotone_in_k(n in 1u64..100, k in 1u64..100, p in 0.01f64..0.99) {
        prop_assume!(k <= n);
        prop_assert!(binomial_tail(n, k, p) <= binomial_tail(n, k - 1, p) + 1e-12);
    }

    #[test]
    fn binomial_tail_monotone_in_p(n in 1u64..100, k in 0u64..100, p in 0.01f64..0.98) {
        prop_assume!(k <= n);
        let lo = binomial_tail(n, k, p);
        let hi = binomial_tail(n, k, p + 0.01);
        prop_assert!(hi >= lo - 1e-12, "tail must grow with p: {lo} -> {hi}");
    }

    #[test]
    fn binomial_pmf_sums_to_tail(n in 1u64..60, k in 0u64..60, p in 0.01f64..0.99) {
        prop_assume!(k <= n);
        let direct: f64 = (k..=n).map(|i| binomial_pmf(n, i, p)).sum();
        let tail = binomial_tail(n, k, p);
        prop_assert!((direct - tail).abs() < 1e-9, "{direct} vs {tail}");
    }

    #[test]
    fn incomplete_beta_monotone_in_x(a in 0.5f64..20.0, b in 0.5f64..20.0, x in 0.01f64..0.98) {
        let lo = regularized_incomplete_beta(a, b, x);
        let hi = regularized_incomplete_beta(a, b, x + 0.01);
        prop_assert!(hi >= lo - 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo));
    }

    #[test]
    fn incomplete_beta_reflection(a in 0.5f64..20.0, b in 0.5f64..20.0, x in 0.0f64..=1.0) {
        let lhs = regularized_incomplete_beta(a, b, x);
        let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    // ------------------------------------------------------------------
    // Geometry.
    // ------------------------------------------------------------------
    #[test]
    fn lens_area_bounds(r in 1.0f64..100.0, frac in 0.0f64..=1.0) {
        let geo = GuardGeometry::new(r);
        let x = frac * r;
        let area = geo.exact_lens_area(x);
        prop_assert!(area >= 0.0);
        prop_assert!(area <= std::f64::consts::PI * r * r + 1e-9);
        // The paper's formula subtracts twice the chord term, so it is
        // never larger than the exact lens.
        prop_assert!(geo.paper_area(x) <= area + 1e-9);
    }

    #[test]
    fn density_round_trips(r in 1.0f64..100.0, n_b in 0.1f64..50.0) {
        let geo = GuardGeometry::new(r);
        let d = geo.density_from_neighbors(n_b);
        prop_assert!((geo.neighbors_from_density(d) - n_b).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Detection / false alarm models.
    // ------------------------------------------------------------------
    #[test]
    fn detection_probability_is_a_probability(
        window in 1u64..20,
        k in 1u64..20,
        gamma in 1u64..10,
        p_c in 0.0f64..=1.0,
        n_b in 0.0f64..80.0,
    ) {
        let m = DetectionModel {
            window,
            detections_needed: k,
            confidence_index: gamma,
            collisions: CollisionModel::Constant(p_c),
        };
        let p = m.detection_probability(n_b);
        prop_assert!((0.0..=1.0).contains(&p), "P = {p}");
    }

    #[test]
    fn detection_monotone_decreasing_in_gamma(
        window in 2u64..15,
        k in 1u64..10,
        p_c in 0.01f64..0.5,
        n_b in 6.0f64..40.0,
    ) {
        prop_assume!(k <= window);
        let mut prev = f64::INFINITY;
        for gamma in 1..=8u64 {
            let m = DetectionModel {
                window,
                detections_needed: k,
                confidence_index: gamma,
                collisions: CollisionModel::Constant(p_c),
            };
            let p = m.detection_probability(n_b);
            prop_assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn false_alarm_never_exceeds_detection_at_sane_collision_rates(
        window in 2u64..15,
        k in 1u64..10,
        gamma in 1u64..6,
        p_c in 0.01f64..0.4,
        n_b in 6.0f64..40.0,
    ) {
        prop_assume!(k <= window);
        let m = DetectionModel {
            window,
            detections_needed: k,
            confidence_index: gamma,
            collisions: CollisionModel::Constant(p_c),
        };
        let fa = FalseAlarmModel::new(m);
        // A fabrication is seen with prob (1 - P_C) >= the false-alarm
        // event prob P_C (1 - P_C)^2 whenever P_C < 1/2, so detection
        // dominates false alarm pointwise.
        prop_assert!(m.detection_probability(n_b) >= fa.false_isolation_probability(n_b) - 1e-12);
    }

    #[test]
    fn linear_collision_model_clamps(base in 0.0f64..=1.0, base_n in 0.1f64..10.0, n_b in 0.0f64..1000.0) {
        let c = CollisionModel::linear(base, base_n);
        let p = c.collision_probability(n_b);
        prop_assert!((0.0..=1.0).contains(&p));
    }
}
