//! Property-based tests of the analytical model's numerical invariants,
//! driven by the in-repo deterministic PCG32 generator.

use liteworp_analysis::detection::{CollisionModel, DetectionModel};
use liteworp_analysis::false_alarm::FalseAlarmModel;
use liteworp_analysis::geometry::GuardGeometry;
use liteworp_analysis::special::{binomial_pmf, binomial_tail, regularized_incomplete_beta};
use liteworp_runner::rng::{Pcg32, Rng};

const CASES: u64 = 256;

// ----------------------------------------------------------------------
// Special functions.
// ----------------------------------------------------------------------

#[test]
fn binomial_tail_is_a_probability() {
    let mut rng = Pcg32::seed_from_u64(0x616e_6101);
    for _ in 0..CASES {
        let n = rng.gen_range(1u64..200);
        let k = rng.gen_range(0u64..220);
        let p = rng.gen_f64();
        let t = binomial_tail(n, k, p);
        assert!((0.0..=1.0).contains(&t), "tail {t}");
    }
}

#[test]
fn binomial_tail_monotone_in_k() {
    let mut rng = Pcg32::seed_from_u64(0x616e_6102);
    let mut checked = 0;
    while checked < CASES {
        let n = rng.gen_range(1u64..100);
        let k = rng.gen_range(1u64..100);
        if k > n {
            continue;
        }
        checked += 1;
        let p = rng.gen_range(0.01f64..0.99);
        assert!(binomial_tail(n, k, p) <= binomial_tail(n, k - 1, p) + 1e-12);
    }
}

#[test]
fn binomial_tail_monotone_in_p() {
    let mut rng = Pcg32::seed_from_u64(0x616e_6103);
    let mut checked = 0;
    while checked < CASES {
        let n = rng.gen_range(1u64..100);
        let k = rng.gen_range(0u64..100);
        if k > n {
            continue;
        }
        checked += 1;
        let p = rng.gen_range(0.01f64..0.98);
        let lo = binomial_tail(n, k, p);
        let hi = binomial_tail(n, k, p + 0.01);
        assert!(hi >= lo - 1e-12, "tail must grow with p: {lo} -> {hi}");
    }
}

#[test]
fn binomial_pmf_sums_to_tail() {
    let mut rng = Pcg32::seed_from_u64(0x616e_6104);
    let mut checked = 0;
    while checked < CASES {
        let n = rng.gen_range(1u64..60);
        let k = rng.gen_range(0u64..60);
        if k > n {
            continue;
        }
        checked += 1;
        let p = rng.gen_range(0.01f64..0.99);
        let direct: f64 = (k..=n).map(|i| binomial_pmf(n, i, p)).sum();
        let tail = binomial_tail(n, k, p);
        assert!((direct - tail).abs() < 1e-9, "{direct} vs {tail}");
    }
}

#[test]
fn incomplete_beta_monotone_in_x() {
    let mut rng = Pcg32::seed_from_u64(0x616e_6105);
    for _ in 0..CASES {
        let a = rng.gen_range(0.5f64..20.0);
        let b = rng.gen_range(0.5f64..20.0);
        let x = rng.gen_range(0.01f64..0.98);
        let lo = regularized_incomplete_beta(a, b, x);
        let hi = regularized_incomplete_beta(a, b, x + 0.01);
        assert!(hi >= lo - 1e-12);
        assert!((0.0..=1.0).contains(&lo));
    }
}

#[test]
fn incomplete_beta_reflection() {
    let mut rng = Pcg32::seed_from_u64(0x616e_6106);
    for _ in 0..CASES {
        let a = rng.gen_range(0.5f64..20.0);
        let b = rng.gen_range(0.5f64..20.0);
        let x = rng.gen_f64();
        let lhs = regularized_incomplete_beta(a, b, x);
        let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }
}

// ----------------------------------------------------------------------
// Geometry.
// ----------------------------------------------------------------------

#[test]
fn lens_area_bounds() {
    let mut rng = Pcg32::seed_from_u64(0x616e_6107);
    for _ in 0..CASES {
        let r = rng.gen_range(1.0f64..100.0);
        let frac = rng.gen_f64();
        let geo = GuardGeometry::new(r);
        let x = frac * r;
        let area = geo.exact_lens_area(x);
        assert!(area >= 0.0);
        assert!(area <= std::f64::consts::PI * r * r + 1e-9);
        // The paper's formula subtracts twice the chord term, so it is
        // never larger than the exact lens.
        assert!(geo.paper_area(x) <= area + 1e-9);
    }
}

#[test]
fn density_round_trips() {
    let mut rng = Pcg32::seed_from_u64(0x616e_6108);
    for _ in 0..CASES {
        let r = rng.gen_range(1.0f64..100.0);
        let n_b = rng.gen_range(0.1f64..50.0);
        let geo = GuardGeometry::new(r);
        let d = geo.density_from_neighbors(n_b);
        assert!((geo.neighbors_from_density(d) - n_b).abs() < 1e-9);
    }
}

// ----------------------------------------------------------------------
// Detection / false alarm models.
// ----------------------------------------------------------------------

#[test]
fn detection_probability_is_a_probability() {
    let mut rng = Pcg32::seed_from_u64(0x616e_6109);
    for _ in 0..CASES {
        let m = DetectionModel {
            window: rng.gen_range(1u64..20),
            detections_needed: rng.gen_range(1u64..20),
            confidence_index: rng.gen_range(1u64..10),
            collisions: CollisionModel::Constant(rng.gen_f64()),
        };
        let n_b = rng.gen_range(0.0f64..80.0);
        let p = m.detection_probability(n_b);
        assert!((0.0..=1.0).contains(&p), "P = {p}");
    }
}

#[test]
fn detection_monotone_decreasing_in_gamma() {
    let mut rng = Pcg32::seed_from_u64(0x616e_610a);
    let mut checked = 0;
    while checked < 64 {
        let window = rng.gen_range(2u64..15);
        let k = rng.gen_range(1u64..10);
        if k > window {
            continue;
        }
        checked += 1;
        let p_c = rng.gen_range(0.01f64..0.5);
        let n_b = rng.gen_range(6.0f64..40.0);
        let mut prev = f64::INFINITY;
        for gamma in 1..=8u64 {
            let m = DetectionModel {
                window,
                detections_needed: k,
                confidence_index: gamma,
                collisions: CollisionModel::Constant(p_c),
            };
            let p = m.detection_probability(n_b);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }
}

#[test]
fn false_alarm_never_exceeds_detection_at_sane_collision_rates() {
    let mut rng = Pcg32::seed_from_u64(0x616e_610b);
    let mut checked = 0;
    while checked < CASES {
        let window = rng.gen_range(2u64..15);
        let k = rng.gen_range(1u64..10);
        if k > window {
            continue;
        }
        checked += 1;
        let m = DetectionModel {
            window,
            detections_needed: k,
            confidence_index: rng.gen_range(1u64..6),
            collisions: CollisionModel::Constant(rng.gen_range(0.01f64..0.4)),
        };
        let n_b = rng.gen_range(6.0f64..40.0);
        let fa = FalseAlarmModel::new(m);
        // A fabrication is seen with prob (1 - P_C) >= the false-alarm
        // event prob P_C (1 - P_C)^2 whenever P_C < 1/2, so detection
        // dominates false alarm pointwise.
        assert!(m.detection_probability(n_b) >= fa.false_isolation_probability(n_b) - 1e-12);
    }
}

#[test]
fn linear_collision_model_clamps() {
    let mut rng = Pcg32::seed_from_u64(0x616e_610c);
    for _ in 0..CASES {
        let base = rng.gen_f64();
        let base_n = rng.gen_range(0.1f64..10.0);
        let n_b = rng.gen_range(0.0f64..1000.0);
        let c = CollisionModel::linear(base, base_n);
        let p = c.collision_probability(n_b);
        assert!((0.0..=1.0).contains(&p));
    }
}
