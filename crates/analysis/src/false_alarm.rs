//! Probability of false alarm (Section 5.1, Figure 6(b)).
//!
//! A guard `G` falsely suspects an honest forwarder `D` of fabrication when:
//!
//! 1. `D` actually received the packet from `S` (so `D` forwards it),
//! 2. `G` missed the original `S → D` transmission (collision at `G`), and
//! 3. `G` *does* hear `D`'s forwarding transmission.
//!
//! With independent per-packet collision probability `P_C` this happens per
//! packet with probability `P_fa = P_C · (1 − P_C)²`. `D` is falsely accused
//! by one guard when at least `k` of the `T` packets in a window are falsely
//! suspected, and a false *isolation* needs at least γ guards to be fooled:
//!
//! ```text
//! P_FA(guard)  = Σ_{i=k}^{T} C(T, i) P_fa^i (1 − P_fa)^{T−i}
//! P_FA(isolate) = Σ_{j=γ}^{g} C(g, j) P_FA(guard)^j (1 − P_FA(guard))^{g−j}
//! ```
//!
//! The curve is non-monotonic in density: more neighbors mean more guards
//! (more chances to be fooled), but eventually collisions are so common that
//! a guard misses *both* transmissions and no false suspicion forms. The
//! worst case stays negligible (`≪ 1e-6`), which is the paper's point.

use crate::detection::{CollisionModel, DetectionModel};
use crate::special::binomial_tail;

/// Analytical false-alarm model of Section 5.1.
///
/// The structural parameters (`T`, `k`, γ, collision scaling) are shared
/// with [`DetectionModel`]; this type wraps one and reinterprets the window
/// as packets legitimately forwarded rather than fabricated.
///
/// # Example
///
/// ```
/// use liteworp_analysis::detection::{CollisionModel, DetectionModel};
/// use liteworp_analysis::false_alarm::FalseAlarmModel;
///
/// let m = FalseAlarmModel::new(DetectionModel {
///     window: 7,
///     detections_needed: 5,
///     confidence_index: 3,
///     collisions: CollisionModel::linear(0.05, 3.0),
/// });
/// // False isolation of an honest node is vanishingly rare at any density.
/// for n_b in [6.0, 12.0, 24.0, 48.0] {
///     assert!(m.false_isolation_probability(n_b) < 1e-6);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FalseAlarmModel {
    inner: DetectionModel,
}

impl FalseAlarmModel {
    /// Wraps a [`DetectionModel`] whose parameters define the window size,
    /// per-guard accusation threshold, confidence index and collision model.
    pub fn new(inner: DetectionModel) -> Self {
        Self { inner }
    }

    /// The wrapped detection model.
    pub fn detection_model(&self) -> &DetectionModel {
        &self.inner
    }

    /// Per-packet false-suspicion probability `P_fa = P_C (1 − P_C)²`.
    ///
    /// # Panics
    ///
    /// Panics if `p_c` is outside `[0, 1]`.
    pub fn per_packet(&self, p_c: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p_c), "p_c must be in [0, 1]");
        p_c * (1.0 - p_c) * (1.0 - p_c)
    }

    /// Probability a single guard falsely accuses an honest neighbor within
    /// one window, given collision probability `p_c`.
    pub fn guard_false_accusation(&self, p_c: f64) -> f64 {
        binomial_tail(
            self.inner.window,
            self.inner.detections_needed,
            self.per_packet(p_c),
        )
    }

    /// Probability an honest node is falsely *isolated* (γ guards fooled) at
    /// an average neighbor count `n_b` — the quantity plotted in Fig 6(b).
    pub fn false_isolation_probability(&self, n_b: f64) -> f64 {
        let g = self.inner.guards(n_b);
        let p_c = self.inner.collisions.collision_probability(n_b);
        self.false_isolation_probability_with(g, p_c)
    }

    /// False-isolation probability for explicit guard count and collision
    /// probability.
    pub fn false_isolation_probability_with(&self, guards: u64, p_c: f64) -> f64 {
        if self.inner.confidence_index > guards {
            return 0.0;
        }
        let per_guard = self.guard_false_accusation(p_c);
        binomial_tail(guards, self.inner.confidence_index, per_guard)
    }
}

/// Convenience: the Figure 6 parameterization (`T = 7`, `k = 5`, `γ = 3`,
/// `P_C = 0.05` at `N_B = 3`, scaling linearly).
pub fn figure6_model() -> FalseAlarmModel {
    FalseAlarmModel::new(DetectionModel {
        window: 7,
        detections_needed: 5,
        confidence_index: 3,
        collisions: CollisionModel::linear(0.05, 3.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_packet_is_zero_at_extremes() {
        let m = figure6_model();
        assert_eq!(m.per_packet(0.0), 0.0);
        assert_eq!(m.per_packet(1.0), 0.0);
    }

    #[test]
    fn per_packet_peaks_at_one_third() {
        // d/dp [p(1-p)^2] = 0 at p = 1/3.
        let m = figure6_model();
        let peak = m.per_packet(1.0 / 3.0);
        for &p in &[0.1, 0.2, 0.5, 0.8] {
            assert!(m.per_packet(p) <= peak + 1e-12);
        }
    }

    #[test]
    fn false_isolation_negligible_everywhere() {
        let m = figure6_model();
        let mut worst: f64 = 0.0;
        for i in 6..=60 {
            worst = worst.max(m.false_isolation_probability(i as f64));
        }
        assert!(worst < 1e-6, "worst-case false alarm {worst} too large");
        assert!(worst > 0.0, "false alarms possible in principle");
    }

    #[test]
    fn non_monotonic_in_density() {
        // Rises with guard count at first, falls when collisions saturate.
        let m = figure6_model();
        let low = m.false_isolation_probability(6.0);
        let mid = m.false_isolation_probability(20.0);
        let high = m.false_isolation_probability(58.0);
        assert!(mid > low, "should rise as guards multiply ({low} -> {mid})");
        assert!(
            high < mid,
            "should fall once collisions dominate ({mid} -> {high})"
        );
    }

    #[test]
    fn too_few_guards_means_no_false_isolation() {
        let m = figure6_model();
        assert_eq!(m.false_isolation_probability(3.0), 0.0);
    }

    #[test]
    fn false_alarm_far_below_detection() {
        // The protocol is only useful if detection vastly outpaces false alarm.
        let fa = figure6_model();
        let det = *fa.detection_model();
        for &n_b in &[10.0, 15.0, 20.0, 30.0] {
            let d = det.detection_probability(n_b);
            let f = fa.false_isolation_probability(n_b);
            assert!(d > 1e6 * f, "detection {d} vs false alarm {f} at N_B={n_b}");
        }
    }
}
