//! Memory, computation and bandwidth cost model (Section 5.2).
//!
//! The paper argues LITEWORP is lightweight by sizing its three data
//! structures and its (rare) message exchanges:
//!
//! * **Neighbor list storage** — each node stores its own first-hop list and
//!   the first-hop list of each neighbor (i.e. second-hop knowledge), at
//!   5 bytes per entry (4-byte identity + 1-byte `MalC`):
//!   `NBLS = 5 · (π r² d)²` bytes.
//! * **Alert buffer** — γ entries of 4 bytes per suspected node.
//! * **Watch buffer** — sized from the monitoring load: a route reply
//!   traveling `h` hops is watched by the nodes inside a `2r × (h+1)r`
//!   bounding box, `N_REP = 2r²(h+1)·d` of them, so each node watches
//!   `(N_REP / N) · f` replies per unit time for route frequency `f`.
//!   Each watch entry is 20 bytes (immediate source, immediate destination,
//!   original source: 4 bytes each; sequence number: 8 bytes).
//! * **Bandwidth** — messages are exchanged only at neighbor discovery
//!   (3 one-hop broadcasts' worth per node) and on detection (one unicast
//!   alert per neighbor of the detected node).

use crate::geometry::GuardGeometry;

/// Bytes used to encode a node identity (paper: 4).
pub const NODE_ID_BYTES: usize = 4;
/// Bytes used for a `MalC` counter alongside each neighbor entry (paper: 1).
pub const MALC_BYTES: usize = 1;
/// Bytes per watch-buffer entry (paper: 20).
pub const WATCH_ENTRY_BYTES: usize = 20;

/// Inputs to the Section 5.2 cost model.
///
/// # Example
///
/// The worked example from the paper — `N = 100`, `h = 4`, one route
/// established every 4 time units — yields ~17 monitoring nodes per route
/// reply and a watch load of about 4 replies per 100 time units:
///
/// ```
/// use liteworp_analysis::cost::CostModel;
///
/// let m = CostModel {
///     range: 30.0,
///     density: 17.0 / (2.0 * 30.0 * 30.0 * 5.0), // chosen so N_REP = 17
///     total_nodes: 100,
///     avg_route_hops: 4.0,
///     routes_per_time_unit: 0.25,
///     confidence_index: 3,
/// };
/// assert!((m.monitoring_nodes_per_reply() - 17.0).abs() < 1e-9);
/// let per_100 = 100.0 * m.reply_watch_load_per_node();
/// assert!((per_100 - 4.25).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Communication range `r` in meters.
    pub range: f64,
    /// Node density `d` in nodes per square meter.
    pub density: f64,
    /// Total number of nodes `N` in the network.
    pub total_nodes: usize,
    /// Average route length `h` in hops.
    pub avg_route_hops: f64,
    /// Route establishment frequency `f` (routes per time unit).
    pub routes_per_time_unit: f64,
    /// Detection confidence index γ (alert-buffer entries per suspect).
    pub confidence_index: usize,
}

impl CostModel {
    /// Average first-hop neighbor list length, `π r² d` entries.
    pub fn neighbor_list_entries(&self) -> f64 {
        GuardGeometry::new(self.range).neighbors_from_density(self.density)
    }

    /// Total neighbor-list storage in bytes: `5 · (π r² d)²`
    /// (own list plus each neighbor's list, 5 bytes per entry).
    pub fn neighbor_storage_bytes(&self) -> f64 {
        let n = self.neighbor_list_entries();
        (NODE_ID_BYTES + MALC_BYTES) as f64 * n * n
    }

    /// Alert-buffer bytes per suspected node: `4 · γ`.
    pub fn alert_buffer_bytes(&self) -> usize {
        NODE_ID_BYTES * self.confidence_index
    }

    /// `N_REP = 2 r² (h + 1) d`: nodes inside the bounding box of a route
    /// reply's path that may overhear (and hence watch) it.
    pub fn monitoring_nodes_per_reply(&self) -> f64 {
        2.0 * self.range * self.range * (self.avg_route_hops + 1.0) * self.density
    }

    /// Route replies each node watches per unit time:
    /// `(N_REP / N) · f`.
    pub fn reply_watch_load_per_node(&self) -> f64 {
        assert!(self.total_nodes > 0, "total_nodes must be positive");
        self.monitoring_nodes_per_reply() / self.total_nodes as f64 * self.routes_per_time_unit
    }

    /// Watch load when route *requests* are monitored too. The flood makes
    /// every node see each request once, adding `f` watches per unit time.
    pub fn request_and_reply_watch_load_per_node(&self) -> f64 {
        self.routes_per_time_unit + self.reply_watch_load_per_node()
    }

    /// Recommended watch-buffer capacity (entries) for a watch-entry
    /// lifetime of `delta` time units, with 100% headroom, at least 4.
    pub fn recommended_watch_entries(&self, delta: f64) -> usize {
        assert!(delta > 0.0, "watch timeout must be positive");
        let in_flight = self.request_and_reply_watch_load_per_node() * delta;
        (in_flight.ceil() as usize * 2).max(4)
    }

    /// Watch-buffer bytes for the recommended capacity.
    pub fn watch_buffer_bytes(&self, delta: f64) -> usize {
        self.recommended_watch_entries(delta) * WATCH_ENTRY_BYTES
    }

    /// Total steady-state memory per node in bytes (neighbor storage +
    /// watch buffer + one alert buffer).
    pub fn total_memory_bytes(&self, delta: f64) -> f64 {
        self.neighbor_storage_bytes()
            + self.watch_buffer_bytes(delta) as f64
            + self.alert_buffer_bytes() as f64
    }

    /// One-time neighbor-discovery messages per node: the HELLO broadcast,
    /// one authenticated reply per neighbor, and the neighbor-list
    /// announcement.
    pub fn discovery_messages_per_node(&self) -> f64 {
        2.0 + self.neighbor_list_entries()
    }

    /// Alert unicasts sent per detection event (one per neighbor of the
    /// detected node, from each alerting guard).
    pub fn alert_messages_per_detection(&self) -> f64 {
        self.neighbor_list_entries() * self.confidence_index as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> CostModel {
        CostModel {
            range: 30.0,
            density: 17.0 / (2.0 * 30.0 * 30.0 * 5.0),
            total_nodes: 100,
            avg_route_hops: 4.0,
            routes_per_time_unit: 0.25,
            confidence_index: 3,
        }
    }

    #[test]
    fn ten_neighbors_is_under_half_a_kilobyte() {
        // Paper: "for an average of 10 neighbors per node, NBLS is less
        // than half a kilobyte".
        let m = CostModel {
            density: GuardGeometry::new(30.0).density_from_neighbors(10.0),
            ..paper_example()
        };
        assert!((m.neighbor_list_entries() - 10.0).abs() < 1e-9);
        let bytes = m.neighbor_storage_bytes();
        assert!(bytes <= 512.0, "NBLS = {bytes} should be <= 0.5 KB");
        assert!((bytes - 500.0).abs() < 1e-6);
    }

    #[test]
    fn paper_watch_load_example() {
        let m = paper_example();
        assert!((m.monitoring_nodes_per_reply() - 17.0).abs() < 1e-9);
        // ~4 route replies per 100 time units.
        let per_100 = m.reply_watch_load_per_node() * 100.0;
        assert!((per_100 - 4.25).abs() < 0.01);
    }

    #[test]
    fn four_watch_entries_suffice_for_paper_example() {
        // Paper: "a watch buffer size of 4 entries is more than enough".
        let m = paper_example();
        assert_eq!(m.recommended_watch_entries(1.0), 4);
        assert_eq!(m.watch_buffer_bytes(1.0), 80);
    }

    #[test]
    fn alert_buffer_scales_with_gamma() {
        let m = paper_example();
        assert_eq!(m.alert_buffer_bytes(), 12);
    }

    #[test]
    fn total_memory_is_kilobyte_scale() {
        let m = CostModel {
            density: GuardGeometry::new(30.0).density_from_neighbors(10.0),
            ..paper_example()
        };
        let total = m.total_memory_bytes(1.0);
        assert!(
            total < 2048.0,
            "total per-node memory {total} B should be tiny"
        );
    }

    #[test]
    fn discovery_traffic_is_constant_per_node() {
        let m = paper_example();
        let msgs = m.discovery_messages_per_node();
        assert!(msgs < 2.0 + 20.0, "discovery messages bounded by degree");
    }

    #[test]
    #[should_panic(expected = "watch timeout must be positive")]
    fn rejects_zero_delta() {
        paper_example().recommended_watch_entries(0.0);
    }
}
