//! Numerical special functions used by the coverage analysis.
//!
//! The paper expresses the "at least γ of g guards alert" probability through
//! the regularized incomplete beta function. We implement:
//!
//! * [`ln_gamma`] — Lanczos approximation of `ln Γ(x)`,
//! * [`regularized_incomplete_beta`] — `I_x(a, b)` by the continued-fraction
//!   method (Numerical Recipes style),
//! * [`binomial_tail`] — `P[X ≥ k]` for `X ~ Binomial(n, p)`, computed
//!   directly with stable log-space terms.
//!
//! `binomial_tail(n, k, p)` and `I_p(k, n-k+1)` are the same quantity; the
//! test suite checks the two agree to ~1e-12, which validates both paths.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients); absolute error is
/// below `1e-13` over the domain used here.
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Example
///
/// ```
/// let lg = liteworp_analysis::special::ln_gamma(5.0);
/// assert!((lg - 24.0f64.ln()).abs() < 1e-12); // Γ(5) = 4! = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        #[allow(clippy::excessive_precision)]
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is zero).
///
/// # Example
///
/// ```
/// let l = liteworp_analysis::special::ln_choose(7, 5);
/// assert!((l.exp() - 21.0).abs() < 1e-9);
/// ```
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Computed by the Lentz continued-fraction algorithm with the standard
/// symmetry transformation for fast convergence; accurate to roughly `1e-13`.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
///
/// # Example
///
/// `I_x(1, 1)` is the identity on `[0, 1]`:
///
/// ```
/// let v = liteworp_analysis::special::regularized_incomplete_beta(1.0, 1.0, 0.42);
/// assert!((v - 0.42).abs() < 1e-12);
/// ```
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1-x)^b / (a B(a, b)).
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp()) * beta_cf(a, b, x) / a
    } else {
        1.0 - (ln_front.exp()) * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3.0e-16;
    const FPMIN: f64 = 1.0e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Upper binomial tail `P[X ≥ k]` for `X ~ Binomial(n, p)`.
///
/// The sum is taken over whichever tail is shorter and each term is built in
/// log space, so the result stays accurate even when individual terms are on
/// the order of `1e-300`.
///
/// Returns `1.0` when `k == 0` and `0.0` when `k > n`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// // Fair coin: P[X >= 2 of 3] = 4/8.
/// let p = liteworp_analysis::special::binomial_tail(3, 2, 0.5);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
pub fn binomial_tail(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    let upper_terms = n - k + 1;
    let lower_terms = k; // terms i = 0..k-1
    if upper_terms <= lower_terms {
        let mut acc = 0.0;
        for i in k..=n {
            acc += binomial_pmf(n, i, p);
        }
        acc.min(1.0)
    } else {
        let mut acc = 0.0;
        for i in 0..k {
            acc += binomial_pmf(n, i, p);
        }
        (1.0 - acc).clamp(0.0, 1.0)
    }
}

/// Binomial probability mass `P[X = k]`, computed in log space.
///
/// # Example
///
/// ```
/// let p = liteworp_analysis::special::binomial_pmf(7, 5, 0.5);
/// assert!((p - 21.0 / 128.0).abs() < 1e-12);
/// ```
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            close(ln_gamma(n as f64), fact.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2.
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn choose_small_values() {
        close(ln_choose(5, 2).exp(), 10.0, 1e-9);
        close(ln_choose(10, 5).exp(), 252.0, 1e-9);
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
        close(ln_choose(7, 0).exp(), 1.0, 1e-12);
        close(ln_choose(7, 7).exp(), 1.0, 1e-12);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            close(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a, b) = 1 - I_{1-x}(b, a).
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (7.0, 3.0, 0.6), (0.5, 0.5, 0.2)] {
            close(
                regularized_incomplete_beta(a, b, x),
                1.0 - regularized_incomplete_beta(b, a, 1.0 - x),
                1e-12,
            );
        }
    }

    #[test]
    fn binomial_tail_equals_incomplete_beta() {
        // P[X >= k] for Binomial(n, p) equals I_p(k, n - k + 1).
        for &(n, k, p) in &[
            (7u64, 5u64, 0.3),
            (15, 3, 0.9),
            (20, 10, 0.5),
            (50, 25, 0.42),
            (200, 150, 0.7),
        ] {
            let tail = binomial_tail(n, k, p);
            let beta = regularized_incomplete_beta(k as f64, (n - k + 1) as f64, p);
            close(tail, beta, 1e-11);
        }
    }

    #[test]
    fn binomial_tail_edges() {
        assert_eq!(binomial_tail(10, 0, 0.3), 1.0);
        assert_eq!(binomial_tail(10, 11, 0.3), 0.0);
        assert_eq!(binomial_tail(10, 5, 0.0), 0.0);
        assert_eq!(binomial_tail(10, 5, 1.0), 1.0);
        // All-successes corner.
        close(binomial_tail(4, 4, 0.5), 1.0 / 16.0, 1e-12);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(7u64, 0.3), (20, 0.05), (40, 0.95)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            close(total, 1.0, 1e-10);
        }
    }

    #[test]
    fn tiny_tails_stay_positive() {
        // Deep tail must not underflow to zero prematurely.
        let t = binomial_tail(100, 90, 0.1);
        assert!(t > 0.0);
        assert!(t < 1e-60);
    }
}
