//! Guard-region geometry (Section 5.1, Figure 5(a)).
//!
//! Two neighbor nodes `S` and `D` are separated by distance `x ∈ (0, r]`
//! where `r` is the communication range. A node can guard the link `S → D`
//! iff it lies within range of *both* endpoints, i.e. inside the lens-shaped
//! intersection of the two range discs.
//!
//! Under uniform node placement the link length has density `f(x) = 2x/r²`.
//!
//! ## Paper constants vs. exact geometry
//!
//! The paper states `Area(x) = 2r²·cos⁻¹(x/2r) − 2x·√(r² − x²/4)` which
//! evaluates to `≈ 0.36 r²` at `x = r` (their `g_min`), and reports
//! `E[Area] = 1.6 r²`, hence `g ≈ 0.51 · N_B` (Equation I). The exact lens
//! area is `2r²·cos⁻¹(x/2r) − x·√(r² − x²/4)` (half the second term), whose
//! expectation under `f` is `≈ 1.84 r²` (ratio `≈ 0.59·N_B`). We expose
//! **both**: the `GuardGeometry::paper_*` methods reproduce the published constants
//! (used by the figure harnesses so the reproduction matches the paper), and
//! the `GuardGeometry::exact_*` methods give the corrected geometry. The discrepancy
//! is recorded in `EXPERIMENTS.md`.

/// Geometry of the guard region for a given communication range.
///
/// # Example
///
/// ```
/// use liteworp_analysis::geometry::GuardGeometry;
///
/// let geo = GuardGeometry::new(30.0);
/// // Paper's Equation (I): expected guards from the neighbor count.
/// let g = GuardGeometry::paper_guards_from_neighbors(8.0);
/// assert!((g - 4.08).abs() < 1e-9);
/// assert!(geo.exact_lens_area(30.0) > geo.paper_area(30.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardGeometry {
    range: f64,
}

impl GuardGeometry {
    /// Ratio `g / N_B` published in the paper (Equation I).
    pub const PAPER_GUARD_RATIO: f64 = 0.51;

    /// Expected guard-region area as a multiple of `r²`, as published.
    pub const PAPER_EXPECTED_AREA_COEFF: f64 = 1.6;

    /// Minimum guard-region area as a multiple of `r²`, as published.
    pub const PAPER_MIN_AREA_COEFF: f64 = 0.36;

    /// Creates the geometry for communication range `r` (meters).
    ///
    /// # Panics
    ///
    /// Panics if `range` is not finite and positive.
    pub fn new(range: f64) -> Self {
        assert!(
            range.is_finite() && range > 0.0,
            "communication range must be finite and positive, got {range}"
        );
        Self { range }
    }

    /// The communication range `r` this geometry was built with.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The paper's `Area(x) = 2r²·cos⁻¹(x/2r) − 2x·√(r² − x²/4)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `[0, r]`.
    pub fn paper_area(&self, x: f64) -> f64 {
        self.assert_link_length(x);
        let r = self.range;
        2.0 * r * r * (x / (2.0 * r)).acos() - 2.0 * x * (r * r - x * x / 4.0).sqrt()
    }

    /// Exact lens area of two discs of radius `r` whose centers are `x` apart:
    /// `2r²·cos⁻¹(x/2r) − x·√(r² − x²/4)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `[0, 2r]` (discs stop intersecting at `2r`).
    pub fn exact_lens_area(&self, x: f64) -> f64 {
        let r = self.range;
        assert!(
            (0.0..=2.0 * r).contains(&x),
            "center distance {x} outside [0, {}]",
            2.0 * r
        );
        2.0 * r * r * (x / (2.0 * r)).acos() - x * (r * r - x * x / 4.0).sqrt()
    }

    /// Expected guard-region area `E[Area(x)]` under `f(x) = 2x/r²`, using
    /// the **exact** lens area. Evaluated by Simpson integration; the result
    /// is `≈ 1.8426 r²`.
    pub fn exact_expected_area(&self) -> f64 {
        self.expected_area_of(|x| self.exact_lens_area(x))
    }

    /// Expected guard-region area using the **paper's** `Area(x)` formula,
    /// `≈ 1.2287 r²` (the paper reports `1.6 r²`; see module docs).
    pub fn paper_formula_expected_area(&self) -> f64 {
        self.expected_area_of(|x| self.paper_area(x))
    }

    /// Expected number of guards for a link given node density `d`
    /// (nodes / m²), exact geometry.
    pub fn exact_expected_guards(&self, density: f64) -> f64 {
        assert!(density >= 0.0, "density must be non-negative");
        self.exact_expected_area() * density
    }

    /// Average neighbor count `N_B = π r² d` for density `d`.
    pub fn neighbors_from_density(&self, density: f64) -> f64 {
        assert!(density >= 0.0, "density must be non-negative");
        std::f64::consts::PI * self.range * self.range * density
    }

    /// Node density that yields an average of `n_b` neighbors.
    pub fn density_from_neighbors(&self, n_b: f64) -> f64 {
        assert!(n_b >= 0.0, "neighbor count must be non-negative");
        n_b / (std::f64::consts::PI * self.range * self.range)
    }

    /// The paper's Equation (I): expected guards `g = 0.51 · N_B`.
    pub fn paper_guards_from_neighbors(n_b: f64) -> f64 {
        assert!(n_b >= 0.0, "neighbor count must be non-negative");
        Self::PAPER_GUARD_RATIO * n_b
    }

    /// Exact counterpart of Equation (I): `g = (E[Area]/πr²) · N_B ≈ 0.59 N_B`.
    pub fn exact_guards_from_neighbors(&self, n_b: f64) -> f64 {
        assert!(n_b >= 0.0, "neighbor count must be non-negative");
        let ratio = self.exact_expected_area() / (std::f64::consts::PI * self.range * self.range);
        ratio * n_b
    }

    /// Minimum guard-region area (`x = r`), exact geometry: `≈ 1.2284 r²`.
    pub fn exact_min_area(&self) -> f64 {
        self.exact_lens_area(self.range)
    }

    /// Minimum guard-region area per the paper's formula: `≈ 0.3623 r²`.
    pub fn paper_min_area(&self) -> f64 {
        self.paper_area(self.range)
    }

    fn expected_area_of<F: Fn(f64) -> f64>(&self, area: F) -> f64 {
        // Simpson's rule over x in [0, r] with the pdf f(x) = 2x/r^2.
        const STEPS: usize = 2_000; // even
        let r = self.range;
        let h = r / STEPS as f64;
        let f = |x: f64| area(x) * 2.0 * x / (r * r);
        let mut acc = f(0.0) + f(r);
        for i in 1..STEPS {
            let x = i as f64 * h;
            acc += if i % 2 == 1 { 4.0 } else { 2.0 } * f(x);
        }
        acc * h / 3.0
    }

    fn assert_link_length(&self, x: f64) {
        assert!(
            (0.0..=self.range).contains(&x),
            "link length {x} outside [0, {}]",
            self.range
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: f64 = 30.0;

    #[test]
    fn paper_min_area_matches_published_constant() {
        let geo = GuardGeometry::new(R);
        let coeff = geo.paper_min_area() / (R * R);
        assert!(
            (coeff - GuardGeometry::PAPER_MIN_AREA_COEFF).abs() < 0.01,
            "paper g_min coefficient: got {coeff}"
        );
    }

    #[test]
    fn exact_lens_area_full_overlap_is_disc() {
        let geo = GuardGeometry::new(R);
        let full = geo.exact_lens_area(0.0);
        assert!((full - std::f64::consts::PI * R * R).abs() < 1e-6);
    }

    #[test]
    fn exact_lens_area_vanishes_at_two_r() {
        let geo = GuardGeometry::new(R);
        assert!(geo.exact_lens_area(2.0 * R).abs() < 1e-6);
    }

    #[test]
    fn exact_lens_area_monotone_decreasing() {
        let geo = GuardGeometry::new(R);
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let x = R * i as f64 / 100.0;
            let a = geo.exact_lens_area(x);
            assert!(a < prev, "lens area must strictly decrease with x");
            prev = a;
        }
    }

    #[test]
    fn exact_expected_area_coefficient() {
        let geo = GuardGeometry::new(R);
        let coeff = geo.exact_expected_area() / (R * R);
        assert!(
            (coeff - 1.8426).abs() < 1e-3,
            "exact expected-area coefficient: got {coeff}"
        );
    }

    #[test]
    fn paper_formula_expected_area_coefficient() {
        let geo = GuardGeometry::new(R);
        let coeff = geo.paper_formula_expected_area() / (R * R);
        assert!(
            (coeff - 1.2287).abs() < 1e-3,
            "paper-formula expected-area coefficient: got {coeff}"
        );
    }

    #[test]
    fn equation_i_round_trip() {
        // g = 0.51 N_B for the published ratio.
        assert!((GuardGeometry::paper_guards_from_neighbors(15.0) - 7.65).abs() < 1e-9);
    }

    #[test]
    fn density_neighbor_round_trip() {
        let geo = GuardGeometry::new(R);
        let d = geo.density_from_neighbors(8.0);
        assert!((geo.neighbors_from_density(d) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn exact_guard_ratio_is_larger_than_papers() {
        let geo = GuardGeometry::new(R);
        let exact_ratio = geo.exact_guards_from_neighbors(1.0);
        assert!(exact_ratio > GuardGeometry::PAPER_GUARD_RATIO);
        assert!((exact_ratio - 0.5865).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn paper_area_rejects_long_links() {
        GuardGeometry::new(R).paper_area(R + 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn rejects_zero_range() {
        GuardGeometry::new(0.0);
    }
}
