//! Closed-form coverage and cost analysis of LITEWORP (Section 5 of the paper).
//!
//! This crate is a dependency-free implementation of the analytical model in
//! *LITEWORP: A Lightweight Countermeasure for the Wormhole Attack in Multihop
//! Wireless Networks* (Khalil, Bagchi, Shroff — DSN 2005), Section 5:
//!
//! * [`geometry`] — the guard-region geometry of Figure 5(a): the area from
//!   which a node can guard the link between two neighbors, its minimum and
//!   expected value, and the paper's engineering approximation
//!   `g ≈ 0.51 · N_B` (Equation I).
//! * [`special`] — the numerical special functions the model needs
//!   (log-gamma, regularized incomplete beta, binomial tails), implemented
//!   in-repo because no special-function crate is used.
//! * [`detection`] — probability of wormhole detection as a function of the
//!   number of neighbors and the detection confidence index γ (Figure 6(a)
//!   and the analytical curve of Figure 10).
//! * [`false_alarm`] — probability of false alarm (Figure 6(b)).
//! * [`cost`] — memory / bandwidth cost model (Section 5.2).
//!
//! # Example
//!
//! Reproduce one point of Figure 6(a):
//!
//! ```
//! use liteworp_analysis::detection::{DetectionModel, CollisionModel};
//!
//! let model = DetectionModel {
//!     window: 7,              // T: fabrication opportunities in the window
//!     detections_needed: 5,   // k: detections for MalC to cross C_t
//!     confidence_index: 3,    // γ: alerts needed to isolate
//!     collisions: CollisionModel::linear(0.05, 3.0),
//! };
//! let p = model.detection_probability(15.0);
//! assert!(p > 0.9, "detection should be near-certain at N_B = 15, got {p}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod detection;
pub mod false_alarm;
pub mod geometry;
pub mod special;

pub use detection::{CollisionModel, DetectionModel};
pub use false_alarm::FalseAlarmModel;
pub use geometry::GuardGeometry;
