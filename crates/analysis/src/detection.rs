//! Probability of wormhole detection (Section 5.1, Figure 6(a) and the
//! analytical curve of Figure 10).
//!
//! The model: a malicious receiver fabricates `T` control packets within a
//! time window. A guard misses each fabrication independently with the
//! collision probability `P_C`, so it observes a given fabrication with
//! probability `1 − P_C`. A guard raises an alert once it has seen at least
//! `k` fabrications (enough for `MalC` to cross the threshold `C_t`):
//!
//! ```text
//! P_alert = Σ_{i=k}^{T} C(T, i) (1 − P_C)^i P_C^{T−i}
//! ```
//!
//! The wormhole is detected (the node isolated) when at least γ of the `g`
//! guards alert:
//!
//! ```text
//! P_detect = Σ_{j=γ}^{g} C(g, j) P_alert^j (1 − P_alert)^{g−j}
//! ```
//!
//! which the paper writes as a regularized incomplete beta tail. The guard
//! count is derived from the neighbor count via Equation (I), `g = 0.51·N_B`,
//! and `P_C` grows linearly with the number of neighbors (`0.05` at
//! `N_B = 3` in Figure 6).

use crate::geometry::GuardGeometry;
use crate::special::binomial_tail;

/// How the per-packet collision probability scales with network density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CollisionModel {
    /// A constant collision probability regardless of density.
    Constant(f64),
    /// `P_C(N_B) = base · N_B / base_neighbors`, clamped to `[0, 1]` —
    /// the scaling used for Figure 6 (`0.05` at `N_B = 3`).
    Linear {
        /// Collision probability at the reference neighbor count.
        base: f64,
        /// Reference neighbor count at which `base` applies.
        base_neighbors: f64,
    },
}

impl CollisionModel {
    /// Convenience constructor for [`CollisionModel::Linear`].
    ///
    /// # Panics
    ///
    /// Panics if `base` is outside `[0, 1]` or `base_neighbors <= 0`.
    pub fn linear(base: f64, base_neighbors: f64) -> Self {
        assert!((0.0..=1.0).contains(&base), "base must be in [0, 1]");
        assert!(base_neighbors > 0.0, "base_neighbors must be positive");
        CollisionModel::Linear {
            base,
            base_neighbors,
        }
    }

    /// Collision probability at an average neighbor count `n_b`.
    pub fn collision_probability(&self, n_b: f64) -> f64 {
        match *self {
            CollisionModel::Constant(p) => p,
            CollisionModel::Linear {
                base,
                base_neighbors,
            } => (base * n_b / base_neighbors).clamp(0.0, 1.0),
        }
    }
}

/// Analytical detection model of Section 5.1.
///
/// # Example
///
/// The Figure 6(a) parameters (`T = 7`, `k = 5`, `γ = 3`) produce a curve
/// that rises with density and then collapses once collisions dominate:
///
/// ```
/// use liteworp_analysis::detection::{CollisionModel, DetectionModel};
///
/// let m = DetectionModel {
///     window: 7,
///     detections_needed: 5,
///     confidence_index: 3,
///     collisions: CollisionModel::linear(0.05, 3.0),
/// };
/// let mid = m.detection_probability(15.0);
/// let dense = m.detection_probability(55.0);
/// assert!(mid > 0.9 && dense < mid);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionModel {
    /// `T`: number of fabrication opportunities within the watch window.
    pub window: u64,
    /// `k`: detections a single guard needs before its `MalC` crosses `C_t`.
    pub detections_needed: u64,
    /// `γ`: detection confidence index — alerts needed for isolation.
    pub confidence_index: u64,
    /// Collision model supplying `P_C` as a function of density.
    pub collisions: CollisionModel,
}

impl DetectionModel {
    /// Probability that a *single* guard accumulates enough evidence to
    /// alert, given collision probability `p_c`.
    ///
    /// # Panics
    ///
    /// Panics if `p_c` is outside `[0, 1]`.
    pub fn alert_probability(&self, p_c: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p_c), "p_c must be in [0, 1]");
        binomial_tail(self.window, self.detections_needed, 1.0 - p_c)
    }

    /// Number of guards available at an average neighbor count `n_b`,
    /// by the paper's Equation (I) (rounded to the nearest whole guard).
    pub fn guards(&self, n_b: f64) -> u64 {
        GuardGeometry::paper_guards_from_neighbors(n_b).round() as u64
    }

    /// Probability of detecting (and isolating) the wormhole node at an
    /// average neighbor count `n_b` — the quantity plotted in Figure 6(a).
    pub fn detection_probability(&self, n_b: f64) -> f64 {
        let g = self.guards(n_b);
        let p_c = self.collisions.collision_probability(n_b);
        self.detection_probability_with(g, p_c)
    }

    /// Detection probability for an explicit guard count and collision
    /// probability (used to overlay the analytical curve on simulation
    /// output in Figure 10).
    pub fn detection_probability_with(&self, guards: u64, p_c: f64) -> f64 {
        if self.confidence_index > guards {
            return 0.0;
        }
        let p_alert = self.alert_probability(p_c);
        binomial_tail(guards, self.confidence_index, p_alert)
    }

    /// The smallest average neighbor count `N_B` at which the detection
    /// probability reaches `target` — the planning question the paper
    /// poses in Section 5.1 ("we are able to compute the required network
    /// density d to detect p% of the wormhole attacks for a given γ").
    /// Returns `None` when no density on the rising branch achieves it
    /// (collisions cap the attainable probability).
    ///
    /// Use [`crate::geometry::GuardGeometry::density_from_neighbors`] to
    /// convert the result to a nodes-per-m² density.
    ///
    /// # Panics
    ///
    /// Panics unless `target` is in `(0, 1]`.
    ///
    /// # Example
    ///
    /// ```
    /// use liteworp_analysis::detection::{CollisionModel, DetectionModel};
    ///
    /// let m = DetectionModel {
    ///     window: 7,
    ///     detections_needed: 5,
    ///     confidence_index: 3,
    ///     collisions: CollisionModel::linear(0.05, 3.0),
    /// };
    /// let n_b = m.required_neighbors(0.99).expect("attainable");
    /// assert!(m.detection_probability(n_b) >= 0.99);
    /// assert!(m.detection_probability(n_b - 1.0) < 0.99);
    /// ```
    pub fn required_neighbors(&self, target: f64) -> Option<f64> {
        assert!(
            target > 0.0 && target <= 1.0,
            "target probability must be in (0, 1], got {target}"
        );
        // Walk up the rising branch in whole-guard steps, then refine by
        // bisection over the fractional neighbor count.
        let mut prev = 0.0f64;
        let mut hit = None;
        for i in 1..=400 {
            let n_b = i as f64 * 0.5;
            let p = self.detection_probability(n_b);
            if p >= target {
                hit = Some((n_b - 0.5, n_b));
                break;
            }
            if p < prev - 0.05 {
                // Past the peak and still below target: unattainable.
                return None;
            }
            prev = p.max(prev);
        }
        let (mut lo, mut hi) = hit?;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if self.detection_probability(mid) >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig6_model() -> DetectionModel {
        DetectionModel {
            window: 7,
            detections_needed: 5,
            confidence_index: 3,
            collisions: CollisionModel::linear(0.05, 3.0),
        }
    }

    #[test]
    fn alert_probability_no_collisions_is_certain() {
        let m = fig6_model();
        assert!((m.alert_probability(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alert_probability_total_collisions_is_zero() {
        let m = fig6_model();
        assert_eq!(m.alert_probability(1.0), 0.0);
    }

    #[test]
    fn alert_probability_hand_computed() {
        // T = 7, k = 5, P_C = 1/6 -> p = 5/6.
        // P = C(7,5) p^5 q^2 + C(7,6) p^6 q + p^7.
        let m = fig6_model();
        let p: f64 = 5.0 / 6.0;
        let q = 1.0 - p;
        let expected = 21.0 * p.powi(5) * q * q + 7.0 * p.powi(6) * q + p.powi(7);
        assert!((m.alert_probability(1.0 / 6.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn too_few_guards_means_no_detection() {
        let m = fig6_model();
        // N_B = 3 -> g = round(1.53) = 2 < gamma = 3.
        assert_eq!(m.detection_probability(3.0), 0.0);
    }

    #[test]
    fn figure_6a_shape_rises_then_falls() {
        let m = fig6_model();
        let sparse = m.detection_probability(8.0);
        let mid = m.detection_probability(15.0);
        let dense = m.detection_probability(55.0);
        assert!(mid > sparse || sparse > 0.9, "curve should rise initially");
        assert!(mid > 0.9, "detection near-certain at moderate density");
        assert!(dense < 0.5, "collisions collapse detection when dense");
    }

    #[test]
    fn figure_10_monotone_in_gamma() {
        // At N_B = 15, detection probability decreases as gamma grows.
        let mut prev = f64::INFINITY;
        for gamma in 2..=8 {
            let m = DetectionModel {
                confidence_index: gamma,
                ..fig6_model()
            };
            let p = m.detection_probability(15.0);
            assert!(p <= prev, "P_detect must not increase with gamma");
            prev = p;
        }
    }

    #[test]
    fn guards_follow_equation_i() {
        let m = fig6_model();
        assert_eq!(m.guards(15.0), 8); // 0.51 * 15 = 7.65 -> 8
        assert_eq!(m.guards(8.0), 4); // 4.08 -> 4
    }

    #[test]
    fn constant_collision_model() {
        let c = CollisionModel::Constant(0.2);
        assert_eq!(c.collision_probability(3.0), 0.2);
        assert_eq!(c.collision_probability(100.0), 0.2);
    }

    #[test]
    fn linear_collision_model_clamps() {
        let c = CollisionModel::linear(0.05, 3.0);
        assert!((c.collision_probability(3.0) - 0.05).abs() < 1e-12);
        assert!((c.collision_probability(6.0) - 0.10).abs() < 1e-12);
        assert_eq!(c.collision_probability(100.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "base must be in [0, 1]")]
    fn linear_rejects_bad_base() {
        CollisionModel::linear(1.5, 3.0);
    }

    #[test]
    fn required_neighbors_is_tight() {
        let m = fig6_model();
        for &target in &[0.9, 0.95, 0.99] {
            let n_b = m.required_neighbors(target).expect("attainable");
            assert!(m.detection_probability(n_b) >= target);
            assert!(
                m.detection_probability((n_b - 0.5).max(0.0)) < target,
                "not the smallest density for target {target}"
            );
        }
    }

    #[test]
    fn unattainable_targets_return_none() {
        // With brutal collisions everywhere, 99.999% detection is out of
        // reach at any density.
        let m = DetectionModel {
            collisions: CollisionModel::Constant(0.6),
            ..fig6_model()
        };
        assert_eq!(m.required_neighbors(0.99999), None);
    }

    #[test]
    #[should_panic(expected = "target probability")]
    fn required_neighbors_rejects_zero_target() {
        fig6_model().required_neighbors(0.0);
    }
}
