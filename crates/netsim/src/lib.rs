//! A from-scratch discrete-event wireless network simulator — the substrate
//! the LITEWORP reproduction runs on (the paper used ns-2).
//!
//! The simulator models exactly what the paper's evaluation depends on:
//!
//! * **Disc radio model** with a nominal communication range (default 30 m)
//!   and optional high-power transmissions (wormhole mode 3).
//! * **A broadcast medium**: every node within range receives every frame,
//!   so protocols can *overhear* their neighbors — the mechanism behind
//!   LITEWORP's local monitoring.
//! * **CSMA-style MAC** with carrier sense and random backoff (and a
//!   `rushed` escape hatch modelling the protocol-deviation attack).
//! * **Per-receiver collisions** including hidden terminals and half-duplex
//!   radios, plus optional random channel noise.
//! * **Out-of-band tunnels** between colluding nodes with configurable
//!   latency (instantaneous = the paper's out-of-band wormhole channel).
//! * **Deterministic execution**: a seeded RNG and a totally ordered event
//!   queue make every run reproducible.
//! * **Fault injection**: an optional [`fault::FaultHook`] drops, corrupts,
//!   duplicates, or delays individual receptions and models node crashes
//!   and clock drift — the substrate of the chaos-testing harness.
//!
//! # Quick start
//!
//! ```
//! use liteworp_netsim::prelude::*;
//! use std::any::Any;
//!
//! struct Hello;
//! impl NodeLogic<u8> for Hello {
//!     fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
//!         ctx.send(FrameSpec::new(Dest::Broadcast, 42, 8));
//!     }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! #[derive(Default)]
//! struct Count(usize);
//! impl NodeLogic<u8> for Count {
//!     fn on_frame(&mut self, _: &mut Context<'_, u8>, _: &Frame<u8>) { self.0 += 1 }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let field = Field::from_positions(50.0, 30.0,
//!     vec![Position::new(0.0, 0.0), Position::new(15.0, 0.0)]);
//! let mut sim = Simulator::new(field, RadioConfig::default(), 1);
//! sim.push_node(Box::new(Hello));
//! sim.push_node(Box::new(Count::default()));
//! sim.run_until(SimTime::from_secs_f64(1.0));
//! assert_eq!(sim.logic(NodeId(1)).as_any().downcast_ref::<Count>().unwrap().0, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod fault;
pub mod field;
pub mod frame;
mod grid;
pub mod medium;
pub mod metrics;
pub mod node;
pub mod radio;
pub mod sim;
pub mod time;

pub use liteworp_runner::rng;
pub use sim::prelude;
pub use sim::Simulator;
