//! The discrete-event simulator driver.
//!
//! [`Simulator`] owns the deployment field, the event queue, the shared
//! medium, and one [`NodeLogic`] per node. Events are processed in
//! `(time, sequence)` order, so runs are fully deterministic for a given
//! seed and node set.
//!
//! # Example
//!
//! A two-node network where node 0 broadcasts once and node 1 counts what
//! it hears:
//!
//! ```
//! use liteworp_netsim::prelude::*;
//! use std::any::Any;
//!
//! struct Talker;
//! impl NodeLogic<&'static str> for Talker {
//!     fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
//!         ctx.send(FrameSpec::new(Dest::Broadcast, "hello", 16));
//!     }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! #[derive(Default)]
//! struct Listener { heard: usize }
//! impl NodeLogic<&'static str> for Listener {
//!     fn on_frame(&mut self, _ctx: &mut Context<'_, &'static str>, f: &Frame<&'static str>) {
//!         assert_eq!(f.payload, "hello");
//!         self.heard += 1;
//!     }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let field = Field::from_positions(100.0, 30.0, vec![
//!     Position::new(0.0, 0.0),
//!     Position::new(20.0, 0.0),
//! ]);
//! let mut sim = Simulator::new(field, RadioConfig::default(), 1);
//! sim.push_node(Box::new(Talker));
//! sim.push_node(Box::new(Listener::default()));
//! sim.run_until(SimTime::from_secs_f64(1.0));
//! let listener: &Listener = sim.logic(NodeId(1)).as_any().downcast_ref().unwrap();
//! assert_eq!(listener.heard, 1);
//! ```

use crate::events::EventQueue;
use crate::fault::{FaultHook, Reception};
use crate::field::{Field, NodeId};
use crate::frame::{Frame, FrameSpec};
use crate::medium::{Medium, TxRecord};
use crate::metrics::{Metrics, Trace};
use crate::node::{Action, Context, NodeLogic};
use crate::radio::RadioConfig;
use crate::time::{SimDuration, SimTime};
use liteworp_runner::rng::{Pcg32, Rng};
use std::collections::VecDeque;

enum EventKind<P> {
    NodeStart(NodeId),
    Timer {
        node: NodeId,
        token: u64,
    },
    TxAttempt(NodeId),
    TxEnd {
        seq: u64,
        frame: Frame<P>,
        retries_used: u8,
    },
    TunnelDeliver {
        from: NodeId,
        to: NodeId,
        payload: P,
    },
    /// A frame held back by a [`FaultHook`] jitter verdict, arriving late.
    FaultDeliver {
        to: NodeId,
        frame: Frame<P>,
    },
}

struct MacFrame<P> {
    spec: FrameSpec<P>,
    retries_used: u8,
}

/// Per-node MAC state in column (SoA) layout: one flat `Vec` per field,
/// all indexed by [`NodeId::index`]. At 100k nodes the event loop touches
/// one or two of these columns per event; keeping each column contiguous
/// avoids dragging a whole per-node struct through the cache for a
/// single-flag check.
struct MacArena<P> {
    queues: Vec<VecDeque<MacFrame<P>>>,
    attempt_pending: Vec<bool>,
    transmitting_until: Vec<Option<SimTime>>,
}

impl<P> Default for MacArena<P> {
    fn default() -> Self {
        MacArena {
            queues: Vec::new(),
            attempt_pending: Vec::new(),
            transmitting_until: Vec::new(),
        }
    }
}

impl<P> MacArena<P> {
    fn push_node(&mut self) {
        self.queues.push(VecDeque::new());
        self.attempt_pending.push(false);
        self.transmitting_until.push(None);
    }
}

/// The discrete-event wireless network simulator.
///
/// See the [module documentation](self) for a usage example.
pub struct Simulator<P> {
    field: Field,
    radio: RadioConfig,
    logic: Vec<Box<dyn NodeLogic<P>>>,
    mac: MacArena<P>,
    queue: EventQueue<EventKind<P>>,
    next_tx_seq: u64,
    now: SimTime,
    medium: Medium,
    rng: Pcg32,
    metrics: Metrics,
    trace: Trace,
    started: bool,
    start_times: Vec<SimTime>,
    fault: Option<Box<dyn FaultHook>>,
    /// Reusable buffer for node-hook actions (drained after every hook).
    actions_scratch: Vec<Action<P>>,
    /// Reusable buffer for the reception fan-out receiver list.
    receivers_scratch: Vec<NodeId>,
}

impl<P: Clone + 'static> Simulator<P> {
    /// Creates a simulator over a deployment field.
    ///
    /// # Panics
    ///
    /// Panics if the radio configuration is invalid or its range disagrees
    /// with the field's range.
    pub fn new(field: Field, radio: RadioConfig, seed: u64) -> Self {
        // lint: allow(P002) documented panic: bad radio parameters
        radio.validate().expect("invalid radio configuration");
        assert!(
            (field.range() - radio.range_m).abs() < 1e-9,
            "field range {} != radio range {}",
            field.range(),
            radio.range_m
        );
        // Cell size = nominal range: the medium's spatial index answers
        // carrier-sense / interference queries from adjacent cells only.
        let medium = Medium::with_geometry(radio.interference_factor, field.side(), field.range());
        Simulator {
            field,
            radio,
            logic: Vec::new(),
            mac: MacArena::default(),
            queue: EventQueue::new(),
            next_tx_seq: 0,
            now: SimTime::ZERO,
            medium,
            rng: Pcg32::seed_from_u64(seed),
            metrics: Metrics::default(),
            trace: Trace::default(),
            started: false,
            start_times: Vec::new(),
            fault: None,
            actions_scratch: Vec::new(),
            receivers_scratch: Vec::new(),
        }
    }

    /// Adds the logic for the next node (ids are assigned in push order and
    /// must match the field's positions).
    ///
    /// # Panics
    ///
    /// Panics if more nodes are pushed than the field has positions, or
    /// after the simulation has started.
    pub fn push_node(&mut self, logic: Box<dyn NodeLogic<P>>) -> NodeId {
        assert!(!self.started, "cannot add nodes after the run started");
        assert!(
            self.logic.len() < self.field.len(),
            "more nodes than field positions"
        );
        let id = NodeId(self.logic.len() as u32);
        self.logic.push(logic);
        self.mac.push_node();
        self.start_times.push(SimTime::ZERO);
        id
    }

    /// Overrides when a node's `on_start` runs (default: time zero).
    ///
    /// # Panics
    ///
    /// Panics after the run has started or for an unknown id.
    pub fn set_start_time(&mut self, node: NodeId, at: SimTime) {
        assert!(!self.started, "cannot change start times after start");
        self.start_times[node.index()] = at;
    }

    /// Staggers all node start times uniformly over `[0, window]` — useful
    /// so deployment-time HELLO floods do not all collide.
    pub fn stagger_starts(&mut self, window: SimDuration) {
        assert!(!self.started, "cannot change start times after start");
        for t in &mut self.start_times {
            let us = self.rng.gen_range(0..=window.as_micros());
            *t = SimTime::from_micros(us);
        }
    }

    /// The deployment field.
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// The radio configuration.
    pub fn radio(&self) -> &RadioConfig {
        &self.radio
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The protocol event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Immutable access to a node's logic (downcast via
    /// [`NodeLogic::as_any`]).
    pub fn logic(&self, node: NodeId) -> &dyn NodeLogic<P> {
        self.logic[node.index()].as_ref()
    }

    /// Mutable access to a node's logic.
    pub fn logic_mut(&mut self, node: NodeId) -> &mut dyn NodeLogic<P> {
        self.logic[node.index()].as_mut()
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.logic.len()
    }

    /// Installs a fault-injection hook (see [`crate::fault`]).
    ///
    /// Without a hook the simulator's behavior is byte-for-byte identical
    /// to a build without the fault module, so fault-free runs keep their
    /// determinism and cached results.
    ///
    /// # Panics
    ///
    /// Panics if the run has already started.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        assert!(!self.started, "cannot install a fault hook after start");
        self.fault = Some(hook);
    }

    /// Schedules an external timer for a node — the hook experiments use
    /// to trigger behavior (e.g. "start the attack at t = 50 s").
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        assert!(node.index() < self.logic.len(), "unknown node {node}");
        self.push_event(at, EventKind::Timer { node, token });
    }

    /// Runs the simulation until `deadline` (inclusive of events at it).
    ///
    /// # Panics
    ///
    /// Panics if fewer nodes were pushed than the field has positions.
    pub fn run_until(&mut self, deadline: SimTime) {
        if !self.started {
            assert_eq!(
                self.logic.len(),
                self.field.len(),
                "node logic missing for some field positions"
            );
            self.started = true;
            for i in 0..self.logic.len() {
                self.push_event(self.start_times[i], EventKind::NodeStart(NodeId(i as u32)));
            }
        }
        while let Some(head_time) = self.queue.next_time() {
            if head_time > deadline {
                break;
            }
            // lint: allow(P002) invariant: peeked non-empty in the loop condition
            let (time, kind) = self.queue.pop().expect("peeked event vanished");
            debug_assert!(time >= self.now, "event queue went backwards");
            self.now = time;
            self.dispatch(kind);
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// Whether any events remain scheduled.
    pub fn has_pending_events(&self) -> bool {
        !self.queue.is_empty()
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<P>) {
        self.queue.push(time, kind);
    }

    fn dispatch(&mut self, kind: EventKind<P>) {
        // Crash windows: a down node runs no start hooks, timers, or
        // transmission attempts (those resume at reboot, state intact) and
        // receives nothing at all while down.
        if self.fault.is_some() {
            let (defer_to, drop_rx) = {
                // lint: allow(P002) invariant: is_some checked in the branch above
                let hook = self.fault.as_deref().expect("checked above");
                match &kind {
                    EventKind::NodeStart(n)
                    | EventKind::Timer { node: n, .. }
                    | EventKind::TxAttempt(n) => (hook.down_until(self.now, *n), false),
                    EventKind::TunnelDeliver { to, .. } | EventKind::FaultDeliver { to, .. } => {
                        (None, hook.down_until(self.now, *to).is_some())
                    }
                    EventKind::TxEnd { .. } => (None, false),
                }
            };
            if let Some(up) = defer_to {
                assert!(up > self.now, "down_until must be strictly future");
                self.push_event(up, kind);
                return;
            }
            if drop_rx {
                self.metrics.incr("fault_rx_while_down");
                return;
            }
        }
        match kind {
            EventKind::NodeStart(node) => self.with_logic(node, |logic, ctx| logic.on_start(ctx)),
            EventKind::Timer { node, token } => {
                self.with_logic(node, |logic, ctx| logic.on_timer(ctx, token))
            }
            EventKind::TxAttempt(node) => self.tx_attempt(node),
            EventKind::TxEnd {
                seq,
                frame,
                retries_used,
            } => self.tx_end(seq, frame, retries_used),
            EventKind::TunnelDeliver { from, to, payload } => {
                self.metrics.tunnel_messages += 1;
                self.trace.record(
                    self.now,
                    to,
                    liteworp_telemetry::EventKind::TunnelRelay {
                        from: from.0,
                        to: to.0,
                    },
                );
                self.with_logic(to, |logic, ctx| logic.on_tunnel(ctx, from, &payload));
            }
            EventKind::FaultDeliver { to, frame } => {
                self.metrics.frames_delivered += 1;
                self.with_logic(to, |logic, ctx| logic.on_frame(ctx, &frame));
            }
        }
    }

    /// Invokes a node hook with a fresh context, then applies its actions.
    /// The action buffer is recycled across hooks (hooks never nest).
    fn with_logic<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn NodeLogic<P>, &mut Context<'_, P>),
    {
        let mut actions = std::mem::take(&mut self.actions_scratch);
        {
            let mut ctx = Context::new(
                self.now,
                node,
                &mut self.rng,
                &mut self.metrics,
                &mut self.trace,
                &mut actions,
            );
            f(self.logic[node.index()].as_mut(), &mut ctx);
        }
        self.apply_actions(node, &mut actions);
        self.actions_scratch = actions;
    }

    fn apply_actions(&mut self, node: NodeId, actions: &mut Vec<Action<P>>) {
        for action in actions.drain(..) {
            match action {
                Action::Send(spec) => self.enqueue_frame(node, spec),
                Action::Timer { delay, token } => {
                    let delay = match &self.fault {
                        Some(hook) => hook.timer_delay(node, delay),
                        None => delay,
                    };
                    self.push_event(self.now + delay, EventKind::Timer { node, token });
                }
                Action::Tunnel {
                    to,
                    payload,
                    latency,
                } => {
                    assert!(to.index() < self.logic.len(), "tunnel to unknown node");
                    self.push_event(
                        self.now + latency,
                        EventKind::TunnelDeliver {
                            from: node,
                            to,
                            payload,
                        },
                    );
                }
            }
        }
    }

    fn enqueue_frame(&mut self, node: NodeId, spec: FrameSpec<P>) {
        let i = node.index();
        self.mac.queues[i].push_back(MacFrame {
            spec,
            retries_used: 0,
        });
        if !self.mac.attempt_pending[i] && self.mac.transmitting_until[i].is_none() {
            self.schedule_attempt(node);
        }
    }

    /// Schedules the next transmission attempt for the node's queue head.
    fn schedule_attempt(&mut self, node: NodeId) {
        let rushed = match self.mac.queues[node.index()].front() {
            Some(head) => head.spec.rushed,
            None => return,
        };
        let delay = if rushed {
            SimDuration::ZERO
        } else {
            let max = self.radio.max_backoff.as_micros();
            SimDuration::from_micros(self.rng.gen_range(0..=max))
        };
        self.mac.attempt_pending[node.index()] = true;
        self.push_event(self.now + delay, EventKind::TxAttempt(node));
    }

    fn tx_attempt(&mut self, node: NodeId) {
        let pos = self.field.position(node);
        let i = node.index();
        self.mac.attempt_pending[i] = false;
        if self.mac.queues[i].is_empty() {
            return;
        }
        // Still transmitting (shouldn't normally happen): retry after.
        if let Some(until) = self.mac.transmitting_until[i] {
            if until > self.now {
                self.mac.attempt_pending[i] = true;
                let at = until + self.radio.ifs;
                self.push_event(at, EventKind::TxAttempt(node));
                return;
            }
            self.mac.transmitting_until[i] = None;
        }
        // Carrier sense.
        let rushed = self.mac.queues[i]
            .front()
            .map(|f| f.spec.rushed)
            .unwrap_or(false);
        if let Some(busy_end) = self.medium.busy_until(pos, self.now) {
            self.metrics.mac_deferrals += 1;
            let backoff = if rushed {
                SimDuration::ZERO
            } else {
                let max = self.radio.max_backoff.as_micros();
                SimDuration::from_micros(self.rng.gen_range(0..=max))
            };
            let at = busy_end + self.radio.ifs + backoff;
            self.mac.attempt_pending[i] = true;
            self.push_event(at, EventKind::TxAttempt(node));
            return;
        }
        // Transmit.
        let mac_frame = self.mac.queues[i]
            .pop_front()
            // lint: allow(P002) invariant: TxEnd is scheduled with every TxStart
            .expect("queue emptied unexpectedly");
        let retries_used = mac_frame.retries_used;
        let spec = mac_frame.spec;
        let airtime = crate::frame::airtime(spec.bytes, self.radio.bitrate_bps);
        let end = self.now + airtime;
        let seq = self.next_tx_seq;
        self.next_tx_seq += 1;
        let frame = Frame {
            transmitter: node,
            dest: spec.dest,
            payload: spec.payload,
            bytes: spec.bytes,
            power: spec.power,
        };
        self.medium.begin(TxRecord {
            seq,
            transmitter: node,
            origin: pos,
            start: self.now,
            end,
            range: spec.power.effective_range(self.radio.range_m),
        });
        self.metrics.frames_sent += 1;
        self.mac.transmitting_until[i] = Some(end);
        self.push_event(
            end,
            EventKind::TxEnd {
                seq,
                frame,
                retries_used,
            },
        );
    }

    fn tx_end(&mut self, seq: u64, frame: Frame<P>, retries_used: u8) {
        let tx = frame.transmitter;
        self.mac.transmitting_until[tx.index()] = None;
        let record = self
            .medium
            .get(seq)
            // lint: allow(P002) invariant: transmissions outlive their TxEnd
            .expect("TxEnd for pruned transmission")
            .clone();
        // Deliver to every in-range node, in id order, applying the
        // per-receiver collision and noise model. The spatial grid narrows
        // the fan-out to the transmission's disc; `nodes_within_into`
        // applies the same distance predicate the old all-nodes scan used
        // and yields ascending ids, so the per-receiver RNG draw order is
        // byte-identical to the pre-index code.
        let mut link_dst_got_it = true;
        if let crate::frame::Dest::Unicast(_) = frame.dest {
            link_dst_got_it = false;
        }
        let mut receivers = std::mem::take(&mut self.receivers_scratch);
        self.field
            .nodes_within_into(record.origin, record.range, &mut receivers);
        for &receiver in &receivers {
            if receiver == tx {
                continue;
            }
            let rpos = self.field.position(receiver);
            let receiver_down = self
                .fault
                .as_deref()
                .is_some_and(|h| h.down_until(self.now, receiver).is_some());
            if receiver_down {
                self.metrics.incr("fault_rx_while_down");
                continue;
            }
            if self.medium.collides(seq, receiver, rpos) {
                self.metrics.frames_collided += 1;
                self.with_logic(receiver, |logic, ctx| logic.on_collision(ctx));
                continue;
            }
            if self.radio.noise_loss > 0.0 && self.rng.gen_f64() < self.radio.noise_loss {
                self.metrics.frames_lost_noise += 1;
                continue;
            }
            let verdict = match self.fault.as_deref_mut() {
                Some(hook) => hook.on_reception(self.now, tx, receiver),
                None => Reception::Deliver,
            };
            match verdict {
                Reception::Deliver => {}
                Reception::Drop => {
                    // Silent loss: no ACK for a unicast destination, so the
                    // link-layer retry path runs exactly as for noise.
                    self.metrics.incr("fault_frames_dropped");
                    continue;
                }
                Reception::Corrupt => {
                    // Checksum failure: observed as a collision.
                    self.metrics.incr("fault_frames_corrupted");
                    self.metrics.frames_collided += 1;
                    self.with_logic(receiver, |logic, ctx| logic.on_collision(ctx));
                    continue;
                }
                Reception::Duplicate => {
                    self.metrics.incr("fault_frames_duplicated");
                    self.metrics.frames_delivered += 2;
                    if frame.dest == crate::frame::Dest::Unicast(receiver) {
                        link_dst_got_it = true;
                    }
                    self.with_logic(receiver, |logic, ctx| logic.on_frame(ctx, &frame));
                    self.with_logic(receiver, |logic, ctx| logic.on_frame(ctx, &frame));
                    continue;
                }
                Reception::Delay(jitter) => {
                    // The frame will still arrive, so the link-layer ACK
                    // counts now; delivery happens after the jitter.
                    self.metrics.incr("fault_frames_delayed");
                    if frame.dest == crate::frame::Dest::Unicast(receiver) {
                        link_dst_got_it = true;
                    }
                    let at = self.now + jitter;
                    let held = frame.clone();
                    self.push_event(
                        at,
                        EventKind::FaultDeliver {
                            to: receiver,
                            frame: held,
                        },
                    );
                    continue;
                }
            }
            self.metrics.frames_delivered += 1;
            if frame.dest == crate::frame::Dest::Unicast(receiver) {
                link_dst_got_it = true;
            }
            self.with_logic(receiver, |logic, ctx| logic.on_frame(ctx, &frame));
        }
        receivers.clear();
        self.receivers_scratch = receivers;
        self.medium.prune(self.now);
        // ACK-timeout emulation: retransmit a unicast whose addressed
        // receiver missed it, up to the configured retry budget.
        if !link_dst_got_it {
            if retries_used < self.radio.unicast_retries {
                self.metrics.incr("unicast_retries");
                let spec = FrameSpec {
                    dest: frame.dest,
                    payload: frame.payload.clone(),
                    bytes: frame.bytes,
                    power: frame.power,
                    rushed: false,
                };
                self.mac.queues[tx.index()].push_front(MacFrame {
                    spec,
                    retries_used: retries_used + 1,
                });
            } else {
                self.metrics.incr("unicast_exhausted");
            }
        }
        // Keep the transmitter's queue draining.
        if !self.mac.queues[tx.index()].is_empty() && !self.mac.attempt_pending[tx.index()] {
            self.schedule_attempt(tx);
        }
    }
}

/// Prelude re-exporting everything node implementations typically need.
pub mod prelude {
    pub use crate::field::{Field, NodeId, Position};
    pub use crate::frame::{Dest, Frame, FrameSpec, TxPower};
    pub use crate::metrics::{Isolation, Metrics, Trace};
    pub use crate::node::{Action, Context, NodeLogic};
    pub use crate::radio::RadioConfig;
    pub use crate::sim::Simulator;
    pub use crate::time::{SimDuration, SimTime};
    pub use liteworp_telemetry::{Event, EventKind as TraceKind, MalcReason};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::any::Any;

    type Payload = u32;

    /// Broadcasts `count` frames, one per `interval`.
    struct Beacon {
        count: u32,
        interval: SimDuration,
        rushed: bool,
        power: Option<f64>,
    }

    impl Beacon {
        fn new(count: u32, interval: SimDuration) -> Self {
            Beacon {
                count,
                interval,
                rushed: false,
                power: None,
            }
        }
    }

    impl NodeLogic<Payload> for Beacon {
        fn on_start(&mut self, ctx: &mut Context<'_, Payload>) {
            if self.count > 0 {
                ctx.set_timer(SimDuration::ZERO, 0);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Payload>, token: u64) {
            let n = token as u32;
            let mut spec = FrameSpec::new(Dest::Broadcast, n, 25);
            if self.rushed {
                spec = spec.rushed();
            }
            if let Some(mult) = self.power {
                spec = spec.with_high_power(mult);
            }
            ctx.send(spec);
            if n + 1 < self.count {
                ctx.set_timer(self.interval, token + 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[derive(Default)]
    struct Sink {
        heard: Vec<(NodeId, Payload)>,
    }

    impl NodeLogic<Payload> for Sink {
        fn on_frame(&mut self, _ctx: &mut Context<'_, Payload>, f: &Frame<Payload>) {
            self.heard.push((f.transmitter, f.payload));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn chain_field(spacing: f64, n: usize) -> Field {
        let positions = (0..n)
            .map(|i| Position::new(spacing * i as f64, 0.0))
            .collect();
        Field::from_positions(1000.0, 30.0, positions)
    }

    fn sink_of(sim: &Simulator<Payload>, id: NodeId) -> &Sink {
        sim.logic(id).as_any().downcast_ref().expect("not a Sink")
    }

    #[test]
    fn broadcast_reaches_only_nodes_in_range() {
        // 0 --25m-- 1 --25m-- 2: node 2 is 50 m from node 0, out of range.
        let field = chain_field(25.0, 3);
        let mut sim = Simulator::new(field, RadioConfig::default(), 7);
        sim.push_node(Box::new(Beacon::new(1, SimDuration::ZERO)));
        sim.push_node(Box::new(Sink::default()));
        sim.push_node(Box::new(Sink::default()));
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sink_of(&sim, NodeId(1)).heard, vec![(NodeId(0), 0)]);
        assert!(sink_of(&sim, NodeId(2)).heard.is_empty());
    }

    #[test]
    fn high_power_reaches_distant_nodes() {
        let field = chain_field(25.0, 3);
        let mut sim = Simulator::new(field, RadioConfig::default(), 7);
        let mut b = Beacon::new(1, SimDuration::ZERO);
        b.power = Some(2.0); // 60 m range covers node 2 at 50 m
        sim.push_node(Box::new(b));
        sim.push_node(Box::new(Sink::default()));
        sim.push_node(Box::new(Sink::default()));
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sink_of(&sim, NodeId(2)).heard.len(), 1);
    }

    #[test]
    fn unicast_is_still_overheard() {
        // Overhearing is load-bearing for LITEWORP: everyone in range
        // receives the frame regardless of its link destination.
        struct Uni;
        impl NodeLogic<Payload> for Uni {
            fn on_start(&mut self, ctx: &mut Context<'_, Payload>) {
                ctx.send(FrameSpec::new(Dest::Unicast(NodeId(1)), 9, 25));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let field = chain_field(10.0, 3);
        let mut sim = Simulator::new(field, RadioConfig::default(), 7);
        sim.push_node(Box::new(Uni));
        sim.push_node(Box::new(Sink::default()));
        sim.push_node(Box::new(Sink::default()));
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sink_of(&sim, NodeId(1)).heard.len(), 1);
        assert_eq!(sink_of(&sim, NodeId(2)).heard.len(), 1, "overhearing");
    }

    #[test]
    fn simultaneous_hidden_transmitters_collide_at_middle() {
        // Nodes 0 and 2 are 50 m apart (cannot carrier-sense each other)
        // and both transmit immediately, rushed so there is no backoff:
        // node 1 in the middle hears nothing.
        let field = chain_field(25.0, 3);
        let mut sim = Simulator::new(field, RadioConfig::default(), 7);
        let mk = || {
            let mut b = Beacon::new(1, SimDuration::ZERO);
            b.rushed = true;
            Box::new(b)
        };
        sim.push_node(mk());
        sim.push_node(Box::new(Sink::default()));
        sim.push_node(mk());
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert!(sink_of(&sim, NodeId(1)).heard.is_empty());
        assert_eq!(sim.metrics().frames_collided, 2);
    }

    #[test]
    fn carrier_sense_serializes_neighbors() {
        // Nodes 0 and 1 are in range of each other; both broadcast at t=0.
        // Backoff + carrier sense should let both frames through to node 2
        // (in range of both) most of the time. With rushing disabled and a
        // deterministic seed we assert full delivery.
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(20.0, 0.0),
        ];
        let field = Field::from_positions(100.0, 30.0, positions);
        let mut sim = Simulator::new(field, RadioConfig::default(), 11);
        sim.push_node(Box::new(Beacon::new(1, SimDuration::ZERO)));
        sim.push_node(Box::new(Beacon::new(1, SimDuration::ZERO)));
        sim.push_node(Box::new(Sink::default()));
        sim.run_until(SimTime::from_secs_f64(1.0));
        let heard = &sink_of(&sim, NodeId(2)).heard;
        assert_eq!(heard.len(), 2, "both frames should arrive: {heard:?}");
    }

    #[test]
    fn rushed_frame_skips_backoff() {
        // A rushed transmitter always wins the race to the channel.
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(20.0, 0.0),
        ];
        let field = Field::from_positions(100.0, 30.0, positions);
        let mut sim = Simulator::new(field, RadioConfig::default(), 13);
        let mut rushed = Beacon::new(1, SimDuration::ZERO);
        rushed.rushed = true;
        sim.push_node(Box::new(Beacon::new(1, SimDuration::ZERO)));
        sim.push_node(Box::new(rushed));
        sim.push_node(Box::new(Sink::default()));
        sim.run_until(SimTime::from_secs_f64(1.0));
        let heard = &sink_of(&sim, NodeId(2)).heard;
        assert_eq!(heard.first().map(|h| h.0), Some(NodeId(1)));
    }

    #[test]
    fn tunnel_delivers_out_of_band() {
        struct TunnelSrc;
        impl NodeLogic<Payload> for TunnelSrc {
            fn on_start(&mut self, ctx: &mut Context<'_, Payload>) {
                ctx.tunnel(NodeId(1), 77, SimDuration::ZERO);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        #[derive(Default)]
        struct TunnelSink {
            got: Option<(NodeId, Payload)>,
        }
        impl NodeLogic<Payload> for TunnelSink {
            fn on_tunnel(&mut self, _ctx: &mut Context<'_, Payload>, from: NodeId, p: &Payload) {
                self.got = Some((from, *p));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        // Far apart: radio could never deliver this.
        let field = chain_field(500.0, 2);
        let mut sim = Simulator::new(field, RadioConfig::default(), 3);
        sim.push_node(Box::new(TunnelSrc));
        sim.push_node(Box::new(TunnelSink::default()));
        sim.run_until(SimTime::from_secs_f64(0.1));
        let sink: &TunnelSink = sim.logic(NodeId(1)).as_any().downcast_ref().unwrap();
        assert_eq!(sink.got, Some((NodeId(0), 77)));
        assert_eq!(sim.metrics().tunnel_messages, 1);
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        struct Timed {
            fired: Vec<u64>,
        }
        impl NodeLogic<Payload> for Timed {
            fn on_start(&mut self, ctx: &mut Context<'_, Payload>) {
                ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_, Payload>, token: u64) {
                self.fired.push(token);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let field = chain_field(10.0, 1);
        let mut sim = Simulator::new(field, RadioConfig::default(), 5);
        sim.push_node(Box::new(Timed { fired: vec![] }));
        sim.run_until(SimTime::from_secs_f64(1.0));
        let t: &Timed = sim.logic(NodeId(0)).as_any().downcast_ref().unwrap();
        assert_eq!(t.fired, vec![1, 2]);
    }

    #[test]
    fn noise_loss_drops_some_frames() {
        let field = chain_field(10.0, 2);
        let radio = RadioConfig {
            noise_loss: 0.5,
            ..RadioConfig::default()
        };
        let mut sim = Simulator::new(field, radio, 21);
        sim.push_node(Box::new(Beacon::new(100, SimDuration::from_millis(50))));
        sim.push_node(Box::new(Sink::default()));
        sim.run_until(SimTime::from_secs_f64(10.0));
        let heard = sink_of(&sim, NodeId(1)).heard.len();
        assert!(heard > 20 && heard < 80, "noise should drop ~half: {heard}");
        assert_eq!(
            sim.metrics().frames_lost_noise + heard as u64,
            sim.metrics().frames_sent
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed| {
            let field = chain_field(20.0, 4);
            let mut sim = Simulator::new(field, RadioConfig::default(), seed);
            sim.push_node(Box::new(Beacon::new(20, SimDuration::from_millis(7))));
            sim.push_node(Box::new(Beacon::new(20, SimDuration::from_millis(9))));
            sim.push_node(Box::new(Sink::default()));
            sim.push_node(Box::new(Sink::default()));
            sim.run_until(SimTime::from_secs_f64(5.0));
            (
                sink_of(&sim, NodeId(2)).heard.clone(),
                sim.metrics().frames_collided,
            )
        };
        assert_eq!(run(99), run(99));
        // And the clock advances to the deadline even when idle.
        let field = chain_field(20.0, 1);
        let mut sim = Simulator::new(field, RadioConfig::default(), 1);
        sim.push_node(Box::new(Sink::default()));
        sim.run_until(SimTime::from_secs_f64(3.0));
        assert_eq!(sim.now(), SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn staggered_starts_happen_within_window() {
        struct Recorder {
            started_at: Option<SimTime>,
        }
        impl NodeLogic<Payload> for Recorder {
            fn on_start(&mut self, ctx: &mut Context<'_, Payload>) {
                self.started_at = Some(ctx.now());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let field = chain_field(10.0, 5);
        let mut sim = Simulator::new(field, RadioConfig::default(), 17);
        for _ in 0..5 {
            sim.push_node(Box::new(Recorder { started_at: None }));
        }
        sim.stagger_starts(SimDuration::from_secs(2));
        sim.run_until(SimTime::from_secs_f64(3.0));
        for i in 0..5 {
            let r: &Recorder = sim.logic(NodeId(i)).as_any().downcast_ref().unwrap();
            let at = r.started_at.expect("every node starts");
            assert!(at <= SimTime::from_secs_f64(2.0));
        }
    }

    #[test]
    fn drop_all_hook_silences_the_channel() {
        use crate::fault::{FaultHook, Reception};
        struct DropAll;
        impl FaultHook for DropAll {
            fn on_reception(&mut self, _now: SimTime, _tx: NodeId, _rx: NodeId) -> Reception {
                Reception::Drop
            }
        }
        let field = chain_field(10.0, 2);
        let mut sim = Simulator::new(field, RadioConfig::default(), 7);
        sim.set_fault_hook(Box::new(DropAll));
        sim.push_node(Box::new(Beacon::new(5, SimDuration::from_millis(10))));
        sim.push_node(Box::new(Sink::default()));
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert!(sink_of(&sim, NodeId(1)).heard.is_empty());
        assert_eq!(sim.metrics().get("fault_frames_dropped"), 5);
    }

    #[test]
    fn delayed_frames_arrive_late_and_duplicates_twice() {
        use crate::fault::{FaultHook, Reception};
        // First reception delayed by 100 ms, the rest duplicated.
        struct Mixed {
            first: bool,
        }
        impl FaultHook for Mixed {
            fn on_reception(&mut self, _now: SimTime, _tx: NodeId, _rx: NodeId) -> Reception {
                if self.first {
                    self.first = false;
                    Reception::Delay(SimDuration::from_millis(100))
                } else {
                    Reception::Duplicate
                }
            }
        }
        let field = chain_field(10.0, 2);
        let mut sim = Simulator::new(field, RadioConfig::default(), 7);
        sim.set_fault_hook(Box::new(Mixed { first: true }));
        sim.push_node(Box::new(Beacon::new(2, SimDuration::from_millis(10))));
        sim.push_node(Box::new(Sink::default()));
        sim.run_until(SimTime::from_secs_f64(0.05));
        // Only the duplicated second frame has arrived so far (twice).
        assert_eq!(sink_of(&sim, NodeId(1)).heard, vec![(NodeId(0), 1); 2]);
        sim.run_until(SimTime::from_secs_f64(1.0));
        // The delayed first frame lands after its jitter, reordered.
        let heard = &sink_of(&sim, NodeId(1)).heard;
        assert_eq!(heard.len(), 3);
        assert_eq!(heard[2], (NodeId(0), 0));
    }

    #[test]
    fn crashed_node_misses_traffic_and_resumes() {
        use crate::fault::FaultHook;
        // Node 1 is down for t in [0, 0.5 s): the early beacons are lost,
        // the late ones arrive, and its own start hook runs at reboot.
        struct DownEarly;
        impl FaultHook for DownEarly {
            fn down_until(&self, now: SimTime, node: NodeId) -> Option<SimTime> {
                let until = SimTime::from_secs_f64(0.5);
                (node == NodeId(1) && now < until).then_some(until)
            }
        }
        let field = chain_field(10.0, 2);
        let mut sim = Simulator::new(field, RadioConfig::default(), 7);
        sim.set_fault_hook(Box::new(DownEarly));
        sim.push_node(Box::new(Beacon::new(10, SimDuration::from_millis(100))));
        sim.push_node(Box::new(Sink::default()));
        sim.run_until(SimTime::from_secs_f64(2.0));
        let heard = sink_of(&sim, NodeId(1)).heard.len();
        assert!((4..=6).contains(&heard), "heard {heard} of 10");
        assert!(sim.metrics().get("fault_rx_while_down") >= 4);
    }

    #[test]
    fn timer_drift_scales_delays() {
        use crate::fault::FaultHook;
        // +100000 ppm (10% fast clock... i.e. slow timers): the 10th beacon
        // at nominal t = 0.9 s lands at 0.99 s instead.
        struct Slow;
        impl FaultHook for Slow {
            fn timer_delay(&self, node: NodeId, delay: SimDuration) -> SimDuration {
                if node == NodeId(0) {
                    SimDuration::from_micros(delay.as_micros() * 11 / 10)
                } else {
                    delay
                }
            }
        }
        let field = chain_field(10.0, 2);
        let mut sim = Simulator::new(field, RadioConfig::default(), 7);
        sim.set_fault_hook(Box::new(Slow));
        sim.push_node(Box::new(Beacon::new(10, SimDuration::from_millis(100))));
        sim.push_node(Box::new(Sink::default()));
        sim.run_until(SimTime::from_secs_f64(0.95));
        assert_eq!(sink_of(&sim, NodeId(1)).heard.len(), 9);
        sim.run_until(SimTime::from_secs_f64(2.0));
        assert_eq!(sink_of(&sim, NodeId(1)).heard.len(), 10);
    }

    #[test]
    #[should_panic(expected = "node logic missing")]
    fn run_requires_full_node_set() {
        let field = chain_field(10.0, 2);
        let mut sim = Simulator::new(field, RadioConfig::default(), 1);
        sim.push_node(Box::new(Sink::default()));
        sim.run_until(SimTime::from_secs_f64(1.0));
    }

    #[test]
    #[should_panic(expected = "more nodes than field positions")]
    fn push_rejects_extra_nodes() {
        let field = chain_field(10.0, 1);
        let mut sim = Simulator::new(field, RadioConfig::default(), 1);
        sim.push_node(Box::new(Sink::default()));
        sim.push_node(Box::new(Sink::default()));
    }
}
