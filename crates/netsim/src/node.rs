//! Node logic: the trait protocols implement, and the context through which
//! they act on the world.
//!
//! The simulator owns all node state; when an event concerns a node it
//! invokes the matching [`NodeLogic`] hook with a [`Context`] that exposes
//! the clock, a deterministic RNG, metrics/trace sinks, and collects the
//! node's *actions* (transmissions, timers, tunnel sends). Actions are
//! applied by the simulator after the hook returns, which keeps node logic
//! free of borrow gymnastics and makes every run reproducible.

use crate::field::NodeId;
use crate::frame::{Frame, FrameSpec};
use crate::metrics::{Metrics, Trace};
use crate::time::{SimDuration, SimTime};
use liteworp_runner::rng::Pcg32;
use liteworp_telemetry::EventKind as TraceKind;
use std::any::Any;

/// An effect requested by node logic, applied by the simulator.
#[derive(Debug)]
pub enum Action<P> {
    /// Queue a frame at this node's MAC.
    Send(FrameSpec<P>),
    /// Fire [`NodeLogic::on_timer`] with `token` after `delay`.
    Timer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Opaque value handed back to the node.
        token: u64,
    },
    /// Deliver `payload` to node `to` over an out-of-band tunnel after
    /// `latency` — the wormhole side channel (Sections 3.1, 3.2).
    Tunnel {
        /// Receiving colluder.
        to: NodeId,
        /// Payload to deliver.
        payload: P,
        /// Tunnel latency (zero models the paper's instantaneous
        /// out-of-band channel; larger values model encapsulation over a
        /// multihop path).
        latency: SimDuration,
    },
}

/// Execution context passed to every [`NodeLogic`] hook.
pub struct Context<'a, P> {
    now: SimTime,
    me: NodeId,
    rng: &'a mut Pcg32,
    metrics: &'a mut Metrics,
    trace: &'a mut Trace,
    actions: &'a mut Vec<Action<P>>,
}

impl<'a, P> Context<'a, P> {
    /// Builds a context (called by the simulator).
    pub(crate) fn new(
        now: SimTime,
        me: NodeId,
        rng: &'a mut Pcg32,
        metrics: &'a mut Metrics,
        trace: &'a mut Trace,
        actions: &'a mut Vec<Action<P>>,
    ) -> Self {
        Context {
            now,
            me,
            rng,
            metrics,
            trace,
            actions,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Deterministic random-number generator shared by the run.
    pub fn rng(&mut self) -> &mut Pcg32 {
        self.rng
    }

    /// Queues a frame for transmission through this node's MAC.
    pub fn send(&mut self, spec: FrameSpec<P>) {
        self.actions.push(Action::Send(spec));
    }

    /// Schedules `on_timer(token)` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(Action::Timer { delay, token });
    }

    /// Sends `payload` to a colluding node over an out-of-band tunnel.
    pub fn tunnel(&mut self, to: NodeId, payload: P, latency: SimDuration) {
        self.actions.push(Action::Tunnel {
            to,
            payload,
            latency,
        });
    }

    /// Run metrics (for protocol-defined counters).
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Records a typed protocol event in the run trace, stamped with the
    /// current time and this node's identity.
    pub fn trace(&mut self, kind: TraceKind) {
        self.trace.record(self.now, self.me, kind);
    }
}

/// Behavior of one simulated node.
///
/// All hooks default to doing nothing, so implementations only override
/// what they need. Implementers must provide [`NodeLogic::as_any`] /
/// [`NodeLogic::as_any_mut`] (usually `self`) so experiments can downcast
/// and inspect protocol state after a run.
pub trait NodeLogic<P>: Any {
    /// Called once when the node is deployed (its start time).
    fn on_start(&mut self, ctx: &mut Context<'_, P>) {
        let _ = ctx;
    }

    /// Called for every frame the node's radio successfully receives —
    /// including frames merely overheard (check [`Frame::addressed_to`]).
    fn on_frame(&mut self, ctx: &mut Context<'_, P>, frame: &Frame<P>) {
        let _ = (ctx, frame);
    }

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, P>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called when a colluder delivers `payload` over an out-of-band
    /// tunnel. Honest nodes never receive tunnel messages.
    fn on_tunnel(&mut self, ctx: &mut Context<'_, P>, from: NodeId, payload: &P) {
        let _ = (ctx, from, payload);
    }

    /// Called when a frame reception at this node was destroyed by a
    /// collision — the physical layer detected energy but could not
    /// decode (CRC failure). The node learns *that* it missed something,
    /// not what.
    fn on_collision(&mut self, ctx: &mut Context<'_, P>) {
        let _ = ctx;
    }

    /// Upcast for post-run inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for post-run inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Dest;

    struct Nop;
    impl NodeLogic<u32> for Nop {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn context_collects_actions() {
        let mut rng = Pcg32::seed_from_u64(0);
        let mut metrics = Metrics::default();
        let mut trace = Trace::default();
        let mut actions = Vec::new();
        let mut ctx = Context::new(
            SimTime::from_micros(42),
            NodeId(3),
            &mut rng,
            &mut metrics,
            &mut trace,
            &mut actions,
        );
        assert_eq!(ctx.now(), SimTime::from_micros(42));
        assert_eq!(ctx.id(), NodeId(3));
        ctx.send(FrameSpec::new(Dest::Broadcast, 7u32, 16));
        ctx.set_timer(SimDuration::from_secs(1), 99);
        ctx.tunnel(NodeId(5), 8, SimDuration::ZERO);
        ctx.metrics().incr("x");
        ctx.trace(TraceKind::HelloSent);
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], Action::Send(_)));
        assert!(matches!(actions[1], Action::Timer { token: 99, .. }));
        assert!(matches!(actions[2], Action::Tunnel { to: NodeId(5), .. }));
        assert_eq!(metrics.get("x"), 1);
        assert_eq!(trace.events().count(), 1);
        assert_eq!(trace.events().next().unwrap().node, 3);
    }

    #[test]
    fn default_hooks_are_noops() {
        let mut rng = Pcg32::seed_from_u64(0);
        let mut metrics = Metrics::default();
        let mut trace = Trace::default();
        let mut actions: Vec<Action<u32>> = Vec::new();
        let mut ctx = Context::new(
            SimTime::ZERO,
            NodeId(0),
            &mut rng,
            &mut metrics,
            &mut trace,
            &mut actions,
        );
        let mut nop = Nop;
        nop.on_start(&mut ctx);
        nop.on_timer(&mut ctx, 1);
        nop.on_tunnel(&mut ctx, NodeId(1), &5);
        assert!(actions.is_empty());
    }
}
