//! Radio and MAC configuration.

use crate::time::SimDuration;

/// Physical-layer and MAC parameters of the simulated radio.
///
/// Defaults mirror Table 2 of the paper: 30 m transmission range and a
/// 40 kbps channel.
///
/// # Example
///
/// ```
/// use liteworp_netsim::radio::RadioConfig;
///
/// let radio = RadioConfig::default();
/// assert_eq!(radio.range_m, 30.0);
/// assert_eq!(radio.bitrate_bps, 40_000);
/// radio.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RadioConfig {
    /// Nominal communication range in meters (paper: 30 m).
    pub range_m: f64,
    /// Channel bitrate in bits per second (paper: 40 kbps).
    pub bitrate_bps: u64,
    /// Maximum random MAC backoff before a transmission attempt. Honest
    /// nodes draw uniformly from `[0, max_backoff]`; a *rushed* frame
    /// (Section 3.5) uses zero.
    pub max_backoff: SimDuration,
    /// Fixed inter-frame spacing added after the channel goes idle before
    /// a deferred transmission retries.
    pub ifs: SimDuration,
    /// Independent per-receiver probability that a frame is lost to channel
    /// noise even without a collision (natural loss). `0.0` disables it.
    pub noise_loss: f64,
    /// Multiplier on the transmission range within which a concurrent
    /// transmission corrupts reception (interference range). `1.0` means
    /// interference reaches exactly as far as reception.
    pub interference_factor: f64,
    /// Link-layer retransmissions for unicast frames whose addressed
    /// receiver did not get them (ACK-timeout emulation; the ACK itself is
    /// not put on the air). Broadcasts are never retried. `0` disables.
    pub unicast_retries: u8,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            range_m: 30.0,
            bitrate_bps: 40_000,
            max_backoff: SimDuration::from_millis(20),
            ifs: SimDuration::from_millis(2),
            noise_loss: 0.0,
            interference_factor: 1.0,
            unicast_retries: 3,
        }
    }
}

/// Error returned by [`RadioConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidRadioConfig(String);

impl std::fmt::Display for InvalidRadioConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid radio config: {}", self.0)
    }
}

impl std::error::Error for InvalidRadioConfig {}

impl RadioConfig {
    /// Checks the parameters for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRadioConfig`] when the range or bitrate is
    /// non-positive, `noise_loss` is outside `[0, 1)`, or the interference
    /// factor is below 1.
    pub fn validate(&self) -> Result<(), InvalidRadioConfig> {
        if !(self.range_m.is_finite() && self.range_m > 0.0) {
            return Err(InvalidRadioConfig(format!(
                "range must be positive, got {}",
                self.range_m
            )));
        }
        if self.bitrate_bps == 0 {
            return Err(InvalidRadioConfig("bitrate must be positive".into()));
        }
        if !(0.0..1.0).contains(&self.noise_loss) {
            return Err(InvalidRadioConfig(format!(
                "noise_loss must be in [0, 1), got {}",
                self.noise_loss
            )));
        }
        if self.interference_factor < 1.0 || self.interference_factor.is_nan() {
            return Err(InvalidRadioConfig(format!(
                "interference_factor must be >= 1, got {}",
                self.interference_factor
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        RadioConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_zero_range() {
        let cfg = RadioConfig {
            range_m: 0.0,
            ..RadioConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_total_noise() {
        let cfg = RadioConfig {
            noise_loss: 1.0,
            ..RadioConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_sub_unity_interference() {
        let cfg = RadioConfig {
            interference_factor: 0.5,
            ..RadioConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("interference_factor"));
    }
}
