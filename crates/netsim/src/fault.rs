//! Pluggable fault injection for the simulated radio channel and nodes.
//!
//! A [`FaultHook`] installed via [`Simulator::set_fault_hook`] is consulted
//! at three points:
//!
//! * **per reception** — after the collision and noise models have passed a
//!   frame, the hook decides whether the receiver actually gets it
//!   ([`Reception`]): deliver, drop it silently, corrupt it (the receiver
//!   sees a checksum failure, i.e. a collision), duplicate it, or delay it
//!   by a bounded jitter (which also reorders it against later traffic);
//! * **per event** — a node inside a crash window runs no timers, start
//!   hooks, or transmission attempts (they are deferred to the reboot
//!   time) and receives nothing at all, over the air or through tunnels;
//! * **per timer** — a node's timer delays can be scaled to model clock
//!   drift.
//!
//! Without a hook the simulator behaves byte-for-byte identically to a
//! build without this module, so fault-free runs keep their cached
//! results.
//!
//! [`Simulator::set_fault_hook`]: crate::sim::Simulator::set_fault_hook

use crate::field::NodeId;
use crate::time::{SimDuration, SimTime};

/// What happens to one frame at one receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reception {
    /// The frame arrives normally.
    Deliver,
    /// The frame vanishes silently — the receiver never learns a
    /// transmission happened (the dangerous case for LITEWORP guards,
    /// which cannot tell a faded frame from a maliciously dropped one).
    Drop,
    /// The frame arrives damaged: the receiver detects a checksum failure
    /// and observes it as a collision (so the collision-grace logic in the
    /// protocol applies).
    Corrupt,
    /// The frame arrives twice back to back.
    Duplicate,
    /// The frame arrives after an extra jitter, possibly reordered behind
    /// traffic transmitted later.
    Delay(SimDuration),
}

/// A fault-injection policy consulted by the simulator.
///
/// All methods have pass-through defaults, so implementations override
/// only the faults they model. Implementations must be deterministic
/// functions of their own seeded state — the simulator calls them in a
/// fixed order, so a given (scenario, plan) pair always replays exactly.
pub trait FaultHook {
    /// Decides the fate of a frame that survived collision and noise at
    /// `receiver`. Called once per (frame, in-range receiver) pair, in
    /// receiver-id order.
    fn on_reception(&mut self, now: SimTime, transmitter: NodeId, receiver: NodeId) -> Reception {
        let _ = (now, transmitter, receiver);
        Reception::Deliver
    }

    /// If `node` is crashed at `now`, returns the reboot time (strictly
    /// after `now`). Deferred events re-run at that time; receptions while
    /// down are lost outright.
    fn down_until(&self, now: SimTime, node: NodeId) -> Option<SimTime> {
        let _ = (now, node);
        None
    }

    /// Maps a requested timer delay to the delay actually scheduled for
    /// `node` — the clock-drift hook.
    fn timer_delay(&self, node: NodeId, delay: SimDuration) -> SimDuration {
        let _ = node;
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Passthrough;
    impl FaultHook for Passthrough {}

    #[test]
    fn defaults_are_transparent() {
        let mut hook = Passthrough;
        let now = SimTime::from_micros(5);
        assert_eq!(
            hook.on_reception(now, NodeId(0), NodeId(1)),
            Reception::Deliver
        );
        assert_eq!(hook.down_until(now, NodeId(0)), None);
        let d = SimDuration::from_millis(3);
        assert_eq!(hook.timer_delay(NodeId(0), d), d);
    }
}
