//! Simulation time.
//!
//! Time is tracked in integer microseconds ([`SimTime`]) to keep event
//! ordering exact and reproducible across platforms; durations are the
//! matching [`SimDuration`]. Floating-point seconds are accepted and
//! produced only at the API boundary.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the run.
///
/// # Example
///
/// ```
/// use liteworp_netsim::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_micros(), 1_500_000);
/// assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from floating-point seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_micros(secs))
    }

    /// This instant in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant in floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from floating-point seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_micros(secs))
    }

    /// This duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by a non-negative factor, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

fn secs_to_micros(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "seconds must be finite and non-negative, got {secs}"
    );
    let us = secs * 1e6;
    assert!(us <= u64::MAX as f64, "time value {secs}s overflows");
    us.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(self.0 >= rhs.0, "SimTime subtraction would be negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(self.0 >= rhs.0, "SimDuration subtraction would be negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_seconds() {
        let t = SimTime::from_secs_f64(2.5);
        assert_eq!(t.as_micros(), 2_500_000);
        assert_eq!(t.as_secs_f64(), 2.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        assert_eq!((t - SimTime::from_micros(10)).as_micros(), 5);
        let mut d = SimDuration::from_millis(1);
        d += SimDuration::from_micros(1);
        assert_eq!(d.as_micros(), 1_001);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_micros(5);
        let late = SimTime::from_micros(9);
        assert_eq!(late.saturating_since(early).as_micros(), 4);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn mul_rounds() {
        let d = SimDuration::from_micros(10).mul_f64(0.25);
        assert_eq!(d.as_micros(), 3); // 2.5 rounds to even-ish nearest: 3
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_seconds() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "would be negative")]
    fn rejects_negative_subtraction() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.25).to_string(), "1.250000s");
        assert_eq!(SimDuration::from_millis(30).to_string(), "0.030000s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }
}
