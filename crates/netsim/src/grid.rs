//! Uniform spatial bucket index over a square field.
//!
//! Both [`crate::field::Field`] (static node positions) and
//! [`crate::medium::Medium`] (live transmissions) answer disc queries —
//! "everything within `radius` of `center`". A [`Buckets`] grid with cell
//! size equal to the nominal radio range turns those from O(N) scans into
//! visits of the O(1) cells adjacent to the query disc.
//!
//! # Superset-candidate contract
//!
//! The grid never answers a query exactly. [`Buckets::for_each_candidate`]
//! visits every value whose cell *could* intersect the disc — a superset of
//! the true matches — and the caller applies the same exact floating-point
//! predicate the old brute-force scan used (`distance_to(center) <=
//! radius`). Membership therefore cannot drift by even one ULP from the
//! pre-index code: the grid only prunes points that are provably outside
//! the disc (their cell is more than `ceil(radius / cell)` cells away on
//! an axis, hence more than `radius` meters away).
//!
//! Out-of-field coordinates are clamped onto the edge cells by a monotone
//! (1-Lipschitz in cell units) projection, so the superset property holds
//! for arbitrary query centers, not just in-field ones.

use crate::field::Position;

/// A uniform grid of buckets over a square `[0, side]²`, with square cells
/// of `cell` meters per axis (the last row/column absorbs any partial
/// remainder). Values are whatever identifies the indexed object: node ids
/// for a [`crate::field::Field`], transmission sequence numbers for a
/// [`crate::medium::Medium`].
#[derive(Debug, Clone)]
pub(crate) struct Buckets<T> {
    cell: f64,
    nx: usize,
    cells: Vec<Vec<T>>,
}

impl<T: Copy + PartialEq> Buckets<T> {
    /// Creates an empty grid covering `[0, side]²` with `cell`-sized
    /// buckets.
    ///
    /// # Panics
    ///
    /// Panics if `side` or `cell` is not positive.
    pub(crate) fn new(side: f64, cell: f64) -> Self {
        assert!(side > 0.0, "grid side must be positive");
        assert!(cell > 0.0, "grid cell size must be positive");
        let nx = ((side / cell).ceil() as usize).max(1);
        Buckets {
            cell,
            nx,
            cells: vec![Vec::new(); nx * nx],
        }
    }

    /// Cells per axis (for tests / diagnostics).
    #[cfg(test)]
    pub(crate) fn cells_per_axis(&self) -> usize {
        self.nx
    }

    fn axis_index(&self, coord: f64) -> usize {
        ((coord.max(0.0) / self.cell) as usize).min(self.nx - 1)
    }

    fn cell_index(&self, p: Position) -> usize {
        self.axis_index(p.y) * self.nx + self.axis_index(p.x)
    }

    /// Inserts `value` at position `p`. Values within one cell keep
    /// insertion order until a [`Buckets::remove`] disturbs it.
    pub(crate) fn insert(&mut self, p: Position, value: T) {
        let idx = self.cell_index(p);
        self.cells[idx].push(value);
    }

    /// Removes one occurrence of `value` from the cell containing `p`
    /// (which must be the position it was inserted at). A no-op if the
    /// value is absent.
    pub(crate) fn remove(&mut self, p: Position, value: T) {
        let idx = self.cell_index(p);
        let cell = &mut self.cells[idx];
        if let Some(at) = cell.iter().position(|v| *v == value) {
            cell.swap_remove(at);
        }
    }

    /// Visits every value whose insertion position could lie within
    /// `radius` of `center`: a **superset** of the true matches, in
    /// row-major cell order, insertion order within a cell. Callers must
    /// apply the exact distance predicate themselves.
    pub(crate) fn for_each_candidate(&self, center: Position, radius: f64, mut f: impl FnMut(T)) {
        let k = ((radius.max(0.0) / self.cell).ceil()) as usize;
        let cx = self.axis_index(center.x);
        let cy = self.axis_index(center.y);
        let x0 = cx.saturating_sub(k);
        let x1 = cx.saturating_add(k).min(self.nx - 1);
        let y0 = cy.saturating_sub(k);
        let y1 = cy.saturating_add(k).min(self.nx - 1);
        for y in y0..=y1 {
            let row = y * self.nx;
            for x in x0..=x1 {
                for &v in &self.cells[row + x] {
                    f(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(b: &Buckets<u32>, center: Position, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        b.for_each_candidate(center, radius, |v| out.push(v));
        out.sort_unstable();
        out
    }

    #[test]
    fn partial_last_cell_is_absorbed() {
        // side 100, cell 30 -> ceil(100/30) = 4 cells per axis.
        let b: Buckets<u32> = Buckets::new(100.0, 30.0);
        assert_eq!(b.cells_per_axis(), 4);
        // side smaller than one cell -> a single bucket.
        let tiny: Buckets<u32> = Buckets::new(10.0, 30.0);
        assert_eq!(tiny.cells_per_axis(), 1);
    }

    #[test]
    fn candidates_cover_the_disc() {
        let mut b = Buckets::new(100.0, 30.0);
        b.insert(Position::new(5.0, 5.0), 0);
        b.insert(Position::new(95.0, 95.0), 1);
        b.insert(Position::new(35.0, 5.0), 2);
        // Querying near the first point must yield it (and may yield the
        // adjacent-cell point, never the far corner).
        let got = collect(&b, Position::new(10.0, 5.0), 30.0);
        assert!(got.contains(&0));
        assert!(got.contains(&2), "adjacent cell is within one ring");
        assert!(!got.contains(&1), "opposite corner pruned");
    }

    #[test]
    fn boundary_point_found_from_both_sides() {
        // A value exactly on a cell edge (x = 30 with cell 30) is a
        // candidate for queries from either neighboring cell.
        let mut b = Buckets::new(100.0, 30.0);
        b.insert(Position::new(30.0, 0.0), 7);
        assert_eq!(collect(&b, Position::new(29.0, 0.0), 5.0), vec![7]);
        assert_eq!(collect(&b, Position::new(31.0, 0.0), 5.0), vec![7]);
    }

    #[test]
    fn out_of_field_coordinates_clamp_to_edge_cells() {
        let mut b = Buckets::new(100.0, 30.0);
        b.insert(Position::new(99.0, 99.0), 3);
        assert_eq!(collect(&b, Position::new(500.0, 500.0), 1.0), vec![3]);
    }

    #[test]
    fn remove_then_query_misses_value() {
        let mut b = Buckets::new(100.0, 30.0);
        let p = Position::new(50.0, 50.0);
        b.insert(p, 1);
        b.insert(p, 2);
        b.remove(p, 1);
        assert_eq!(collect(&b, p, 1.0), vec![2]);
        // Removing an absent value is a no-op.
        b.remove(p, 99);
        assert_eq!(collect(&b, p, 1.0), vec![2]);
    }

    #[test]
    fn large_radius_saturates_to_whole_grid() {
        let mut b = Buckets::new(100.0, 30.0);
        b.insert(Position::new(1.0, 1.0), 0);
        b.insert(Position::new(99.0, 99.0), 1);
        assert_eq!(collect(&b, Position::new(50.0, 50.0), 1e9), vec![0, 1]);
    }
}
