//! Frames on the wireless medium.
//!
//! A [`Frame`] is what the radio delivers: the transmitter's identity, the
//! link-layer destination, the wire size, the transmit power, and the
//! protocol payload. The simulator is generic over the payload type, so
//! higher layers define their own packet enums.
//!
//! Every in-range node receives every frame (wireless is a broadcast
//! medium); the link destination is advisory and is what makes *overhearing*
//! — the heart of LITEWORP's local monitoring — possible.

use crate::field::NodeId;
use crate::time::SimDuration;

/// Link-layer destination of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// One-hop broadcast: addressed to every node in range.
    Broadcast,
    /// Addressed to a specific neighbor (others still overhear it).
    Unicast(NodeId),
}

impl Dest {
    /// Whether this destination addresses `node`.
    pub fn addresses(&self, node: NodeId) -> bool {
        match *self {
            Dest::Broadcast => true,
            Dest::Unicast(d) => d == node,
        }
    }
}

/// Transmit power for a frame.
///
/// Normal transmissions propagate to the nominal communication range; a
/// high-power transmission (wormhole mode 3, Section 3.3) multiplies it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TxPower {
    /// The nominal power every legitimate node uses.
    Normal,
    /// Boosted power: range is multiplied by the given factor (> 1).
    High(f64),
}

impl TxPower {
    /// Effective range for a nominal range `r`.
    pub fn effective_range(&self, r: f64) -> f64 {
        match *self {
            TxPower::Normal => r,
            TxPower::High(mult) => r * mult,
        }
    }
}

/// A request to transmit, produced by node logic.
#[derive(Debug, Clone)]
pub struct FrameSpec<P> {
    /// Link-layer destination.
    pub dest: Dest,
    /// Protocol payload.
    pub payload: P,
    /// Wire size in bytes (drives transmission duration at the channel
    /// bitrate).
    pub bytes: usize,
    /// Transmit power.
    pub power: TxPower,
    /// When `true` the MAC skips the random backoff — the *protocol
    /// deviation* (rushing) behavior of Section 3.5. Honest nodes leave
    /// this `false`.
    pub rushed: bool,
}

impl<P> FrameSpec<P> {
    /// A normal-power, non-rushed frame.
    pub fn new(dest: Dest, payload: P, bytes: usize) -> Self {
        FrameSpec {
            dest,
            payload,
            bytes,
            power: TxPower::Normal,
            rushed: false,
        }
    }

    /// Same frame at high power (range multiplied by `mult`).
    ///
    /// # Panics
    ///
    /// Panics if `mult <= 1.0` (use [`TxPower::Normal`] instead).
    pub fn with_high_power(mut self, mult: f64) -> Self {
        assert!(
            mult > 1.0,
            "high-power multiplier must exceed 1, got {mult}"
        );
        self.power = TxPower::High(mult);
        self
    }

    /// Same frame with the MAC backoff skipped (rushing).
    pub fn rushed(mut self) -> Self {
        self.rushed = true;
        self
    }
}

/// A frame as delivered to a receiver.
#[derive(Debug, Clone)]
pub struct Frame<P> {
    /// The node whose radio transmitted this frame.
    pub transmitter: NodeId,
    /// Link-layer destination.
    pub dest: Dest,
    /// Protocol payload.
    pub payload: P,
    /// Wire size in bytes.
    pub bytes: usize,
    /// Power it was sent at.
    pub power: TxPower,
}

impl<P> Frame<P> {
    /// Whether this frame is link-addressed to `node` (broadcasts address
    /// everyone). A `false` result means `node` merely overheard it.
    pub fn addressed_to(&self, node: NodeId) -> bool {
        self.dest.addresses(node)
    }

    /// Transmission duration at `bitrate_bps` bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate_bps` is zero.
    pub fn airtime(&self, bitrate_bps: u64) -> SimDuration {
        airtime(self.bytes, bitrate_bps)
    }
}

/// Airtime of a `bytes`-long frame at `bitrate_bps`.
///
/// # Panics
///
/// Panics if `bitrate_bps` is zero.
///
/// # Example
///
/// ```
/// use liteworp_netsim::frame::airtime;
///
/// // 40 kbps channel (the paper's Table 2): a 50-byte frame is 10 ms.
/// assert_eq!(airtime(50, 40_000).as_micros(), 10_000);
/// ```
pub fn airtime(bytes: usize, bitrate_bps: u64) -> SimDuration {
    assert!(bitrate_bps > 0, "bitrate must be positive");
    let bits = bytes as u64 * 8;
    SimDuration::from_micros(bits * 1_000_000 / bitrate_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_addressing() {
        assert!(Dest::Broadcast.addresses(NodeId(3)));
        assert!(Dest::Unicast(NodeId(3)).addresses(NodeId(3)));
        assert!(!Dest::Unicast(NodeId(3)).addresses(NodeId(4)));
    }

    #[test]
    fn power_scales_range() {
        assert_eq!(TxPower::Normal.effective_range(30.0), 30.0);
        assert_eq!(TxPower::High(3.0).effective_range(30.0), 90.0);
    }

    #[test]
    fn airtime_on_40kbps() {
        // Table 2 channel: 40 kbps. 100 bytes = 800 bits = 20 ms.
        assert_eq!(airtime(100, 40_000).as_micros(), 20_000);
        assert_eq!(airtime(0, 40_000), SimDuration::ZERO);
    }

    #[test]
    fn spec_builders() {
        let spec = FrameSpec::new(Dest::Broadcast, (), 10)
            .with_high_power(2.0)
            .rushed();
        assert_eq!(spec.power, TxPower::High(2.0));
        assert!(spec.rushed);
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn rejects_weak_high_power() {
        FrameSpec::new(Dest::Broadcast, (), 10).with_high_power(0.5);
    }

    #[test]
    fn frame_addressing_matches_dest() {
        let f = Frame {
            transmitter: NodeId(1),
            dest: Dest::Unicast(NodeId(2)),
            payload: (),
            bytes: 4,
            power: TxPower::Normal,
        };
        assert!(f.addressed_to(NodeId(2)));
        assert!(!f.addressed_to(NodeId(9)));
        assert_eq!(f.airtime(8_000_000).as_micros(), 4);
    }
}
