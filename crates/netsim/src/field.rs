//! Node identities, positions, and deployment fields.
//!
//! The paper deploys nodes uniformly at random over a square field whose
//! side scales with the node count to hold the average density constant
//! (Section 6: "the field size varies (80×80 m …) with the number of
//! nodes"). [`Field`] reproduces that, and answers the geometric queries the
//! rest of the system needs: who is in range of whom, connectivity, and
//! distance.

use crate::grid::Buckets;
use liteworp_runner::rng::Rng;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;

/// Identity of a node in the simulated network.
///
/// # Example
///
/// ```
/// use liteworp_netsim::field::NodeId;
///
/// let id = NodeId(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(id.to_string(), "n7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// This identity as a `usize` index into per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A position on the 2-D deployment field, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other` in meters.
    pub fn distance_to(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A square deployment field with node positions.
///
/// # Example
///
/// Deploy 50 nodes at an average density of 8 neighbors per node within a
/// 30 m range, then check the field side matches the density:
///
/// ```
/// use liteworp_netsim::field::Field;
/// use liteworp_netsim::rng::Pcg32;
///
/// let mut rng = Pcg32::seed_from_u64(7);
/// let field = Field::with_average_neighbors(50, 8.0, 30.0, &mut rng);
/// assert_eq!(field.len(), 50);
/// let n_b: f64 = (0..50)
///     .map(|i| field.in_range_of(liteworp_netsim::field::NodeId(i as u32)).len() as f64)
///     .sum::<f64>() / 50.0;
/// assert!(n_b > 4.0, "average degree {n_b} unexpectedly low");
/// ```
#[derive(Debug, Clone)]
pub struct Field {
    side: f64,
    range: f64,
    positions: Vec<Position>,
    /// Spatial bucket index (cell size = `range`): disc queries visit only
    /// the cells adjacent to the query disc instead of every node. Grid
    /// answers are candidate supersets; the exact distance predicate below
    /// keeps every query set-identical to the former brute-force scan.
    grid: Buckets<u32>,
    /// Reusable BFS state for [`Field::hop_distance`] / connectivity,
    /// generation-stamped so re-use needs no clearing.
    scratch: RefCell<BfsScratch>,
}

/// Preallocated breadth-first-search state. `stamp[i] == epoch` means node
/// `i` was visited in the current traversal; bumping `epoch` resets the
/// whole bitmap in O(1).
#[derive(Debug, Clone, Default)]
struct BfsScratch {
    stamp: Vec<u32>,
    epoch: u32,
    queue: VecDeque<(u32, u32)>,
}

impl BfsScratch {
    /// Starts a fresh traversal over `n` nodes.
    fn begin(&mut self, n: usize) {
        self.queue.clear();
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One O(n) sweep every 2^32 traversals keeps stamps unambiguous.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    fn visited(&self, id: u32) -> bool {
        self.stamp[id as usize] == self.epoch
    }

    fn visit(&mut self, id: u32) {
        self.stamp[id as usize] = self.epoch;
    }
}

impl Field {
    /// Creates a field from explicit positions.
    ///
    /// # Panics
    ///
    /// Panics if `side` or `range` is not positive, or a position lies
    /// outside the field.
    pub fn from_positions(side: f64, range: f64, positions: Vec<Position>) -> Self {
        assert!(side > 0.0, "field side must be positive");
        assert!(range > 0.0, "communication range must be positive");
        for (i, p) in positions.iter().enumerate() {
            assert!(
                (0.0..=side).contains(&p.x) && (0.0..=side).contains(&p.y),
                "position {i} ({}, {}) outside the {side} m field",
                p.x,
                p.y
            );
        }
        let mut grid = Buckets::new(side, range);
        for (i, p) in positions.iter().enumerate() {
            grid.insert(*p, i as u32);
        }
        Field {
            side,
            range,
            positions,
            grid,
            scratch: RefCell::new(BfsScratch::default()),
        }
    }

    /// Deploys `count` nodes uniformly at random over a square of the given
    /// side length.
    pub fn uniform_random<R: Rng>(count: usize, side: f64, range: f64, rng: &mut R) -> Self {
        assert!(side > 0.0, "field side must be positive");
        let positions = (0..count)
            .map(|_| Position::new(rng.gen_range(0.0..=side), rng.gen_range(0.0..=side)))
            .collect();
        Field::from_positions(side, range, positions)
    }

    /// Deploys `count` nodes so the *average* number of neighbors per node
    /// is `n_b` for communication range `range` — the paper's density
    /// control (`N_B = π r² d`, `side = sqrt(N / d)`).
    pub fn with_average_neighbors<R: Rng>(count: usize, n_b: f64, range: f64, rng: &mut R) -> Self {
        assert!(n_b > 0.0, "average neighbor count must be positive");
        let density = n_b / (std::f64::consts::PI * range * range);
        let side = (count as f64 / density).sqrt();
        Field::uniform_random(count, side, range, rng)
    }

    /// Number of deployed nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the field is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The side length of the square field, in meters.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// The nominal communication range, in meters.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn position(&self, id: NodeId) -> Position {
        self.positions[id.index()]
    }

    /// All node positions, indexed by [`NodeId::index`].
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Distance between two nodes in meters.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance_to(&self.position(b))
    }

    /// Whether two distinct nodes are within communication range.
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.distance(a, b) <= self.range
    }

    /// All nodes within communication range of `id` (excluding itself),
    /// in ascending id order.
    pub fn in_range_of(&self, id: NodeId) -> Vec<NodeId> {
        let origin = self.position(id);
        let mut out = Vec::new();
        self.grid.for_each_candidate(origin, self.range, |other| {
            let other = NodeId(other);
            if self.in_range(id, other) {
                out.push(other);
            }
        });
        out.sort_unstable();
        out
    }

    /// All nodes whose position lies within `radius` meters of `center`
    /// (including any node exactly at `center`), in ascending id order.
    ///
    /// This is the reception fan-out query: the simulator asks it with a
    /// transmission's origin and *effective* range (which a high-power
    /// transmission stretches beyond [`Field::range`]) instead of walking
    /// every node. The grid supplies a candidate superset; the exact disc
    /// predicate `distance_to(center) <= radius` keeps the result
    /// set-identical to a brute-force scan over all nodes.
    pub fn nodes_within(&self, center: Position, radius: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.nodes_within_into(center, radius, &mut out);
        out
    }

    /// Like [`Field::nodes_within`] but writes into a caller-provided
    /// buffer (cleared first), so per-event queries on the simulator hot
    /// path allocate nothing in steady state.
    pub fn nodes_within_into(&self, center: Position, radius: f64, out: &mut Vec<NodeId>) {
        out.clear();
        self.grid.for_each_candidate(center, radius, |id| {
            if self.positions[id as usize].distance_to(&center) <= radius {
                out.push(NodeId(id));
            }
        });
        out.sort_unstable();
    }

    /// Visits the in-range neighbors of `u` without allocating, in
    /// deterministic (grid-cell) order. Traversal-internal helper for the
    /// BFS routines; public queries return sorted `Vec`s instead.
    fn for_each_in_range_of(&self, u: NodeId, mut f: impl FnMut(NodeId)) {
        let origin = self.position(u);
        self.grid.for_each_candidate(origin, self.range, |v| {
            let v = NodeId(v);
            if self.in_range(u, v) {
                f(v);
            }
        });
    }

    /// Number of hops on the shortest path between `a` and `b` over the
    /// disc graph, or `None` if disconnected.
    ///
    /// Reuses a preallocated generation-stamped visited bitmap across
    /// calls — this sits on the [`Field::connected_with_average_neighbors`]
    /// retry loop and colluder placement, so per-call allocation matters.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let mut guard = self.scratch.borrow_mut();
        let s = &mut *guard;
        s.begin(self.positions.len());
        s.visit(a.0);
        s.queue.push_back((a.0, 0));
        while let Some((u, depth)) = s.queue.pop_front() {
            let mut found = None;
            self.for_each_in_range_of(NodeId(u), |vid| {
                if found.is_some() || s.visited(vid.0) {
                    return;
                }
                s.visit(vid.0);
                if vid == b {
                    found = Some(depth as usize + 1);
                } else {
                    s.queue.push_back((vid.0, depth + 1));
                }
            });
            if found.is_some() {
                return found;
            }
        }
        None
    }

    /// All nodes reachable from `origin` in at most `max_hops` hops of
    /// the disc graph (excluding `origin` itself), in ascending id order.
    ///
    /// This is the *h-hop neighborhood* scale experiments use to build
    /// local traffic pools: with TTL-scoped route discovery, exactly
    /// these nodes are discoverable from `origin`. Reuses the same
    /// generation-stamped BFS scratch as [`Field::hop_distance`].
    pub fn nodes_within_hops(&self, origin: NodeId, max_hops: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        if max_hops == 0 || origin.index() >= self.positions.len() {
            return out;
        }
        let mut guard = self.scratch.borrow_mut();
        let s = &mut *guard;
        s.begin(self.positions.len());
        s.visit(origin.0);
        s.queue.push_back((origin.0, 0));
        while let Some((u, depth)) = s.queue.pop_front() {
            if depth >= max_hops {
                continue;
            }
            self.for_each_in_range_of(NodeId(u), |vid| {
                if s.visited(vid.0) {
                    return;
                }
                s.visit(vid.0);
                out.push(vid);
                s.queue.push_back((vid.0, depth + 1));
            });
        }
        out.sort_unstable();
        out
    }

    /// Whether the disc graph over all nodes is connected.
    pub fn is_connected(&self) -> bool {
        let n = self.positions.len();
        if n <= 1 {
            return true;
        }
        let mut guard = self.scratch.borrow_mut();
        let s = &mut *guard;
        s.begin(n);
        s.visit(0);
        s.queue.push_back((0, 0));
        let mut count = 1usize;
        while let Some((u, _)) = s.queue.pop_front() {
            self.for_each_in_range_of(NodeId(u), |vid| {
                if !s.visited(vid.0) {
                    s.visit(vid.0);
                    count += 1;
                    s.queue.push_back((vid.0, 0));
                }
            });
        }
        count == n
    }

    /// Re-deploys until the field is connected, up to `attempts` tries.
    /// Returns `None` if no connected deployment was found.
    pub fn connected_with_average_neighbors<R: Rng>(
        count: usize,
        n_b: f64,
        range: f64,
        attempts: usize,
        rng: &mut R,
    ) -> Option<Self> {
        for _ in 0..attempts {
            let f = Field::with_average_neighbors(count, n_b, range, rng);
            if f.is_connected() {
                return Some(f);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liteworp_runner::rng::Pcg32;

    fn line_field() -> Field {
        // Nodes in a line 25 m apart with range 30: a chain.
        let positions = (0..5)
            .map(|i| Position::new(25.0 * i as f64, 0.0))
            .collect();
        Field::from_positions(100.0, 30.0, positions)
    }

    #[test]
    fn distance_and_range() {
        let f = line_field();
        assert_eq!(f.distance(NodeId(0), NodeId(1)), 25.0);
        assert!(f.in_range(NodeId(0), NodeId(1)));
        assert!(!f.in_range(NodeId(0), NodeId(2)));
        assert!(!f.in_range(NodeId(2), NodeId(2)), "self is not a neighbor");
    }

    #[test]
    fn in_range_of_lists_neighbors_sorted() {
        let f = line_field();
        assert_eq!(f.in_range_of(NodeId(2)), vec![NodeId(1), NodeId(3)]);
        assert_eq!(f.in_range_of(NodeId(0)), vec![NodeId(1)]);
    }

    #[test]
    fn nodes_within_hops_matches_hop_distance() {
        let f = line_field();
        assert_eq!(f.nodes_within_hops(NodeId(0), 0), vec![]);
        assert_eq!(f.nodes_within_hops(NodeId(0), 1), f.in_range_of(NodeId(0)));
        assert_eq!(
            f.nodes_within_hops(NodeId(0), 2),
            vec![NodeId(1), NodeId(2)]
        );
        // On a random field, h-hop membership must agree with
        // hop_distance for every node.
        let mut rng = Pcg32::seed_from_u64(12);
        let r = Field::with_average_neighbors(60, 8.0, 30.0, &mut rng);
        for h in [1u32, 3] {
            let got = r.nodes_within_hops(NodeId(0), h);
            let want: Vec<NodeId> = (1..r.len() as u32)
                .map(NodeId)
                .filter(|&v| {
                    r.hop_distance(NodeId(0), v)
                        .is_some_and(|d| d <= h as usize)
                })
                .collect();
            assert_eq!(got, want, "h = {h}");
        }
    }

    #[test]
    fn hop_distance_on_chain() {
        let f = line_field();
        assert_eq!(f.hop_distance(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(f.hop_distance(NodeId(1), NodeId(1)), Some(0));
    }

    #[test]
    fn hop_distance_disconnected() {
        let positions = vec![Position::new(0.0, 0.0), Position::new(90.0, 0.0)];
        let f = Field::from_positions(100.0, 30.0, positions);
        assert_eq!(f.hop_distance(NodeId(0), NodeId(1)), None);
        assert!(!f.is_connected());
    }

    #[test]
    fn chain_is_connected() {
        assert!(line_field().is_connected());
    }

    #[test]
    fn density_targets_average_degree() {
        // With enough nodes, the empirical mean degree approaches N_B
        // (edge effects bias it slightly low).
        let mut rng = Pcg32::seed_from_u64(42);
        let f = Field::with_average_neighbors(400, 8.0, 30.0, &mut rng);
        let mean: f64 = (0..400)
            .map(|i| f.in_range_of(NodeId(i as u32)).len() as f64)
            .sum::<f64>()
            / 400.0;
        assert!(
            (5.5..9.0).contains(&mean),
            "mean degree {mean} far from target 8"
        );
    }

    #[test]
    fn field_side_scales_with_count() {
        let mut rng = Pcg32::seed_from_u64(1);
        let f20 = Field::with_average_neighbors(20, 8.0, 30.0, &mut rng);
        let f100 = Field::with_average_neighbors(100, 8.0, 30.0, &mut rng);
        assert!((f100.side() / f20.side() - (5.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn deployment_is_deterministic_per_seed() {
        let a = Field::uniform_random(10, 100.0, 30.0, &mut Pcg32::seed_from_u64(9));
        let b = Field::uniform_random(10, 100.0, 30.0, &mut Pcg32::seed_from_u64(9));
        for i in 0..10 {
            assert_eq!(a.position(NodeId(i)), b.position(NodeId(i)));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_field_positions() {
        Field::from_positions(10.0, 5.0, vec![Position::new(11.0, 0.0)]);
    }

    #[test]
    fn connected_retry_finds_connected_field() {
        let mut rng = Pcg32::seed_from_u64(3);
        let f = Field::connected_with_average_neighbors(30, 8.0, 30.0, 100, &mut rng)
            .expect("should find a connected deployment");
        assert!(f.is_connected());
    }
}
