//! Node identities, positions, and deployment fields.
//!
//! The paper deploys nodes uniformly at random over a square field whose
//! side scales with the node count to hold the average density constant
//! (Section 6: "the field size varies (80×80 m …) with the number of
//! nodes"). [`Field`] reproduces that, and answers the geometric queries the
//! rest of the system needs: who is in range of whom, connectivity, and
//! distance.

use liteworp_runner::rng::Rng;
use std::fmt;

/// Identity of a node in the simulated network.
///
/// # Example
///
/// ```
/// use liteworp_netsim::field::NodeId;
///
/// let id = NodeId(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(id.to_string(), "n7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// This identity as a `usize` index into per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A position on the 2-D deployment field, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other` in meters.
    pub fn distance_to(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A square deployment field with node positions.
///
/// # Example
///
/// Deploy 50 nodes at an average density of 8 neighbors per node within a
/// 30 m range, then check the field side matches the density:
///
/// ```
/// use liteworp_netsim::field::Field;
/// use liteworp_netsim::rng::Pcg32;
///
/// let mut rng = Pcg32::seed_from_u64(7);
/// let field = Field::with_average_neighbors(50, 8.0, 30.0, &mut rng);
/// assert_eq!(field.len(), 50);
/// let n_b: f64 = (0..50)
///     .map(|i| field.in_range_of(liteworp_netsim::field::NodeId(i as u32)).len() as f64)
///     .sum::<f64>() / 50.0;
/// assert!(n_b > 4.0, "average degree {n_b} unexpectedly low");
/// ```
#[derive(Debug, Clone)]
pub struct Field {
    side: f64,
    range: f64,
    positions: Vec<Position>,
}

impl Field {
    /// Creates a field from explicit positions.
    ///
    /// # Panics
    ///
    /// Panics if `side` or `range` is not positive, or a position lies
    /// outside the field.
    pub fn from_positions(side: f64, range: f64, positions: Vec<Position>) -> Self {
        assert!(side > 0.0, "field side must be positive");
        assert!(range > 0.0, "communication range must be positive");
        for (i, p) in positions.iter().enumerate() {
            assert!(
                (0.0..=side).contains(&p.x) && (0.0..=side).contains(&p.y),
                "position {i} ({}, {}) outside the {side} m field",
                p.x,
                p.y
            );
        }
        Field {
            side,
            range,
            positions,
        }
    }

    /// Deploys `count` nodes uniformly at random over a square of the given
    /// side length.
    pub fn uniform_random<R: Rng>(count: usize, side: f64, range: f64, rng: &mut R) -> Self {
        assert!(side > 0.0, "field side must be positive");
        let positions = (0..count)
            .map(|_| Position::new(rng.gen_range(0.0..=side), rng.gen_range(0.0..=side)))
            .collect();
        Field::from_positions(side, range, positions)
    }

    /// Deploys `count` nodes so the *average* number of neighbors per node
    /// is `n_b` for communication range `range` — the paper's density
    /// control (`N_B = π r² d`, `side = sqrt(N / d)`).
    pub fn with_average_neighbors<R: Rng>(count: usize, n_b: f64, range: f64, rng: &mut R) -> Self {
        assert!(n_b > 0.0, "average neighbor count must be positive");
        let density = n_b / (std::f64::consts::PI * range * range);
        let side = (count as f64 / density).sqrt();
        Field::uniform_random(count, side, range, rng)
    }

    /// Number of deployed nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the field is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The side length of the square field, in meters.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// The nominal communication range, in meters.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn position(&self, id: NodeId) -> Position {
        self.positions[id.index()]
    }

    /// All node positions, indexed by [`NodeId::index`].
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Distance between two nodes in meters.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance_to(&self.position(b))
    }

    /// Whether two distinct nodes are within communication range.
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.distance(a, b) <= self.range
    }

    /// All nodes within communication range of `id` (excluding itself),
    /// in ascending id order.
    pub fn in_range_of(&self, id: NodeId) -> Vec<NodeId> {
        (0..self.positions.len() as u32)
            .map(NodeId)
            .filter(|&other| self.in_range(id, other))
            .collect()
    }

    /// Number of hops on the shortest path between `a` and `b` over the
    /// disc graph, or `None` if disconnected.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let n = self.positions.len();
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[a.index()] = 0;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            for v in self.in_range_of(u) {
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    if v == b {
                        return Some(dist[v.index()]);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Whether the disc graph over all nodes is connected.
    pub fn is_connected(&self) -> bool {
        let n = self.positions.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for v in self.in_range_of(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Re-deploys until the field is connected, up to `attempts` tries.
    /// Returns `None` if no connected deployment was found.
    pub fn connected_with_average_neighbors<R: Rng>(
        count: usize,
        n_b: f64,
        range: f64,
        attempts: usize,
        rng: &mut R,
    ) -> Option<Self> {
        for _ in 0..attempts {
            let f = Field::with_average_neighbors(count, n_b, range, rng);
            if f.is_connected() {
                return Some(f);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liteworp_runner::rng::Pcg32;

    fn line_field() -> Field {
        // Nodes in a line 25 m apart with range 30: a chain.
        let positions = (0..5)
            .map(|i| Position::new(25.0 * i as f64, 0.0))
            .collect();
        Field::from_positions(100.0, 30.0, positions)
    }

    #[test]
    fn distance_and_range() {
        let f = line_field();
        assert_eq!(f.distance(NodeId(0), NodeId(1)), 25.0);
        assert!(f.in_range(NodeId(0), NodeId(1)));
        assert!(!f.in_range(NodeId(0), NodeId(2)));
        assert!(!f.in_range(NodeId(2), NodeId(2)), "self is not a neighbor");
    }

    #[test]
    fn in_range_of_lists_neighbors_sorted() {
        let f = line_field();
        assert_eq!(f.in_range_of(NodeId(2)), vec![NodeId(1), NodeId(3)]);
        assert_eq!(f.in_range_of(NodeId(0)), vec![NodeId(1)]);
    }

    #[test]
    fn hop_distance_on_chain() {
        let f = line_field();
        assert_eq!(f.hop_distance(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(f.hop_distance(NodeId(1), NodeId(1)), Some(0));
    }

    #[test]
    fn hop_distance_disconnected() {
        let positions = vec![Position::new(0.0, 0.0), Position::new(90.0, 0.0)];
        let f = Field::from_positions(100.0, 30.0, positions);
        assert_eq!(f.hop_distance(NodeId(0), NodeId(1)), None);
        assert!(!f.is_connected());
    }

    #[test]
    fn chain_is_connected() {
        assert!(line_field().is_connected());
    }

    #[test]
    fn density_targets_average_degree() {
        // With enough nodes, the empirical mean degree approaches N_B
        // (edge effects bias it slightly low).
        let mut rng = Pcg32::seed_from_u64(42);
        let f = Field::with_average_neighbors(400, 8.0, 30.0, &mut rng);
        let mean: f64 = (0..400)
            .map(|i| f.in_range_of(NodeId(i as u32)).len() as f64)
            .sum::<f64>()
            / 400.0;
        assert!(
            (5.5..9.0).contains(&mean),
            "mean degree {mean} far from target 8"
        );
    }

    #[test]
    fn field_side_scales_with_count() {
        let mut rng = Pcg32::seed_from_u64(1);
        let f20 = Field::with_average_neighbors(20, 8.0, 30.0, &mut rng);
        let f100 = Field::with_average_neighbors(100, 8.0, 30.0, &mut rng);
        assert!((f100.side() / f20.side() - (5.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn deployment_is_deterministic_per_seed() {
        let a = Field::uniform_random(10, 100.0, 30.0, &mut Pcg32::seed_from_u64(9));
        let b = Field::uniform_random(10, 100.0, 30.0, &mut Pcg32::seed_from_u64(9));
        for i in 0..10 {
            assert_eq!(a.position(NodeId(i)), b.position(NodeId(i)));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_field_positions() {
        Field::from_positions(10.0, 5.0, vec![Position::new(11.0, 0.0)]);
    }

    #[test]
    fn connected_retry_finds_connected_field() {
        let mut rng = Pcg32::seed_from_u64(3);
        let f = Field::connected_with_average_neighbors(30, 8.0, 30.0, 100, &mut rng)
            .expect("should find a connected deployment");
        assert!(f.is_connected());
    }
}
