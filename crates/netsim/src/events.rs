//! The indexed event queue: a binary min-heap keyed by `(sim_time, seq)`.
//!
//! Determinism contract: events at the same simulated time pop in the order
//! they were pushed. The queue stamps every push with a strictly increasing
//! sequence number and orders entries by `(time, seq)`, so ties never fall
//! through to heap-internal (unstable) ordering. This is the total order
//! the pre-index simulator enforced with its inline `Scheduled` struct,
//! extracted so it can be property-tested on its own.

use crate::time::SimTime;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inverted so the std max-heap pops the earliest (time, seq) first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// # Example
///
/// ```
/// use liteworp_netsim::events::EventQueue;
/// use liteworp_netsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_micros(5);
/// q.push(t, "first");
/// q.push(SimTime::from_micros(1), "early");
/// q.push(t, "second");
/// assert_eq!(q.pop(), Some((SimTime::from_micros(1), "early")));
/// assert_eq!(q.pop(), Some((t, "first")), "ties pop in push order");
/// assert_eq!(q.pop(), Some((t, "second")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`. Events pushed at the same time pop in
    /// push order.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// The timestamp of the next event without removing it.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest `(time, event)` pair.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_push_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), 'c');
        q.push(SimTime::from_micros(5), 'a');
        q.push(SimTime::from_micros(10), 'd');
        q.push(SimTime::from_micros(5), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn len_and_peek_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
        q.push(SimTime::from_micros(3), ());
        q.push(SimTime::from_micros(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_time(), Some(SimTime::from_micros(1)));
        q.pop();
        assert_eq!(q.next_time(), Some(SimTime::from_micros(3)));
    }

    #[test]
    fn interleaved_push_pop_keeps_tie_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        q.push(t, 0u32);
        q.push(t, 1);
        assert_eq!(q.pop(), Some((t, 0)));
        q.push(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }
}
