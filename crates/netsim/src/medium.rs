//! The shared wireless medium: in-flight transmissions, carrier sense, and
//! collision determination.
//!
//! The model is the classic disc model with per-receiver collisions:
//!
//! * a transmission from position `o` at effective range `R` is *receivable*
//!   by nodes within `R` of `o`;
//! * a receiver loses a frame if any **other** transmission whose
//!   interference disc covers the receiver overlaps it in time (this
//!   includes the hidden-terminal case), or if the receiver's own radio was
//!   transmitting at any point during the frame (half duplex);
//! * carrier sense at a prospective transmitter reports busy while any
//!   transmission's interference disc covers it.

use crate::field::{NodeId, Position};
use crate::grid::Buckets;
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// One transmission on the air (or recently completed).
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// Unique, monotonically increasing transmission id.
    pub seq: u64,
    /// Transmitting node.
    pub transmitter: NodeId,
    /// Where the transmitter is.
    pub origin: Position,
    /// When the first bit left the antenna.
    pub start: SimTime,
    /// When the last bit leaves the antenna.
    pub end: SimTime,
    /// Effective reception range in meters (already includes any
    /// high-power multiplier).
    pub range: f64,
}

impl TxRecord {
    fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        self.start < end && self.end > start
    }
}

/// Tracks transmissions long enough to answer collision queries.
///
/// Internally the live records are indexed four ways so no query walks the
/// full record set: by sequence number (lookup), by end time (amortized
/// pruning), by transmitter (the distance-independent half-duplex check),
/// and — when constructed via [`Medium::with_geometry`] — by origin cell in
/// a spatial [`Buckets`] grid (carrier sense and interference fan-in). Every
/// spatial query still applies the exact disc predicate the pre-index code
/// used, so answers are set-identical to a linear scan; `busy_until` (a max)
/// and `collides` (an any) are order-independent aggregations on top.
#[derive(Debug, Default)]
pub struct Medium {
    /// Live (and recently ended) transmissions keyed by `seq`. Iteration is
    /// ascending `seq` = insertion order, matching the former `Vec` scan.
    live: BTreeMap<u64, TxRecord>,
    /// Min-heap of `(end, seq)` driving [`Medium::prune`].
    by_end: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Live transmission seqs per transmitter, for the half-duplex check.
    by_node: BTreeMap<NodeId, Vec<u64>>,
    /// Spatial index over record origins; `None` means queries fall back to
    /// scanning all live records (geometry-free construction via
    /// [`Medium::new`], used by unit tests).
    buckets: Option<Buckets<u64>>,
    /// Multiset of live interference radii (`range * factor`, stored as
    /// `f64` bits — positive finite, so bit order = numeric order). The
    /// maximum bounds the candidate-cell ring for spatial queries.
    reaches: BTreeMap<u64, usize>,
    max_airtime: SimDuration,
    interference_factor: f64,
}

impl Medium {
    /// Creates a medium with the given interference-range factor
    /// (see [`crate::radio::RadioConfig::interference_factor`]).
    ///
    /// Spatial queries scan all live records; prefer
    /// [`Medium::with_geometry`] when the deployment geometry is known.
    ///
    /// # Panics
    ///
    /// Panics if `interference_factor < 1.0`.
    pub fn new(interference_factor: f64) -> Self {
        assert!(
            interference_factor >= 1.0,
            "interference factor must be >= 1, got {interference_factor}"
        );
        Medium {
            interference_factor,
            ..Medium::default()
        }
    }

    /// Creates a medium whose transmissions are spatially indexed over a
    /// `side`-by-`side` field with grid cells of `cell` meters (normally
    /// the nominal radio range). Query results are identical to
    /// [`Medium::new`]; only the work per query changes.
    ///
    /// # Panics
    ///
    /// Panics if `interference_factor < 1.0`, or `side`/`cell` is not
    /// positive.
    pub fn with_geometry(interference_factor: f64, side: f64, cell: f64) -> Self {
        let mut m = Medium::new(interference_factor);
        m.buckets = Some(Buckets::new(side, cell));
        m
    }

    /// The interference disc radius of a record.
    fn reach(&self, record: &TxRecord) -> f64 {
        record.range * self.interference_factor
    }

    /// Registers a transmission that is starting now.
    pub fn begin(&mut self, record: TxRecord) {
        let airtime = record.end.saturating_since(record.start);
        if airtime > self.max_airtime {
            self.max_airtime = airtime;
        }
        if let Some(b) = &mut self.buckets {
            b.insert(record.origin, record.seq);
        }
        let reach_bits = self.reach(&record).to_bits();
        *self.reaches.entry(reach_bits).or_insert(0) += 1;
        self.by_node
            .entry(record.transmitter)
            .or_default()
            .push(record.seq);
        self.by_end.push(Reverse((record.end, record.seq)));
        self.live.insert(record.seq, record);
    }

    /// Looks up a transmission by sequence number.
    pub fn get(&self, seq: u64) -> Option<&TxRecord> {
        self.live.get(&seq)
    }

    /// Visits every live record whose interference disc could cover `pos`:
    /// a superset of the true matches (callers apply the exact predicate).
    /// Uses the spatial index when present, bounded by the largest live
    /// interference radius; otherwise scans all records.
    fn for_each_near(&self, pos: Position, mut f: impl FnMut(&TxRecord)) {
        match (&self.buckets, self.reaches.keys().next_back()) {
            (Some(b), Some(&reach_bits)) => {
                b.for_each_candidate(pos, f64::from_bits(reach_bits), |seq| {
                    if let Some(r) = self.live.get(&seq) {
                        f(r);
                    }
                });
            }
            (Some(_), None) => {} // nothing on the air
            (None, _) => {
                for r in self.live.values() {
                    f(r);
                }
            }
        }
    }

    /// Carrier sense: if the channel is busy at `pos` at time `at`, returns
    /// the time the last currently-audible transmission ends.
    pub fn busy_until(&self, pos: Position, at: SimTime) -> Option<SimTime> {
        let mut latest: Option<SimTime> = None;
        self.for_each_near(pos, |r| {
            if r.start <= at
                && r.end > at
                && pos.distance_to(&r.origin) <= r.range * self.interference_factor
                && latest.is_none_or(|l| r.end > l)
            {
                latest = Some(r.end);
            }
        });
        latest
    }

    /// Whether the reception of transmission `seq` at `receiver` (located
    /// at `pos`) is destroyed by a concurrent transmission or by the
    /// receiver's own radio being busy (half duplex).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is unknown (already pruned or never begun).
    pub fn collides(&self, seq: u64, receiver: NodeId, pos: Position) -> bool {
        let subject = self
            .get(seq)
            // lint: allow(P002) invariant: queried only for live transmissions
            .expect("collision query for unknown transmission");
        let (start, end) = (subject.start, subject.end);
        // Half duplex: the receiver's own transmissions block reception
        // regardless of distance, so this arm is answered from the
        // per-transmitter index, not the spatial one.
        if let Some(own) = self.by_node.get(&receiver) {
            let busy = own
                .iter()
                .any(|&s| s != seq && self.live.get(&s).is_some_and(|r| r.overlaps(start, end)));
            if busy {
                return true;
            }
        }
        let mut hit = false;
        self.for_each_near(pos, |other| {
            if !hit
                && other.seq != seq
                && other.overlaps(start, end)
                && pos.distance_to(&other.origin) <= other.range * self.interference_factor
            {
                hit = true;
            }
        });
        hit
    }

    /// Discards records that can no longer affect any collision query.
    ///
    /// A record `B` is needed only while some in-flight transmission `A`
    /// could overlap it; since `A.end − A.start ≤ max_airtime`, any `B`
    /// with `B.end ≤ now − max_airtime` is unreachable. The end-time heap
    /// makes this O(pruned · log live) instead of a full scan.
    pub fn prune(&mut self, now: SimTime) {
        let keep_span = self.max_airtime + SimDuration::from_micros(1);
        let cutoff = SimTime::ZERO + now.saturating_since(SimTime::ZERO + keep_span);
        while let Some(&Reverse((end, seq))) = self.by_end.peek() {
            if end > cutoff {
                break;
            }
            self.by_end.pop();
            let Some(r) = self.live.remove(&seq) else {
                continue;
            };
            if let Some(b) = &mut self.buckets {
                b.remove(r.origin, seq);
            }
            let reach_bits = self.reach(&r).to_bits();
            if let Some(count) = self.reaches.get_mut(&reach_bits) {
                *count -= 1;
                if *count == 0 {
                    self.reaches.remove(&reach_bits);
                }
            }
            if let Some(own) = self.by_node.get_mut(&r.transmitter) {
                own.retain(|&s| s != seq);
                if own.is_empty() {
                    self.by_node.remove(&r.transmitter);
                }
            }
        }
    }

    /// Number of records currently retained (for tests / diagnostics).
    pub fn record_count(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, node: u32, x: f64, start: u64, end: u64, range: f64) -> TxRecord {
        TxRecord {
            seq,
            transmitter: NodeId(node),
            origin: Position::new(x, 0.0),
            start: SimTime::from_micros(start),
            end: SimTime::from_micros(end),
            range,
        }
    }

    #[test]
    fn busy_while_in_range_transmission_ongoing() {
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        let p = Position::new(25.0, 0.0);
        assert_eq!(
            m.busy_until(p, SimTime::from_micros(15)),
            Some(SimTime::from_micros(20))
        );
        // Before start and at/after end: idle.
        assert_eq!(m.busy_until(p, SimTime::from_micros(9)), None);
        assert_eq!(m.busy_until(p, SimTime::from_micros(20)), None);
        // Out of range: idle.
        let far = Position::new(40.0, 0.0);
        assert_eq!(m.busy_until(far, SimTime::from_micros(15)), None);
    }

    #[test]
    fn busy_until_reports_latest_end() {
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        m.begin(rec(2, 1, 5.0, 12, 40, 30.0));
        let p = Position::new(10.0, 0.0);
        assert_eq!(
            m.busy_until(p, SimTime::from_micros(15)),
            Some(SimTime::from_micros(40))
        );
    }

    #[test]
    fn overlapping_in_range_transmissions_collide() {
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        m.begin(rec(2, 1, 10.0, 15, 25, 30.0));
        // Receiver at x=5 hears both: collision for both frames.
        let p = Position::new(5.0, 0.0);
        assert!(m.collides(1, NodeId(9), p));
        assert!(m.collides(2, NodeId(9), p));
    }

    #[test]
    fn disjoint_times_do_not_collide() {
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        m.begin(rec(2, 1, 10.0, 20, 30, 30.0)); // starts exactly at end
        let p = Position::new(5.0, 0.0);
        assert!(!m.collides(1, NodeId(9), p));
        assert!(!m.collides(2, NodeId(9), p));
    }

    #[test]
    fn hidden_terminal_collides_at_receiver_only() {
        // Transmitters at x=0 and x=50 cannot hear each other (range 30),
        // but a receiver at x=25 is inside both discs: hidden terminal.
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        m.begin(rec(2, 1, 50.0, 12, 22, 30.0));
        let mid = Position::new(25.0, 0.0);
        assert!(m.collides(1, NodeId(9), mid));
        // A receiver near x=0 only hears the first: no collision there.
        let near = Position::new(2.0, 0.0);
        assert!(!m.collides(1, NodeId(9), near));
    }

    #[test]
    fn half_duplex_blocks_own_reception() {
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        // Node 7 transmits far away (out of interference range of anyone
        // near x=0) but overlapping in time.
        m.begin(rec(2, 7, 500.0, 12, 14, 30.0));
        let p = Position::new(5.0, 0.0);
        // Another node at the same spot is fine...
        assert!(!m.collides(1, NodeId(9), p));
        // ...but node 7 itself was transmitting: it misses the frame.
        assert!(m.collides(1, NodeId(7), p));
    }

    #[test]
    fn interference_factor_extends_collision_reach() {
        let mut m = Medium::new(2.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        m.begin(rec(2, 1, 100.0, 12, 22, 30.0));
        // x=55 is outside reception range of tx2 (30 m) but inside its
        // 60 m interference disc.
        let p = Position::new(55.0, 0.0);
        assert!(m.collides(1, NodeId(9), p));
    }

    #[test]
    fn prune_keeps_recent_records() {
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 0, 10, 30.0));
        m.begin(rec(2, 1, 0.0, 100, 110, 30.0));
        m.prune(SimTime::from_micros(110));
        // Record 1 ended at 10; horizon = 110 - 10 - 1 = 99 > 10: dropped.
        assert_eq!(m.record_count(), 1);
        assert!(m.get(1).is_none());
        assert!(m.get(2).is_some());
    }

    #[test]
    #[should_panic(expected = "unknown transmission")]
    fn collides_panics_for_unknown_seq() {
        Medium::new(1.0).collides(99, NodeId(0), Position::default());
    }
}
