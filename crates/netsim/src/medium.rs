//! The shared wireless medium: in-flight transmissions, carrier sense, and
//! collision determination.
//!
//! The model is the classic disc model with per-receiver collisions:
//!
//! * a transmission from position `o` at effective range `R` is *receivable*
//!   by nodes within `R` of `o`;
//! * a receiver loses a frame if any **other** transmission whose
//!   interference disc covers the receiver overlaps it in time (this
//!   includes the hidden-terminal case), or if the receiver's own radio was
//!   transmitting at any point during the frame (half duplex);
//! * carrier sense at a prospective transmitter reports busy while any
//!   transmission's interference disc covers it.

use crate::field::{NodeId, Position};
use crate::time::{SimDuration, SimTime};

/// One transmission on the air (or recently completed).
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// Unique, monotonically increasing transmission id.
    pub seq: u64,
    /// Transmitting node.
    pub transmitter: NodeId,
    /// Where the transmitter is.
    pub origin: Position,
    /// When the first bit left the antenna.
    pub start: SimTime,
    /// When the last bit leaves the antenna.
    pub end: SimTime,
    /// Effective reception range in meters (already includes any
    /// high-power multiplier).
    pub range: f64,
}

impl TxRecord {
    fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        self.start < end && self.end > start
    }
}

/// Tracks transmissions long enough to answer collision queries.
#[derive(Debug, Default)]
pub struct Medium {
    records: Vec<TxRecord>,
    max_airtime: SimDuration,
    interference_factor: f64,
}

impl Medium {
    /// Creates a medium with the given interference-range factor
    /// (see [`crate::radio::RadioConfig::interference_factor`]).
    ///
    /// # Panics
    ///
    /// Panics if `interference_factor < 1.0`.
    pub fn new(interference_factor: f64) -> Self {
        assert!(
            interference_factor >= 1.0,
            "interference factor must be >= 1, got {interference_factor}"
        );
        Medium {
            records: Vec::new(),
            max_airtime: SimDuration::ZERO,
            interference_factor,
        }
    }

    /// Registers a transmission that is starting now.
    pub fn begin(&mut self, record: TxRecord) {
        let airtime = record.end.saturating_since(record.start);
        if airtime > self.max_airtime {
            self.max_airtime = airtime;
        }
        self.records.push(record);
    }

    /// Looks up a transmission by sequence number.
    pub fn get(&self, seq: u64) -> Option<&TxRecord> {
        self.records.iter().find(|r| r.seq == seq)
    }

    /// Carrier sense: if the channel is busy at `pos` at time `at`, returns
    /// the time the last currently-audible transmission ends.
    pub fn busy_until(&self, pos: Position, at: SimTime) -> Option<SimTime> {
        self.records
            .iter()
            .filter(|r| r.start <= at && r.end > at)
            .filter(|r| pos.distance_to(&r.origin) <= r.range * self.interference_factor)
            .map(|r| r.end)
            .max()
    }

    /// Whether the reception of transmission `seq` at `receiver` (located
    /// at `pos`) is destroyed by a concurrent transmission or by the
    /// receiver's own radio being busy (half duplex).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is unknown (already pruned or never begun).
    pub fn collides(&self, seq: u64, receiver: NodeId, pos: Position) -> bool {
        let subject = self
            .get(seq)
            // lint: allow(P002) invariant: queried only for live transmissions
            .expect("collision query for unknown transmission");
        let (start, end) = (subject.start, subject.end);
        self.records.iter().any(|other| {
            other.seq != seq && other.overlaps(start, end) && {
                // Half duplex: the receiver's own transmissions block reception.
                other.transmitter == receiver
                    || pos.distance_to(&other.origin) <= other.range * self.interference_factor
            }
        })
    }

    /// Discards records that can no longer affect any collision query.
    ///
    /// A record `B` is needed only while some in-flight transmission `A`
    /// could overlap it; since `A.end − A.start ≤ max_airtime`, any `B`
    /// with `B.end ≤ now − max_airtime` is unreachable.
    pub fn prune(&mut self, now: SimTime) {
        let keep_span = self.max_airtime + SimDuration::from_micros(1);
        let cutoff = SimTime::ZERO + now.saturating_since(SimTime::ZERO + keep_span);
        self.records.retain(|r| r.end > cutoff);
    }

    /// Number of records currently retained (for tests / diagnostics).
    pub fn record_count(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, node: u32, x: f64, start: u64, end: u64, range: f64) -> TxRecord {
        TxRecord {
            seq,
            transmitter: NodeId(node),
            origin: Position::new(x, 0.0),
            start: SimTime::from_micros(start),
            end: SimTime::from_micros(end),
            range,
        }
    }

    #[test]
    fn busy_while_in_range_transmission_ongoing() {
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        let p = Position::new(25.0, 0.0);
        assert_eq!(
            m.busy_until(p, SimTime::from_micros(15)),
            Some(SimTime::from_micros(20))
        );
        // Before start and at/after end: idle.
        assert_eq!(m.busy_until(p, SimTime::from_micros(9)), None);
        assert_eq!(m.busy_until(p, SimTime::from_micros(20)), None);
        // Out of range: idle.
        let far = Position::new(40.0, 0.0);
        assert_eq!(m.busy_until(far, SimTime::from_micros(15)), None);
    }

    #[test]
    fn busy_until_reports_latest_end() {
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        m.begin(rec(2, 1, 5.0, 12, 40, 30.0));
        let p = Position::new(10.0, 0.0);
        assert_eq!(
            m.busy_until(p, SimTime::from_micros(15)),
            Some(SimTime::from_micros(40))
        );
    }

    #[test]
    fn overlapping_in_range_transmissions_collide() {
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        m.begin(rec(2, 1, 10.0, 15, 25, 30.0));
        // Receiver at x=5 hears both: collision for both frames.
        let p = Position::new(5.0, 0.0);
        assert!(m.collides(1, NodeId(9), p));
        assert!(m.collides(2, NodeId(9), p));
    }

    #[test]
    fn disjoint_times_do_not_collide() {
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        m.begin(rec(2, 1, 10.0, 20, 30, 30.0)); // starts exactly at end
        let p = Position::new(5.0, 0.0);
        assert!(!m.collides(1, NodeId(9), p));
        assert!(!m.collides(2, NodeId(9), p));
    }

    #[test]
    fn hidden_terminal_collides_at_receiver_only() {
        // Transmitters at x=0 and x=50 cannot hear each other (range 30),
        // but a receiver at x=25 is inside both discs: hidden terminal.
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        m.begin(rec(2, 1, 50.0, 12, 22, 30.0));
        let mid = Position::new(25.0, 0.0);
        assert!(m.collides(1, NodeId(9), mid));
        // A receiver near x=0 only hears the first: no collision there.
        let near = Position::new(2.0, 0.0);
        assert!(!m.collides(1, NodeId(9), near));
    }

    #[test]
    fn half_duplex_blocks_own_reception() {
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        // Node 7 transmits far away (out of interference range of anyone
        // near x=0) but overlapping in time.
        m.begin(rec(2, 7, 500.0, 12, 14, 30.0));
        let p = Position::new(5.0, 0.0);
        // Another node at the same spot is fine...
        assert!(!m.collides(1, NodeId(9), p));
        // ...but node 7 itself was transmitting: it misses the frame.
        assert!(m.collides(1, NodeId(7), p));
    }

    #[test]
    fn interference_factor_extends_collision_reach() {
        let mut m = Medium::new(2.0);
        m.begin(rec(1, 0, 0.0, 10, 20, 30.0));
        m.begin(rec(2, 1, 100.0, 12, 22, 30.0));
        // x=55 is outside reception range of tx2 (30 m) but inside its
        // 60 m interference disc.
        let p = Position::new(55.0, 0.0);
        assert!(m.collides(1, NodeId(9), p));
    }

    #[test]
    fn prune_keeps_recent_records() {
        let mut m = Medium::new(1.0);
        m.begin(rec(1, 0, 0.0, 0, 10, 30.0));
        m.begin(rec(2, 1, 0.0, 100, 110, 30.0));
        m.prune(SimTime::from_micros(110));
        // Record 1 ended at 10; horizon = 110 - 10 - 1 = 99 > 10: dropped.
        assert_eq!(m.record_count(), 1);
        assert!(m.get(1).is_none());
        assert!(m.get(2).is_some());
    }

    #[test]
    #[should_panic(expected = "unknown transmission")]
    fn collides_panics_for_unknown_seq() {
        Medium::new(1.0).collides(99, NodeId(0), Position::default());
    }
}
