//! Run metrics and the typed trace of notable protocol events.

use crate::field::NodeId;
use crate::time::SimTime;
use liteworp_telemetry::{Event, EventKind, EventLog};
use std::collections::BTreeMap;

/// Counters accumulated over a simulation run.
///
/// The radio layer maintains the built-in fields; protocols add their own
/// named counters through [`Metrics::incr`] / [`Metrics::add`].
///
/// # Example
///
/// ```
/// use liteworp_netsim::metrics::Metrics;
///
/// let mut m = Metrics::default();
/// m.incr("routes_established");
/// m.add("routes_established", 2);
/// assert_eq!(m.get("routes_established"), 3);
/// assert_eq!(m.get("never_touched"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Frames put on the air.
    pub frames_sent: u64,
    /// Frame receptions delivered to node logic (one per receiver).
    pub frames_delivered: u64,
    /// Frame receptions destroyed by a collision.
    pub frames_collided: u64,
    /// Frame receptions lost to channel noise.
    pub frames_lost_noise: u64,
    /// Messages carried over out-of-band tunnels.
    pub tunnel_messages: u64,
    /// MAC deferrals due to a busy channel.
    pub mac_deferrals: u64,
    custom: BTreeMap<&'static str, u64>,
}

impl Metrics {
    /// Increments a named counter by one.
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Adds `n` to a named counter.
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.custom.entry(key).or_insert(0) += n;
    }

    /// Reads a named counter (zero if never written).
    pub fn get(&self, key: &str) -> u64 {
        self.custom.get(key).copied().unwrap_or(0)
    }

    /// Iterates over all named counters in key order.
    pub fn iter_custom(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.custom.iter().map(|(&k, &v)| (k, v))
    }

    /// Folds another run's counters into this one — built-in fields and
    /// custom counters alike — so per-seed metrics aggregate into one
    /// network- or batch-wide view.
    pub fn merge(&mut self, other: &Metrics) {
        self.frames_sent += other.frames_sent;
        self.frames_delivered += other.frames_delivered;
        self.frames_collided += other.frames_collided;
        self.frames_lost_noise += other.frames_lost_noise;
        self.tunnel_messages += other.tunnel_messages;
        self.mac_deferrals += other.mac_deferrals;
        for (key, n) in other.iter_custom() {
            self.add(key, n);
        }
    }

    /// Fraction of frame receptions destroyed by collisions — the empirical
    /// counterpart of the analysis parameter `P_C`.
    pub fn collision_fraction(&self) -> f64 {
        let attempts = self.frames_delivered + self.frames_collided + self.frames_lost_noise;
        if attempts == 0 {
            0.0
        } else {
            self.frames_collided as f64 / attempts as f64
        }
    }
}

/// One isolation event, decoded from the typed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Isolation {
    /// When the isolation took effect.
    pub time: SimTime,
    /// Node that removed the suspect from its neighbor view.
    pub guard: NodeId,
    /// The isolated node.
    pub suspect: NodeId,
    /// Whether γ guard alerts (rather than a local `MalC` threshold)
    /// confirmed it.
    pub by_alerts: bool,
}

/// The typed protocol event trace of one run.
///
/// A thin simulator-facing wrapper over [`liteworp_telemetry::EventLog`]:
/// it stamps events with [`SimTime`] / [`NodeId`] at the edge and offers
/// decoded queries for the events experiments read most (suspicions,
/// isolations). Protocols record rare, analysis-relevant events here
/// (detections, isolations, route establishment), not per-packet chatter.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    log: EventLog,
}

impl Trace {
    /// Appends an event.
    pub fn record(&mut self, time: SimTime, node: NodeId, kind: EventKind) {
        self.log.record(Event {
            time_us: time.as_micros(),
            node: node.0,
            kind,
        });
    }

    /// The underlying event log (ring buffer, counters, JSONL export).
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Retained events in chronological order.
    pub fn events(&self) -> impl Iterator<Item = &Event> + '_ {
        self.log.events()
    }

    /// Exact number of events of this kind ever recorded (ring eviction
    /// does not affect it). Matches on the variant only.
    pub fn count(&self, kind: &EventKind) -> u64 {
        self.log.count(kind)
    }

    /// Decoded isolation events, in order.
    pub fn isolations(&self) -> impl Iterator<Item = Isolation> + '_ {
        self.events().filter_map(|e| match e.kind {
            EventKind::Isolated { suspect, by_alerts } => Some(Isolation {
                time: SimTime::from_micros(e.time_us),
                guard: NodeId(e.node),
                suspect: NodeId(suspect),
                by_alerts,
            }),
            _ => None,
        })
    }

    /// Decoded local suspicions as `(time, guard, suspect)`, in order.
    pub fn suspicions(&self) -> impl Iterator<Item = (SimTime, NodeId, NodeId)> + '_ {
        self.events().filter_map(|e| match e.kind {
            EventKind::Suspected { suspect } => Some((
                SimTime::from_micros(e.time_us),
                NodeId(e.node),
                NodeId(suspect),
            )),
            _ => None,
        })
    }

    /// Time of the first isolation anywhere in the network, if any.
    pub fn first_isolation_time(&self) -> Option<SimTime> {
        self.isolations().map(|i| i.time).next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_counters() {
        let mut m = Metrics::default();
        m.incr("a");
        m.incr("a");
        m.add("b", 5);
        assert_eq!(m.get("a"), 2);
        assert_eq!(m.get("b"), 5);
        assert_eq!(m.get("c"), 0);
        let all: Vec<_> = m.iter_custom().collect();
        assert_eq!(all, vec![("a", 2), ("b", 5)]);
    }

    #[test]
    fn merge_sums_builtin_and_custom_counters() {
        let mut a = Metrics {
            frames_sent: 10,
            frames_delivered: 8,
            tunnel_messages: 1,
            ..Metrics::default()
        };
        a.add("alerts", 2);
        a.incr("only_in_a");

        let mut b = Metrics {
            frames_sent: 5,
            frames_collided: 3,
            mac_deferrals: 7,
            ..Metrics::default()
        };
        b.add("alerts", 4);
        b.incr("only_in_b");

        a.merge(&b);
        assert_eq!(a.frames_sent, 15);
        assert_eq!(a.frames_delivered, 8);
        assert_eq!(a.frames_collided, 3);
        assert_eq!(a.frames_lost_noise, 0);
        assert_eq!(a.tunnel_messages, 1);
        assert_eq!(a.mac_deferrals, 7);
        assert_eq!(a.get("alerts"), 6);
        assert_eq!(a.get("only_in_a"), 1);
        assert_eq!(a.get("only_in_b"), 1);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let mut m = Metrics {
            frames_sent: 4,
            ..Metrics::default()
        };
        m.add("x", 9);
        let before = m.clone();
        m.merge(&Metrics::default());
        assert_eq!(m, before);
    }

    #[test]
    fn collision_fraction_safe_when_empty() {
        assert_eq!(Metrics::default().collision_fraction(), 0.0);
    }

    #[test]
    fn collision_fraction_counts_all_outcomes() {
        let m = Metrics {
            frames_delivered: 6,
            frames_collided: 3,
            frames_lost_noise: 1,
            ..Metrics::default()
        };
        assert!((m.collision_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn trace_decodes_typed_queries() {
        let mut t = Trace::default();
        t.record(
            SimTime::from_micros(5),
            NodeId(1),
            EventKind::Isolated {
                suspect: 9,
                by_alerts: false,
            },
        );
        t.record(
            SimTime::from_micros(7),
            NodeId(1),
            EventKind::RouteEstablished { dest: 3, hops: 2 },
        );
        t.record(
            SimTime::from_micros(9),
            NodeId(2),
            EventKind::Isolated {
                suspect: 9,
                by_alerts: true,
            },
        );
        assert_eq!(t.events().count(), 3);
        let isolations: Vec<Isolation> = t.isolations().collect();
        assert_eq!(isolations.len(), 2);
        assert_eq!(isolations[0].guard, NodeId(1));
        assert_eq!(isolations[1].suspect, NodeId(9));
        assert!(isolations[1].by_alerts);
        assert_eq!(t.first_isolation_time(), Some(SimTime::from_micros(5)));
        assert_eq!(
            t.count(&EventKind::Isolated {
                suspect: 0,
                by_alerts: false
            }),
            2
        );
        assert_eq!(Trace::default().first_isolation_time(), None);
    }
}
