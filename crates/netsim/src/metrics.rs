//! Run metrics and the trace of notable protocol events.

use crate::field::NodeId;
use crate::time::SimTime;
use std::collections::BTreeMap;

/// Counters accumulated over a simulation run.
///
/// The radio layer maintains the built-in fields; protocols add their own
/// named counters through [`Metrics::incr`] / [`Metrics::add`].
///
/// # Example
///
/// ```
/// use liteworp_netsim::metrics::Metrics;
///
/// let mut m = Metrics::default();
/// m.incr("routes_established");
/// m.add("routes_established", 2);
/// assert_eq!(m.get("routes_established"), 3);
/// assert_eq!(m.get("never_touched"), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Frames put on the air.
    pub frames_sent: u64,
    /// Frame receptions delivered to node logic (one per receiver).
    pub frames_delivered: u64,
    /// Frame receptions destroyed by a collision.
    pub frames_collided: u64,
    /// Frame receptions lost to channel noise.
    pub frames_lost_noise: u64,
    /// Messages carried over out-of-band tunnels.
    pub tunnel_messages: u64,
    /// MAC deferrals due to a busy channel.
    pub mac_deferrals: u64,
    custom: BTreeMap<&'static str, u64>,
}

impl Metrics {
    /// Increments a named counter by one.
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Adds `n` to a named counter.
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.custom.entry(key).or_insert(0) += n;
    }

    /// Reads a named counter (zero if never written).
    pub fn get(&self, key: &str) -> u64 {
        self.custom.get(key).copied().unwrap_or(0)
    }

    /// Iterates over all named counters in key order.
    pub fn iter_custom(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.custom.iter().map(|(&k, &v)| (k, v))
    }

    /// Fraction of frame receptions destroyed by collisions — the empirical
    /// counterpart of the analysis parameter `P_C`.
    pub fn collision_fraction(&self) -> f64 {
        let attempts = self.frames_delivered + self.frames_collided + self.frames_lost_noise;
        if attempts == 0 {
            0.0
        } else {
            self.frames_collided as f64 / attempts as f64
        }
    }
}

/// One notable protocol event, recorded for post-run analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub time: SimTime,
    /// Node that reported it.
    pub node: NodeId,
    /// Event tag (e.g. `"isolated"`, `"route_established"`).
    pub tag: &'static str,
    /// Event-specific value (often a peer node id).
    pub value: u64,
}

/// An append-only log of [`TraceEvent`]s.
///
/// Protocols record rare, analysis-relevant events here (detections,
/// isolations, route establishment), not per-packet chatter.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Appends an event.
    pub fn record(&mut self, time: SimTime, node: NodeId, tag: &'static str, value: u64) {
        self.events.push(TraceEvent {
            time,
            node,
            tag,
            value,
        });
    }

    /// All events in insertion (chronological) order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events with a given tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.tag == tag)
    }

    /// Time of the first event with the tag, if any.
    pub fn first_time(&self, tag: &str) -> Option<SimTime> {
        self.with_tag(tag).map(|e| e.time).next()
    }

    /// Time of the last event with the tag, if any.
    pub fn last_time(&self, tag: &str) -> Option<SimTime> {
        self.with_tag(tag).map(|e| e.time).last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_counters() {
        let mut m = Metrics::default();
        m.incr("a");
        m.incr("a");
        m.add("b", 5);
        assert_eq!(m.get("a"), 2);
        assert_eq!(m.get("b"), 5);
        assert_eq!(m.get("c"), 0);
        let all: Vec<_> = m.iter_custom().collect();
        assert_eq!(all, vec![("a", 2), ("b", 5)]);
    }

    #[test]
    fn collision_fraction_safe_when_empty() {
        assert_eq!(Metrics::default().collision_fraction(), 0.0);
    }

    #[test]
    fn collision_fraction_counts_all_outcomes() {
        let m = Metrics {
            frames_delivered: 6,
            frames_collided: 3,
            frames_lost_noise: 1,
            ..Metrics::default()
        };
        assert!((m.collision_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn trace_queries() {
        let mut t = Trace::default();
        t.record(SimTime::from_micros(5), NodeId(1), "isolated", 9);
        t.record(SimTime::from_micros(9), NodeId(2), "isolated", 9);
        t.record(SimTime::from_micros(7), NodeId(1), "route", 3);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.with_tag("isolated").count(), 2);
        assert_eq!(t.first_time("isolated"), Some(SimTime::from_micros(5)));
        assert_eq!(t.last_time("isolated"), Some(SimTime::from_micros(9)));
        assert_eq!(t.first_time("nope"), None);
    }
}
