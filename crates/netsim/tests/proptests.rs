//! Property-based tests of the simulator substrate, driven by the
//! in-repo deterministic PCG32 generator: each test checks its property
//! over many randomized cases from a fixed seed, so failures reproduce
//! exactly.

use liteworp_netsim::field::{Field, NodeId, Position};
use liteworp_netsim::frame::{airtime, Dest, Frame, FrameSpec, TxPower};
use liteworp_netsim::medium::{Medium, TxRecord};
use liteworp_netsim::prelude::{Context, NodeLogic, RadioConfig, SimDuration, SimTime, Simulator};
use liteworp_netsim::rng::{Pcg32, Rng};
use std::any::Any;

const CASES: u64 = 32;

fn arb_positions(rng: &mut Pcg32, n: usize) -> Vec<Position> {
    (0..n)
        .map(|_| Position::new(rng.gen_range(0.0f64..200.0), rng.gen_range(0.0f64..200.0)))
        .collect()
}

// ----------------------------------------------------------------------
// Field geometry.
// ----------------------------------------------------------------------

#[test]
fn in_range_is_symmetric_and_irreflexive() {
    let mut rng = Pcg32::seed_from_u64(0x6669_6501);
    for _ in 0..CASES {
        let field = Field::from_positions(200.0, 30.0, arb_positions(&mut rng, 12));
        for a in 0..12u32 {
            assert!(!field.in_range(NodeId(a), NodeId(a)));
            for b in 0..12u32 {
                assert_eq!(
                    field.in_range(NodeId(a), NodeId(b)),
                    field.in_range(NodeId(b), NodeId(a))
                );
            }
        }
    }
}

#[test]
fn hop_distance_satisfies_triangle_like_bounds() {
    let mut rng = Pcg32::seed_from_u64(0x6669_6502);
    for _ in 0..CASES {
        let field = Field::from_positions(200.0, 30.0, arb_positions(&mut rng, 10));
        for a in 0..10u32 {
            assert_eq!(field.hop_distance(NodeId(a), NodeId(a)), Some(0));
            for b in 0..10u32 {
                let d = field.hop_distance(NodeId(a), NodeId(b));
                assert_eq!(d, field.hop_distance(NodeId(b), NodeId(a)));
                if field.in_range(NodeId(a), NodeId(b)) {
                    assert_eq!(d, Some(1));
                }
                if let Some(h) = d {
                    // h hops cannot cover more than h * range meters.
                    assert!(field.distance(NodeId(a), NodeId(b)) <= h as f64 * 30.0 + 1e-9);
                }
            }
        }
    }
}

#[test]
fn connectivity_matches_pairwise_reachability() {
    let mut rng = Pcg32::seed_from_u64(0x6669_6503);
    for _ in 0..CASES {
        let field = Field::from_positions(200.0, 30.0, arb_positions(&mut rng, 8));
        let all_reachable = (1..8u32).all(|b| field.hop_distance(NodeId(0), NodeId(b)).is_some());
        assert_eq!(field.is_connected(), all_reachable);
    }
}

// ----------------------------------------------------------------------
// Frames and airtime.
// ----------------------------------------------------------------------

#[test]
fn airtime_is_monotone_in_size() {
    let mut rng = Pcg32::seed_from_u64(0x6169_7201);
    for _ in 0..CASES {
        let bytes = rng.gen_range(0usize..10_000);
        let rate = rng.gen_range(1u64..10_000_000);
        let t1 = airtime(bytes, rate);
        let t2 = airtime(bytes + 1, rate);
        assert!(t2 >= t1);
    }
}

#[test]
fn power_scaling_expands_range() {
    let mut rng = Pcg32::seed_from_u64(0x6169_7202);
    for _ in 0..CASES {
        let r = rng.gen_range(1.0f64..100.0);
        let mult = rng.gen_range(1.0f64..10.0);
        assert!(TxPower::High(mult).effective_range(r) >= TxPower::Normal.effective_range(r));
    }
}

#[test]
fn frame_addressing_is_exact() {
    let mut rng = Pcg32::seed_from_u64(0x6169_7203);
    for _ in 0..CASES {
        let tx = rng.gen_range(0u32..8);
        let dst = rng.gen_range(0u32..8);
        let probe = rng.gen_range(0u32..8);
        let f = Frame {
            transmitter: NodeId(tx),
            dest: Dest::Unicast(NodeId(dst)),
            payload: 0u8,
            bytes: 10,
            power: TxPower::Normal,
        };
        assert_eq!(f.addressed_to(NodeId(probe)), probe == dst);
    }
}

// ----------------------------------------------------------------------
// Medium: collision predicate invariants.
// ----------------------------------------------------------------------

#[test]
fn lone_transmission_never_collides() {
    let mut rng = Pcg32::seed_from_u64(0x6d65_6401);
    for _ in 0..CASES {
        let x = rng.gen_range(0.0f64..100.0);
        let start = rng.gen_range(0u64..1000);
        let len = rng.gen_range(1u64..100);
        let rx = rng.gen_range(0.0f64..100.0);
        let mut m = Medium::new(1.0);
        m.begin(TxRecord {
            seq: 1,
            transmitter: NodeId(0),
            origin: Position::new(x, 0.0),
            start: SimTime::from_micros(start),
            end: SimTime::from_micros(start + len),
            range: 30.0,
        });
        assert!(!m.collides(1, NodeId(9), Position::new(rx, 0.0)));
    }
}

#[test]
fn collision_is_mutual_for_cocoverage() {
    let mut rng = Pcg32::seed_from_u64(0x6d65_6402);
    for _ in 0..CASES {
        // Two transmitters near each other, receiver in range of both:
        // if the intervals overlap, both frames are lost at the receiver.
        let d = rng.gen_range(0.0f64..25.0);
        let s1 = rng.gen_range(0u64..100);
        let s2 = rng.gen_range(0u64..100);
        let len = rng.gen_range(10u64..50);
        let mut m = Medium::new(1.0);
        let mk = |seq, x: f64, start: u64| TxRecord {
            seq,
            transmitter: NodeId(seq as u32),
            origin: Position::new(x, 0.0),
            start: SimTime::from_micros(start),
            end: SimTime::from_micros(start + len),
            range: 30.0,
        };
        m.begin(mk(1, 0.0, s1));
        m.begin(mk(2, d, s2));
        let rx = Position::new(d / 2.0, 0.0);
        let overlap = s1 < s2 + len && s2 < s1 + len;
        assert_eq!(m.collides(1, NodeId(9), rx), overlap);
        assert_eq!(m.collides(2, NodeId(9), rx), overlap);
    }
}

// ----------------------------------------------------------------------
// Simulator: conservation of deliveries.
// ----------------------------------------------------------------------

#[test]
fn delivery_accounting_is_conserved() {
    struct Chatter;
    impl NodeLogic<u8> for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u8>, t: u64) {
            ctx.send(FrameSpec::new(Dest::Broadcast, t as u8, 20));
            if t < 10 {
                ctx.set_timer(SimDuration::from_millis(37), t + 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut meta = Pcg32::seed_from_u64(0x7369_6d01);
    for _ in 0..16 {
        let seed = meta.gen_range(0u64..50);
        let n = meta.gen_range(2usize..8);
        let mut rng = Pcg32::seed_from_u64(seed);
        let field = Field::uniform_random(n, 60.0, 30.0, &mut rng);
        let mut sim = Simulator::new(field, RadioConfig::default(), seed);
        for _ in 0..n {
            sim.push_node(Box::new(Chatter));
        }
        sim.run_until(SimTime::from_secs_f64(5.0));
        let m = sim.metrics();
        // Every potential reception is delivered, collided, or lost to
        // noise; none invented. With noise off:
        assert_eq!(m.frames_lost_noise, 0);
        // Each frame can be received by at most n-1 nodes.
        assert!(m.frames_delivered + m.frames_collided <= m.frames_sent * (n as u64 - 1));
        // Everyone transmitted 11 frames.
        assert_eq!(m.frames_sent, 11 * n as u64, "seed {seed} n {n}");
    }
}
