//! Property-based tests of the simulator substrate.

use liteworp_netsim::field::{Field, NodeId, Position};
use liteworp_netsim::frame::{airtime, Dest, Frame, FrameSpec, TxPower};
use liteworp_netsim::medium::{Medium, TxRecord};
use liteworp_netsim::prelude::{Context, NodeLogic, RadioConfig, SimDuration, SimTime, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;

fn arb_positions(n: usize) -> impl Strategy<Value = Vec<Position>> {
    proptest::collection::vec((0.0f64..200.0, 0.0f64..200.0), n..=n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Position::new(x, y)).collect())
}

proptest! {
    // ------------------------------------------------------------------
    // Field geometry.
    // ------------------------------------------------------------------
    #[test]
    fn in_range_is_symmetric_and_irreflexive(positions in arb_positions(12)) {
        let field = Field::from_positions(200.0, 30.0, positions);
        for a in 0..12u32 {
            prop_assert!(!field.in_range(NodeId(a), NodeId(a)));
            for b in 0..12u32 {
                prop_assert_eq!(
                    field.in_range(NodeId(a), NodeId(b)),
                    field.in_range(NodeId(b), NodeId(a))
                );
            }
        }
    }

    #[test]
    fn hop_distance_satisfies_triangle_like_bounds(positions in arb_positions(10)) {
        let field = Field::from_positions(200.0, 30.0, positions);
        for a in 0..10u32 {
            prop_assert_eq!(field.hop_distance(NodeId(a), NodeId(a)), Some(0));
            for b in 0..10u32 {
                let d = field.hop_distance(NodeId(a), NodeId(b));
                prop_assert_eq!(d, field.hop_distance(NodeId(b), NodeId(a)));
                if field.in_range(NodeId(a), NodeId(b)) {
                    prop_assert_eq!(d, Some(1));
                }
                if let Some(h) = d {
                    // h hops cannot cover more than h * range meters.
                    prop_assert!(field.distance(NodeId(a), NodeId(b)) <= h as f64 * 30.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn connectivity_matches_pairwise_reachability(positions in arb_positions(8)) {
        let field = Field::from_positions(200.0, 30.0, positions);
        let all_reachable = (1..8u32).all(|b| field.hop_distance(NodeId(0), NodeId(b)).is_some());
        prop_assert_eq!(field.is_connected(), all_reachable);
    }

    // ------------------------------------------------------------------
    // Frames and airtime.
    // ------------------------------------------------------------------
    #[test]
    fn airtime_is_monotone_in_size(bytes in 0usize..10_000, rate in 1u64..10_000_000) {
        let t1 = airtime(bytes, rate);
        let t2 = airtime(bytes + 1, rate);
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn power_scaling_expands_range(r in 1.0f64..100.0, mult in 1.0f64..10.0) {
        prop_assert!(TxPower::High(mult).effective_range(r) >= TxPower::Normal.effective_range(r));
    }

    #[test]
    fn frame_addressing_is_exact(tx in 0u32..8, dst in 0u32..8, probe in 0u32..8) {
        let f = Frame {
            transmitter: NodeId(tx),
            dest: Dest::Unicast(NodeId(dst)),
            payload: 0u8,
            bytes: 10,
            power: TxPower::Normal,
        };
        prop_assert_eq!(f.addressed_to(NodeId(probe)), probe == dst);
    }

    // ------------------------------------------------------------------
    // Medium: collision predicate invariants.
    // ------------------------------------------------------------------
    #[test]
    fn lone_transmission_never_collides(
        x in 0.0f64..100.0, start in 0u64..1000, len in 1u64..100, rx in 0.0f64..100.0,
    ) {
        let mut m = Medium::new(1.0);
        m.begin(TxRecord {
            seq: 1,
            transmitter: NodeId(0),
            origin: Position::new(x, 0.0),
            start: SimTime::from_micros(start),
            end: SimTime::from_micros(start + len),
            range: 30.0,
        });
        prop_assert!(!m.collides(1, NodeId(9), Position::new(rx, 0.0)));
    }

    #[test]
    fn collision_is_mutual_for_cocoverage(
        d in 0.0f64..25.0, s1 in 0u64..100, s2 in 0u64..100, len in 10u64..50,
    ) {
        // Two transmitters near each other, receiver in range of both:
        // if the intervals overlap, both frames are lost at the receiver.
        let mut m = Medium::new(1.0);
        let mk = |seq, x: f64, start: u64| TxRecord {
            seq,
            transmitter: NodeId(seq as u32),
            origin: Position::new(x, 0.0),
            start: SimTime::from_micros(start),
            end: SimTime::from_micros(start + len),
            range: 30.0,
        };
        m.begin(mk(1, 0.0, s1));
        m.begin(mk(2, d, s2));
        let rx = Position::new(d / 2.0, 0.0);
        let overlap = s1 < s2 + len && s2 < s1 + len;
        prop_assert_eq!(m.collides(1, NodeId(9), rx), overlap);
        prop_assert_eq!(m.collides(2, NodeId(9), rx), overlap);
    }

    // ------------------------------------------------------------------
    // Simulator: conservation of deliveries.
    // ------------------------------------------------------------------
    #[test]
    fn delivery_accounting_is_conserved(seed in 0u64..50, n in 2usize..8) {
        struct Chatter;
        impl NodeLogic<u8> for Chatter {
            fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, u8>, t: u64) {
                ctx.send(FrameSpec::new(Dest::Broadcast, t as u8, 20));
                if t < 10 {
                    ctx.set_timer(SimDuration::from_millis(37), t + 1);
                }
            }
            fn as_any(&self) -> &dyn Any { self }
            fn as_any_mut(&mut self) -> &mut dyn Any { self }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let field = Field::uniform_random(n, 60.0, 30.0, &mut rng);
        let mut sim = Simulator::new(field, RadioConfig::default(), seed);
        for _ in 0..n {
            sim.push_node(Box::new(Chatter));
        }
        sim.run_until(SimTime::from_secs_f64(5.0));
        let m = sim.metrics();
        // Every potential reception is delivered, collided, or lost to
        // noise; none invented. With noise off:
        prop_assert_eq!(m.frames_lost_noise, 0);
        // Each frame can be received by at most n-1 nodes.
        prop_assert!(m.frames_delivered + m.frames_collided <= m.frames_sent * (n as u64 - 1));
        // Everyone transmitted 11 frames.
        prop_assert_eq!(m.frames_sent, 11 * n as u64);
    }
}
