//! Differential property tests for the spatial index and the event queue:
//! every indexed query must be *set-identical* to the brute-force O(N²)
//! scan it replaced, over randomized PCG32 deployments — including the
//! awkward geometries (cell-boundary nodes, out-of-field probes, fields
//! smaller than one grid cell, empty fields) where an off-by-one in cell
//! arithmetic would hide at paper scale.
//!
//! Driven by the in-repo deterministic PCG32 generator, so any failure
//! reproduces exactly from the printed case parameters.

use liteworp_netsim::events::EventQueue;
use liteworp_netsim::field::{Field, NodeId, Position};
use liteworp_netsim::medium::{Medium, TxRecord};
use liteworp_netsim::rng::{Pcg32, Rng};
use liteworp_netsim::time::SimTime;

const CASES: u64 = 48;

/// A deployment that deliberately lands some nodes exactly on grid-cell
/// edges (integer multiples of the radio range) and on the field border,
/// where `floor(coord / cell)` is most fragile.
fn arb_positions(rng: &mut Pcg32, n: usize, side: f64, range: f64) -> Vec<Position> {
    (0..n)
        .map(|_| {
            let snap = rng.gen_range(0u32..4);
            let coord = |rng: &mut Pcg32| match snap {
                // Snap to a cell boundary: k * range, clamped to the field.
                0 => (rng.gen_range(0u32..8) as f64 * range).min(side),
                // Snap to the field border itself.
                1 => {
                    if rng.gen_range(0u32..2) == 0 {
                        0.0
                    } else {
                        side
                    }
                }
                _ => rng.gen_range(0.0f64..side),
            };
            Position::new(coord(rng), coord(rng))
        })
        .collect()
}

fn brute_in_disc(positions: &[Position], center: Position, radius: f64) -> Vec<NodeId> {
    (0..positions.len() as u32)
        .filter(|&i| positions[i as usize].distance_to(&center) <= radius)
        .map(NodeId)
        .collect()
}

// ----------------------------------------------------------------------
// Field: neighbor and disc queries vs the O(N²) scan.
// ----------------------------------------------------------------------

#[test]
fn neighbor_queries_match_brute_force_over_random_deployments() {
    let mut rng = Pcg32::seed_from_u64(0x6772_6401);
    for case in 0..CASES {
        // Densities from near-empty to ~40 nodes per cell; fields from
        // smaller than one cell (single-bucket grid) to many cells.
        let n = rng.gen_range(0usize..120);
        let side = rng.gen_range(10.0f64..400.0);
        let range = rng.gen_range(5.0f64..100.0);
        let positions = arb_positions(&mut rng, n, side, range);
        let field = Field::from_positions(side, range, positions.clone());
        for id in 0..n as u32 {
            let me = NodeId(id);
            let brute: Vec<NodeId> = (0..n as u32)
                .map(NodeId)
                .filter(|&other| {
                    other != me
                        && positions[other.index()].distance_to(&positions[me.index()]) <= range
                })
                .collect();
            assert_eq!(
                field.in_range_of(me),
                brute,
                "case {case}: n={n} side={side} range={range} id={id}"
            );
        }
    }
}

#[test]
fn disc_queries_match_brute_force_for_arbitrary_centers() {
    let mut rng = Pcg32::seed_from_u64(0x6772_6402);
    for case in 0..CASES {
        let n = rng.gen_range(0usize..100);
        let side = rng.gen_range(10.0f64..300.0);
        let range = rng.gen_range(5.0f64..80.0);
        let positions = arb_positions(&mut rng, n, side, range);
        let field = Field::from_positions(side, range, positions.clone());
        for _ in 0..8 {
            // Probe centers both inside and far outside the field (the
            // grid clamps them onto edge cells), radii from zero to
            // high-power discs spanning several cell rings.
            let center = Position::new(
                rng.gen_range(-100.0f64..side + 100.0),
                rng.gen_range(-100.0f64..side + 100.0),
            );
            let radius = match rng.gen_range(0u32..4) {
                0 => 0.0,
                1 => range * rng.gen_range(2.0f64..10.0),
                _ => rng.gen_range(0.0f64..range),
            };
            assert_eq!(
                field.nodes_within(center, radius),
                brute_in_disc(&positions, center, radius),
                "case {case}: n={n} side={side} range={range} \
                 center=({}, {}) radius={radius}",
                center.x,
                center.y
            );
        }
    }
}

#[test]
fn empty_field_answers_empty() {
    let field = Field::from_positions(50.0, 30.0, Vec::new());
    assert!(field
        .nodes_within(Position::new(25.0, 25.0), 1e9)
        .is_empty());
}

// ----------------------------------------------------------------------
// Medium: indexed vs geometry-free answers on the same history.
// ----------------------------------------------------------------------

#[test]
fn indexed_medium_matches_unindexed_medium() {
    let mut rng = Pcg32::seed_from_u64(0x6d65_6403);
    for case in 0..CASES {
        let side = rng.gen_range(50.0f64..300.0);
        let range = rng.gen_range(10.0f64..60.0);
        let factor = rng.gen_range(1.0f64..2.0);
        let mut plain = Medium::new(factor);
        let mut indexed = Medium::with_geometry(factor, side, range);
        let txs = rng.gen_range(1usize..20);
        for seq in 0..txs as u64 {
            let start = rng.gen_range(0u64..5_000);
            let record = |rng: &mut Pcg32| TxRecord {
                seq,
                transmitter: NodeId(rng.gen_range(0u32..8)),
                origin: Position::new(rng.gen_range(0.0f64..side), rng.gen_range(0.0f64..side)),
                start: SimTime::from_micros(start),
                end: SimTime::from_micros(start + rng.gen_range(1u64..2_000)),
                // Occasional high-power transmission reaching past one
                // grid cell ring.
                range: range
                    * if rng.gen_range(0u32..5) == 0 {
                        4.0
                    } else {
                        1.0
                    },
            };
            let mut probe_rng = rng.clone();
            plain.begin(record(&mut rng));
            indexed.begin(record(&mut probe_rng));
        }
        for _ in 0..32 {
            let pos = Position::new(
                rng.gen_range(-20.0f64..side + 20.0),
                rng.gen_range(-20.0f64..side + 20.0),
            );
            let at = SimTime::from_micros(rng.gen_range(0u64..8_000));
            assert_eq!(
                plain.busy_until(pos, at),
                indexed.busy_until(pos, at),
                "case {case}: busy_until at ({}, {})",
                pos.x,
                pos.y
            );
            let seq = rng.gen_range(0u64..txs as u64);
            let receiver = NodeId(rng.gen_range(0u32..8));
            assert_eq!(
                plain.collides(seq, receiver, pos),
                indexed.collides(seq, receiver, pos),
                "case {case}: collides seq={seq} receiver={receiver:?} at ({}, {})",
                pos.x,
                pos.y
            );
        }
        // Pruning must leave both sides agreeing as well.
        let now = SimTime::from_micros(rng.gen_range(0u64..10_000));
        plain.prune(now);
        indexed.prune(now);
        assert_eq!(
            plain.record_count(),
            indexed.record_count(),
            "case {case}: prune"
        );
    }
}

// ----------------------------------------------------------------------
// Event queue: (time, seq) total order vs a reference model.
// ----------------------------------------------------------------------

#[test]
fn event_queue_matches_stable_reference_model() {
    let mut rng = Pcg32::seed_from_u64(0x6576_6501);
    for case in 0..CASES {
        let mut q = EventQueue::new();
        // Reference model: a flat list ordered by (time, push index) —
        // the determinism contract the simulator relies on for same-time
        // events.
        let mut model: Vec<(SimTime, u64, u64)> = Vec::new();
        let mut pushed = 0u64;
        let ops = rng.gen_range(10usize..200);
        for _ in 0..ops {
            // Pushes outnumber pops so ties between same-time events
            // accumulate; times are drawn from a tiny range to force
            // collisions.
            if rng.gen_range(0u32..3) < 2 {
                let t = SimTime::from_micros(rng.gen_range(0u64..8));
                q.push(t, pushed);
                model.push((t, pushed, pushed));
                pushed += 1;
            } else {
                let expect = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(t, s, _))| (t, s))
                    .map(|(i, _)| i);
                match expect {
                    Some(i) => {
                        let (t, _, v) = model.remove(i);
                        assert_eq!(q.pop(), Some((t, v)), "case {case}");
                    }
                    None => assert_eq!(q.pop(), None, "case {case}"),
                }
            }
        }
        // Drain: the remainder must come out in exactly (time, seq) order.
        while let Some(i) = model
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, s, _))| (t, s))
            .map(|(i, _)| i)
        {
            let (t, _, v) = model.remove(i);
            assert_eq!(q.pop(), Some((t, v)), "case {case}: drain");
        }
        assert_eq!(q.pop(), None, "case {case}: empty after drain");
    }
}
