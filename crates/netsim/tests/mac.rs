//! Integration tests of the MAC layer: ACK-emulated unicast retries,
//! collision indications, and carrier-sense behavior under contention.

use liteworp_netsim::field::{Field, NodeId, Position};
use liteworp_netsim::prelude::{
    Context, Dest, Frame, FrameSpec, NodeLogic, RadioConfig, SimTime, Simulator,
};
use std::any::Any;

type P = u32;

/// Sends one unicast to node 1 at t = 0.
struct OneShot {
    rushed: bool,
}
impl NodeLogic<P> for OneShot {
    fn on_start(&mut self, ctx: &mut Context<'_, P>) {
        let mut spec = FrameSpec::new(Dest::Unicast(NodeId(1)), 7, 25);
        if self.rushed {
            spec = spec.rushed();
        }
        ctx.send(spec);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Jams the channel near the receiver for a while (rushed back-to-back
/// frames), then goes quiet.
struct Jammer {
    bursts: u32,
}
impl NodeLogic<P> for Jammer {
    fn on_start(&mut self, ctx: &mut Context<'_, P>) {
        for _ in 0..self.bursts {
            ctx.send(FrameSpec::new(Dest::Broadcast, 0, 25).rushed());
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[derive(Default)]
struct Sink {
    received: u32,
    collisions: u32,
}
impl NodeLogic<P> for Sink {
    fn on_frame(&mut self, _ctx: &mut Context<'_, P>, f: &Frame<P>) {
        // Count only the unicast under test: `addressed_to` would also
        // match the jammer's broadcasts, which can land cleanly once the
        // colliding transmissions are out of the way.
        if f.dest == Dest::Unicast(NodeId(1)) {
            self.received += 1;
        }
    }
    fn on_collision(&mut self, _ctx: &mut Context<'_, P>) {
        self.collisions += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sender at 0, receiver at 25 m, hidden jammer at 50 m (in range of the
/// receiver, out of range of the sender).
fn hidden_terminal_field() -> Field {
    Field::from_positions(
        100.0,
        30.0,
        vec![
            Position::new(0.0, 0.0),
            Position::new(25.0, 0.0),
            Position::new(50.0, 0.0),
        ],
    )
}

#[test]
fn unicast_retry_recovers_from_hidden_terminal_collision() {
    // The jammer destroys the first transmission(s) at the receiver; the
    // sender cannot hear the jammer and transmits anyway, then retries
    // after the (emulated) missing ACK and eventually gets through.
    let mut sim = Simulator::new(hidden_terminal_field(), RadioConfig::default(), 3);
    sim.push_node(Box::new(OneShot { rushed: true }));
    sim.push_node(Box::new(Sink::default()));
    sim.push_node(Box::new(Jammer { bursts: 2 }));
    sim.run_until(SimTime::from_secs_f64(2.0));
    let sink: &Sink = sim.logic(NodeId(1)).as_any().downcast_ref().unwrap();
    assert_eq!(sink.received, 1, "the retry should eventually deliver");
    assert!(
        sim.metrics().get("unicast_retries") >= 1,
        "no retry happened: {:?}",
        sim.metrics()
    );
    assert!(sink.collisions >= 1, "receiver should have sensed the jam");
}

#[test]
fn retries_are_bounded_and_exhaustion_is_counted() {
    // Unicast into the void: the addressed node exists but is far out of
    // range, so every attempt fails and the budget runs out.
    let field = Field::from_positions(
        1000.0,
        30.0,
        vec![Position::new(0.0, 0.0), Position::new(900.0, 0.0)],
    );
    let radio = RadioConfig {
        unicast_retries: 3,
        ..RadioConfig::default()
    };
    let mut sim = Simulator::new(field, radio, 5);
    sim.push_node(Box::new(OneShot { rushed: false }));
    sim.push_node(Box::new(Sink::default()));
    sim.run_until(SimTime::from_secs_f64(2.0));
    assert_eq!(sim.metrics().frames_sent, 4, "original + 3 retries");
    assert_eq!(sim.metrics().get("unicast_retries"), 3);
    assert_eq!(sim.metrics().get("unicast_exhausted"), 1);
}

#[test]
fn retries_can_be_disabled() {
    let field = Field::from_positions(
        1000.0,
        30.0,
        vec![Position::new(0.0, 0.0), Position::new(900.0, 0.0)],
    );
    let radio = RadioConfig {
        unicast_retries: 0,
        ..RadioConfig::default()
    };
    let mut sim = Simulator::new(field, radio, 5);
    sim.push_node(Box::new(OneShot { rushed: false }));
    sim.push_node(Box::new(Sink::default()));
    sim.run_until(SimTime::from_secs_f64(2.0));
    assert_eq!(sim.metrics().frames_sent, 1);
    assert_eq!(sim.metrics().get("unicast_exhausted"), 1);
}

#[test]
fn broadcasts_are_never_retried() {
    struct Caster;
    impl NodeLogic<P> for Caster {
        fn on_start(&mut self, ctx: &mut Context<'_, P>) {
            ctx.send(FrameSpec::new(Dest::Broadcast, 7, 25));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    // Nobody in range at all.
    let field = Field::from_positions(
        1000.0,
        30.0,
        vec![Position::new(0.0, 0.0), Position::new(900.0, 0.0)],
    );
    let mut sim = Simulator::new(field, RadioConfig::default(), 5);
    sim.push_node(Box::new(Caster));
    sim.push_node(Box::new(Sink::default()));
    sim.run_until(SimTime::from_secs_f64(2.0));
    assert_eq!(sim.metrics().frames_sent, 1);
    assert_eq!(sim.metrics().get("unicast_retries"), 0);
}

#[test]
fn collision_indication_fires_per_destroyed_reception() {
    // Two hidden transmitters collide at the middle node repeatedly.
    let mut sim = Simulator::new(hidden_terminal_field(), RadioConfig::default(), 7);
    sim.push_node(Box::new(Jammer { bursts: 3 }));
    sim.push_node(Box::new(Sink::default()));
    sim.push_node(Box::new(Jammer { bursts: 3 }));
    sim.run_until(SimTime::from_secs_f64(2.0));
    let sink: &Sink = sim.logic(NodeId(1)).as_any().downcast_ref().unwrap();
    assert_eq!(
        sink.collisions as u64,
        sim.metrics().frames_collided,
        "every destroyed reception at the only receiver must be indicated"
    );
    assert!(sink.collisions > 0);
}

#[test]
fn external_timers_reach_the_node() {
    struct TimerSink {
        tokens: Vec<u64>,
    }
    impl NodeLogic<P> for TimerSink {
        fn on_timer(&mut self, _ctx: &mut Context<'_, P>, token: u64) {
            self.tokens.push(token);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let field = Field::from_positions(10.0, 30.0, vec![Position::new(0.0, 0.0)]);
    let mut sim = Simulator::new(field, RadioConfig::default(), 1);
    sim.push_node(Box::new(TimerSink { tokens: vec![] }));
    sim.schedule_timer(SimTime::from_secs_f64(2.0), NodeId(0), 42);
    sim.schedule_timer(SimTime::from_secs_f64(1.0), NodeId(0), 7);
    sim.run_until(SimTime::from_secs_f64(1.5));
    {
        let s: &TimerSink = sim.logic(NodeId(0)).as_any().downcast_ref().unwrap();
        assert_eq!(s.tokens, vec![7], "only the first timer has fired");
    }
    assert!(sim.has_pending_events());
    sim.run_until(SimTime::from_secs_f64(3.0));
    let s: &TimerSink = sim.logic(NodeId(0)).as_any().downcast_ref().unwrap();
    assert_eq!(s.tokens, vec![7, 42]);
    assert!(!sim.has_pending_events());
}
