//! Property tests of the typed telemetry stream over randomized small
//! wormhole scenarios, driven by the in-repo deterministic PCG32.
//!
//! Invariants checked on every run:
//! 1. The event stream is non-decreasing in sim time — the trace is
//!    recorded at dispatch, so any regression here means the simulator
//!    executed events out of order.
//! 2. Every quorum isolation (`Isolated { by_alerts: true }`) at a node
//!    is preceded, at that same node, by at least γ accepted
//!    `AlertReceived` events for the same suspect — the detection
//!    confidence index is never bypassed.

use liteworp_bench::Scenario;
use liteworp_netsim::prelude::TraceKind;
use liteworp_runner::rng::{Pcg32, Rng};
use std::collections::HashMap;

const CASES: usize = 5;

#[test]
fn event_stream_is_chronological_and_quorum_isolations_have_gamma_alerts() {
    let mut rng = Pcg32::seed_from_u64(0x7E1E_0001);
    let mut quorum_isolations = 0u64;
    for case in 0..CASES {
        let scenario = Scenario {
            nodes: rng.gen_range(24usize..32),
            malicious: 2,
            protected: true,
            seed: rng.gen_range(0u64..1000),
            ..Scenario::default()
        };
        let gamma = scenario.liteworp.confidence_index as u64;
        let mut run = scenario.build();
        run.run_until_secs(400.0);
        assert_eq!(
            run.sim().trace().log().dropped(),
            0,
            "case {case}: the ring must hold every event of a small run"
        );

        let mut last_us = 0u64;
        let mut accepted: HashMap<(u32, u32), u64> = HashMap::new();
        for e in run.sim().trace().events() {
            assert!(
                e.time_us >= last_us,
                "case {case}: event at {} us after one at {last_us} us: {e:?}",
                e.time_us
            );
            last_us = e.time_us;
            match e.kind {
                TraceKind::AlertReceived {
                    suspect,
                    accepted: true,
                    ..
                } => {
                    *accepted.entry((e.node, suspect)).or_insert(0) += 1;
                }
                TraceKind::Isolated {
                    suspect,
                    by_alerts: true,
                } => {
                    quorum_isolations += 1;
                    let n = accepted.get(&(e.node, suspect)).copied().unwrap_or(0);
                    assert!(
                        n >= gamma,
                        "case {case}: n{} isolated n{suspect} by quorum after only \
                         {n} accepted alerts (gamma = {gamma})",
                        e.node
                    );
                }
                _ => {}
            }
        }
    }
    assert!(
        quorum_isolations > 0,
        "the property is vacuous: no quorum isolation occurred in {CASES} attacked runs"
    );
}
