//! End-to-end contracts of the experiment execution engine, exercised
//! through a real (small) fig9 experiment: aggregates do not depend on
//! the thread count, and a warm cache serves every job without
//! re-simulating.

use liteworp_bench::exec::{ExecOptions, SIM_CODE_VERSION};
use liteworp_bench::experiments::fig9::{run_with, Fig9Config, Fig9Row};
use liteworp_runner::ResultCache;

fn small_cfg() -> Fig9Config {
    Fig9Config {
        nodes: 30,
        colluder_counts: vec![2],
        seeds: 2,
        duration: 300.0,
    }
}

fn assert_rows_identical(a: &[Fig9Row], b: &[Fig9Row]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.colluders, y.colluders);
        assert_eq!(x.protected, y.protected);
        assert_eq!(x.fraction_dropped.to_bits(), y.fraction_dropped.to_bits());
        assert_eq!(
            x.fraction_dropped_ci95.to_bits(),
            y.fraction_dropped_ci95.to_bits()
        );
        assert_eq!(
            x.fraction_malicious_routes.to_bits(),
            y.fraction_malicious_routes.to_bits()
        );
        assert_eq!(
            x.fraction_malicious_routes_ci95.to_bits(),
            y.fraction_malicious_routes_ci95.to_bits()
        );
    }
}

#[test]
fn fig9_aggregates_do_not_depend_on_thread_count() {
    let cfg = small_cfg();
    let run = |jobs| {
        run_with(
            &cfg,
            &ExecOptions {
                jobs: Some(jobs),
                cache: false,
                ..ExecOptions::default()
            },
        )
    };
    let (rows1, m1) = run(1);
    let (rows4, m4) = run(4);
    assert_eq!(m1.failed, 0);
    assert_eq!(m4.failed, 0);
    assert_rows_identical(&rows1, &rows4);
}

#[test]
fn fig9_rerun_is_served_entirely_from_cache() {
    let dir = std::env::temp_dir().join(format!("liteworp-bench-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = small_cfg();
    let opts = ExecOptions {
        jobs: Some(2),
        cache: true,
        // Route the cache at a temp dir instead of results/cache.
        cache_dir: Some(dir.clone()),
        ..ExecOptions::default()
    };
    let (rows_cold, m_cold) = run_with(&cfg, &opts);
    assert_eq!(m_cold.cache_hits, 0);
    assert_eq!(m_cold.cache_misses, m_cold.jobs);

    let (rows_warm, m_warm) = run_with(&cfg, &opts);
    assert_eq!(m_warm.cache_hits, m_warm.jobs, "{m_warm:?}");
    assert_eq!(m_warm.cache_misses, 0);
    assert_rows_identical(&rows_cold, &rows_warm);

    // One cache file per job, keyed under the current code version.
    assert!(!SIM_CODE_VERSION.is_empty());
    let files = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(files, m_cold.jobs);
    let _ = std::fs::remove_dir_all(&dir);

    // The binaries' default cache location is stable (resume contract).
    assert!(ResultCache::default_dir().ends_with("results/cache"));
}
