//! End-to-end survivability contracts of the supervised execution
//! engine, driven through a real (small) experiment batch:
//!
//! * a sweep killed mid-journal resumes exactly where it died and
//!   produces results byte-identical to an uninterrupted run, and
//! * injected transient engine faults recovered by retries leave the
//!   results digest untouched.

use liteworp_bench::exec::{run_cells, ExecOptions, SimCell};
use liteworp_bench::Scenario;

fn small_cell() -> SimCell {
    SimCell::snapshot(
        "resume-it",
        Scenario {
            nodes: 20,
            malicious: 0,
            protected: true,
            ..Scenario::default()
        },
        4,
        0,
        60.0,
    )
}

fn uncached(journal: Option<std::path::PathBuf>, resume: bool) -> ExecOptions {
    ExecOptions {
        jobs: Some(2),
        cache: false,
        journal,
        resume,
        ..ExecOptions::default()
    }
}

fn outcome_bytes(run: &liteworp_bench::exec::CellRun) -> String {
    use liteworp_runner::CacheValue;
    run.outcomes
        .iter()
        .flatten()
        .map(|o| o.to_json().dump())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn killed_sweep_resumes_byte_identical() {
    let dir = std::env::temp_dir().join(format!("liteworp-resume-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cell = [small_cell()];

    // Ground truth: one uninterrupted run (journaled, but never resumed).
    let full_journal = dir.join("full.journal");
    let full = run_cells(&cell, &uncached(Some(full_journal.clone()), false));
    assert_eq!(full.manifest.failed, 0);
    assert_eq!(full.manifest.journal_hits, 0);

    // Simulate a crash: keep the header plus the first two completed
    // entries, then a torn partial line — exactly what a kill -9 during
    // an append leaves behind.
    let crash_journal = dir.join("crash.journal");
    let written = std::fs::read_to_string(&full_journal).unwrap();
    let mut lines = written.split_inclusive('\n');
    let mut kept = String::new();
    for _ in 0..3 {
        kept.push_str(lines.next().expect("header + 2 entries"));
    }
    kept.push_str("{\"key\":\"torn");
    std::fs::write(&crash_journal, &kept).unwrap();

    // Resume: the two journaled jobs replay without re-simulating, the
    // rest re-run, and the merged batch is byte-identical.
    let resumed = run_cells(&cell, &uncached(Some(crash_journal), true));
    assert_eq!(resumed.manifest.journal_hits, 2, "{:?}", resumed.manifest);
    assert_eq!(resumed.manifest.failed, 0);
    assert_eq!(
        resumed.manifest.results_digest,
        full.manifest.results_digest
    );
    assert_eq!(outcome_bytes(&resumed), outcome_bytes(&full));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_engine_faults_recovered_by_retries_keep_the_digest() {
    let cell = [small_cell()];
    let clean = run_cells(&cell, &uncached(None, false));
    assert_eq!(clean.manifest.failed, 0);

    let faulty = run_cells(
        &cell,
        &ExecOptions {
            engine_faults: 0.6,
            engine_fault_seed: 9,
            max_retries: 2,
            ..uncached(None, false)
        },
    );
    assert_eq!(faulty.manifest.failed, 0, "{:?}", faulty.manifest.failures);
    // The fault plan is dense enough that at least one job actually
    // retried — otherwise this test proves nothing.
    assert!(
        !faulty.manifest.failures.retry_histogram.is_empty(),
        "no fault fired; raise engine_faults"
    );
    assert_eq!(
        faulty.manifest.results_digest,
        clean.manifest.results_digest
    );
    assert_eq!(outcome_bytes(&faulty), outcome_bytes(&clean));
}
