//! Benchmarks of whole-simulation throughput: how fast the
//! discrete-event substrate chews through the paper's workloads, with and
//! without LITEWORP, across network sizes. Std-only `harness = false`
//! binary; see `liteworp_bench::timing`.

use liteworp_bench::timing::{bench_heavy, black_box};
use liteworp_bench::Scenario;

fn bench_simulation_throughput() {
    for &nodes in &[20usize, 50, 100] {
        for protected in [false, true] {
            let label = format!(
                "simulate_60s/{}{}",
                nodes,
                if protected { "_liteworp" } else { "_baseline" }
            );
            bench_heavy(&label, 10, || {
                let mut run = Scenario {
                    nodes,
                    malicious: 2,
                    protected,
                    seed: 77,
                    ..Scenario::default()
                }
                .build();
                run.run_until_secs(60.0);
                black_box(run.data_sent())
            });
        }
    }
}

fn bench_scenario_build() {
    // Deployment + colluder placement + oracle bootstrap cost.
    bench_heavy("scenario_build_100", 20, || {
        Scenario {
            nodes: 100,
            malicious: 2,
            protected: true,
            seed: 78,
            ..Scenario::default()
        }
        .build()
    });
}

fn bench_route_flood() {
    // The first seconds of a large deployment are dominated by flooded
    // route requests and reverse-path replies — the protocol's broadcast
    // hot path, before steady-state data traffic takes over.
    bench_heavy("route_flood_100_10s", 10, || {
        let mut run = Scenario {
            nodes: 100,
            malicious: 0,
            protected: true,
            seed: 79,
            ..Scenario::default()
        }
        .build();
        run.run_until_secs(10.0);
        black_box(run.route_counts())
    });
}

fn main() {
    bench_simulation_throughput();
    bench_scenario_build();
    bench_route_flood();
}
