//! Criterion benchmarks of whole-simulation throughput: how fast the
//! discrete-event substrate chews through the paper's workloads, with and
//! without LITEWORP, across network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use liteworp_bench::Scenario;

fn bench_simulation_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_60s");
    g.sample_size(10);
    for &nodes in &[20usize, 50, 100] {
        for protected in [false, true] {
            let label = format!(
                "{}{}",
                nodes,
                if protected { "_liteworp" } else { "_baseline" }
            );
            g.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(nodes, protected),
                |b, &(nodes, protected)| {
                    b.iter(|| {
                        let mut run = Scenario {
                            nodes,
                            malicious: 2,
                            protected,
                            seed: 77,
                            ..Scenario::default()
                        }
                        .build();
                        run.run_until_secs(60.0);
                        run.data_sent()
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_scenario_build(c: &mut Criterion) {
    // Deployment + colluder placement + oracle bootstrap cost.
    c.bench_function("scenario_build_100", |b| {
        b.iter(|| {
            Scenario {
                nodes: 100,
                malicious: 2,
                protected: true,
                seed: 78,
                ..Scenario::default()
            }
            .build()
        })
    });
}

criterion_group!(benches, bench_simulation_throughput, bench_scenario_build);
criterion_main!(benches);
