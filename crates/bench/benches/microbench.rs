//! Microbenchmarks of LITEWORP's hot per-packet operations — the
//! quantities the paper's Section 5.2 computation analysis is about
//! (neighbor lookups, watch-buffer operations, tag computation), plus the
//! special functions of the analysis crate. Std-only `harness = false`
//! binary; see `liteworp_bench::timing`.

use liteworp::config::Config;
use liteworp::keys::KeyStore;
use liteworp::malc::MalcTable;
use liteworp::monitor::{LocalMonitor, PacketObs};
use liteworp::neighbor::NeighborTable;
use liteworp::types::{Micros, NodeId, PacketKind, PacketSig};
use liteworp::watch::WatchBuffer;
use liteworp_analysis::special::{binomial_tail, regularized_incomplete_beta};
use liteworp_bench::timing::{bench, black_box};
use liteworp_netsim::events::EventQueue;
use liteworp_netsim::field::{Field, NodeId as SimNodeId};
use liteworp_netsim::rng::{Pcg32, Rng};
use liteworp_netsim::time::SimTime;
use liteworp_obs as obs;
use liteworp_runner::cache::{CacheLoad, ResultCache};
use liteworp_runner::Json;

fn sig(seq: u64) -> PacketSig {
    PacketSig {
        kind: PacketKind::RouteReply,
        origin: NodeId(1),
        target: NodeId(2),
        seq,
    }
}

fn table_with_degree(n: u32) -> NeighborTable {
    let mut t = NeighborTable::new(NodeId(0));
    for i in 1..=n {
        t.add_neighbor(NodeId(i));
    }
    let all: Vec<NodeId> = (0..=n).map(NodeId).collect();
    for i in 1..=n {
        t.set_neighbor_list(NodeId(i), all.iter().copied());
    }
    t
}

fn bench_neighbor_table() {
    for degree in [8u32, 16, 32] {
        let t = table_with_degree(degree);
        bench(&format!("neighbor_table/link_plausible/{degree}"), || {
            t.link_plausible(black_box(NodeId(3)), black_box(NodeId(5)))
        });
        bench(&format!("neighbor_table/is_guard_of/{degree}"), || {
            t.is_guard_of(black_box(NodeId(3)), black_box(NodeId(5)))
        });
    }
}

fn bench_watch_buffer() {
    for fill in [16u64, 64, 256] {
        bench(&format!("watch_buffer/insert_confirm/{fill}"), || {
            let mut buf = WatchBuffer::new(512);
            for i in 0..fill {
                buf.note_transmission(NodeId(1), sig(i), Some(NodeId(2)), Micros(1000));
            }
            for i in 0..fill {
                black_box(buf.confirm_forward(NodeId(1), &sig(i), NodeId(2)));
            }
        });
        bench(&format!("watch_buffer/expire/{fill}"), || {
            let mut buf = WatchBuffer::new(512);
            for i in 0..fill {
                buf.note_transmission(NodeId(1), sig(i), Some(NodeId(2)), Micros(1000));
            }
            black_box(buf.expire(Micros(2000)))
        });
    }
}

fn bench_keys() {
    let ks = KeyStore::new(7, NodeId(1));
    let msg = [0u8; 24];
    bench("keys/tag_24B", || {
        ks.tag(black_box(NodeId(2)), black_box(&msg))
    });
    let tag = ks.tag(NodeId(2), &msg);
    let peer = KeyStore::new(7, NodeId(2));
    bench("keys/verify_24B", || {
        peer.verify(black_box(NodeId(1)), black_box(&msg), black_box(tag))
    });
}

fn bench_monitor_pipeline() {
    // The full guard-side path for one overheard forwarded packet:
    // fabrication check + watch arming.
    let mut table = table_with_degree(8);
    let mut mon = LocalMonitor::new(Config::default());
    let mut seq = 0u64;
    bench("monitor/observe_forward", || {
        seq += 1;
        // Transmission by 1, then forward by 2 claiming prev = 1.
        let tx = PacketObs {
            sender: NodeId(1),
            claimed_prev: None,
            link_dst: Some(NodeId(2)),
            sig: sig(seq),
            terminal: false,
        };
        mon.observe(&mut table, &tx, Micros(seq));
        let fwd = PacketObs {
            sender: NodeId(2),
            claimed_prev: Some(NodeId(1)),
            link_dst: Some(NodeId(3)),
            sig: sig(seq),
            terminal: false,
        };
        black_box(mon.observe(&mut table, &fwd, Micros(seq)));
    });
}

fn bench_malc() {
    // MalC accusation bookkeeping: the windowed variant pays expiry on
    // every update, the unbounded one is a pure counter bump.
    for (label, window) in [("unbounded", 0u64), ("windowed", 1_000_000)] {
        bench(&format!("malc/update/{label}"), || {
            let mut t = MalcTable::new(window);
            let mut out = 0u32;
            for i in 0..64u64 {
                out = t.record(NodeId((i % 8) as u32), 2, Micros(i * 40_000));
            }
            out
        });
    }
}

fn bench_cache_lookup() {
    // A verified hit on the content-addressed result cache: open, read,
    // checksum, parse. This is the daemon's fast path for repeated
    // requests.
    let dir = std::env::temp_dir().join(format!("liteworp-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::new(&dir);
    let key = ResultCache::key("bench-scenario", 7, "bench-v1");
    let value = Json::object([
        ("drops", Json::from(12.5)),
        ("data_sent", Json::from(4096.0)),
        ("all_detected", Json::from(true)),
    ]);
    cache.store(key, &value).expect("store bench entry");
    bench("cache/lookup_hit", || {
        match cache.load_checked(black_box(key)) {
            CacheLoad::Hit(json) => json,
            other => panic!("bench cache entry vanished: {other:?}"),
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_obs() {
    // The observability plane's cost contract. Disabled (the default for
    // every experiment bin unless --profile-folded is passed), a span is
    // one relaxed atomic load and a branch; enabled, it pays two clock
    // reads plus the thread-local stack push/pop.
    obs::disable();
    bench("obs/span_disabled", || obs::span("job"));

    // The malc/update/windowed workload with a disabled span around
    // every update: obs_smoke.sh holds this within 5% of the unspanned
    // malc/update/windowed record from the same run.
    bench("malc/update/windowed_spanned", || {
        let mut t = MalcTable::new(1_000_000);
        let mut out = 0u32;
        for i in 0..64u64 {
            let _span = obs::span("job");
            out = t.record(NodeId((i % 8) as u32), 2, Micros(i * 40_000));
        }
        out
    });

    obs::enable();
    {
        // Nested under a long-lived root, the common shape in the bins.
        let _outer = obs::span("request");
        bench("obs/span_enabled", || obs::span("job"));
    }
    obs::disable();
    obs::profile::reset();
}

fn bench_neighbor_discovery() {
    // Full-network neighbor discovery over the spatial grid: every node's
    // `in_range_of` query on an `N_B = 8` deployment. This is the sim's
    // preload path and the query the grid exists for — before the index
    // it was O(N) per node, so a lost index shows up here as an N²-shaped
    // cliff between the two sizes.
    for n in [1_000usize, 10_000] {
        let mut rng = Pcg32::seed_from_u64(0xd15c);
        let field = Field::with_average_neighbors(n, 8.0, 30.0, &mut rng);
        bench(&format!("neighbor_discovery/{n}"), || {
            let mut degree_total = 0usize;
            for i in 0..n as u32 {
                degree_total += field.in_range_of(SimNodeId(i)).len();
            }
            degree_total
        });
    }
}

fn bench_event_loop() {
    // The indexed event queue under a tie-heavy schedule: timestamps drawn
    // from a handful of distinct values so most orderings fall through to
    // the (time, seq) tie-break, with steady-state push/pop churn layered
    // on top — the simulator's inner-loop shape.
    for pending in [1_024usize, 16_384] {
        let mut rng = Pcg32::seed_from_u64(0x5eed);
        let times: Vec<SimTime> = (0..pending)
            .map(|_| SimTime::from_micros(rng.gen_range(0u64..16)))
            .collect();
        bench(&format!("event_loop/churn_{pending}"), || {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i as u32);
            }
            let mut acc = 0u64;
            while let Some((t, v)) = q.pop() {
                acc = acc.wrapping_add(t.as_micros()).wrapping_add(v as u64);
            }
            acc
        });
    }
}

fn bench_special_functions() {
    bench("special/binomial_tail_200", || {
        binomial_tail(black_box(200), black_box(120), black_box(0.55))
    });
    bench("special/incomplete_beta", || {
        regularized_incomplete_beta(black_box(12.0), black_box(30.0), black_box(0.35))
    });
}

fn main() {
    bench_neighbor_table();
    bench_watch_buffer();
    bench_keys();
    bench_monitor_pipeline();
    bench_malc();
    bench_neighbor_discovery();
    bench_event_loop();
    bench_obs();
    bench_cache_lookup();
    bench_special_functions();
}
