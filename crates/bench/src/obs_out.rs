//! The `--profile-folded [path]` flag every experiment binary accepts:
//! turn on the observability plane for the run and write the folded-stack
//! self-profile at exit.
//!
//! Bare `--profile-folded` writes `PROFILE_<bin>.folded` in the working
//! directory; `--profile-folded <path>` writes there. The output is the
//! standard folded format (`frame;frame;frame self_us`, one line per
//! distinct stack), which flamegraph renderers consume directly:
//!
//! ```text
//! flamegraph.pl PROFILE_fig8.folded > fig8.svg
//! ```

use crate::cli::Flags;
use liteworp_obs as obs;
use std::path::PathBuf;

/// Where (and whether) to write the folded self-profile, parsed from the
/// CLI. Constructing this with the flag present enables the span plane
/// for the whole process, so construct it before any work worth
/// profiling.
#[derive(Debug, Clone, Default)]
pub struct ProfileFlags {
    /// Destination of the folded output, when requested.
    pub folded: Option<PathBuf>,
}

impl ProfileFlags {
    /// Reads `--profile-folded` from parsed flags; `bin` names the
    /// default output file `PROFILE_<bin>.folded`.
    pub fn from_flags(flags: &Flags, bin: &str) -> Self {
        let folded = flags.get_str("profile-folded").map(|v| {
            if v == "true" {
                PathBuf::from(format!("PROFILE_{bin}.folded"))
            } else {
                PathBuf::from(v)
            }
        });
        if folded.is_some() {
            obs::enable();
        }
        ProfileFlags { folded }
    }

    /// Writes the accumulated profile. Call once, at the end of the run;
    /// no-op when the flag was absent.
    pub fn finish(&self) {
        let Some(path) = &self.folded else {
            return;
        };
        match obs::profile::write_folded(path) {
            Ok(()) => eprintln!("obs: wrote folded profile to {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_forms_parse() {
        let bare = ProfileFlags::from_flags(&Flags::parse(["--profile-folded"]), "fig8");
        assert_eq!(
            bare.folded.as_deref(),
            Some(std::path::Path::new("PROFILE_fig8.folded"))
        );
        let with_path =
            ProfileFlags::from_flags(&Flags::parse(["--profile-folded", "out.folded"]), "fig8");
        assert_eq!(
            with_path.folded.as_deref(),
            Some(std::path::Path::new("out.folded"))
        );
        assert!(ProfileFlags::from_flags(&Flags::default(), "fig8")
            .folded
            .is_none());
    }
}
