//! Experiment harness for the LITEWORP reproduction: scenario builder and
//! the code that regenerates every table and figure of the paper's
//! evaluation (see `DESIGN.md` for the experiment index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod chaos_exec;
pub mod cli;
pub mod exec;
pub mod experiments;
pub mod obs_out;
pub mod report;
pub mod scenario;
pub mod telemetry_out;
pub mod timeline;
pub mod timing;

pub use scenario::{Scenario, ScenarioAttack, ScenarioRun};
