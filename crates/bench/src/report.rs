//! Plain-text table rendering for experiment binaries.

/// Renders rows as a fixed-width text table with a header rule.
///
/// # Example
///
/// ```
/// use liteworp_bench::report::render_table;
///
/// let s = render_table(
///     &["x", "y"],
///     &[vec!["1".into(), "2.5".into()], vec!["10".into(), "0.25".into()]],
/// );
/// assert!(s.contains("x"));
/// assert!(s.lines().count() >= 4);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize]| -> String {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        s.push('\n');
        s
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&line(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
    }
    out
}

/// Formats a probability with enough digits to distinguish tiny values.
pub fn fmt_prob(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else if p >= 0.001 {
        format!("{p:.4}")
    } else {
        format!("{p:.3e}")
    }
}

/// Mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 when fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long"],
            &[vec!["1".into(), "2".into()], vec!["100".into(), "x".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn probability_formatting() {
        assert_eq!(fmt_prob(0.0), "0");
        assert_eq!(fmt_prob(0.5), "0.5000");
        assert!(fmt_prob(1e-9).contains('e'));
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - (2.0f64).sqrt()).abs() < 1e-12);
    }
}
