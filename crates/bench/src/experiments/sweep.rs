//! The "100% detection over a wide range of scenarios" claim (Section 6):
//! detection and isolation across network sizes and densities.

use crate::exec::{run_cells, summarize, ExecOptions, SimCell};
use crate::report::mean;
use crate::scenario::Scenario;
use liteworp_runner::{Json, Manifest};

/// Parameters of the detection sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Network sizes to test (paper: 20, 50, 100, 150).
    pub node_counts: Vec<usize>,
    /// Densities (average neighbors) to test.
    pub densities: Vec<f64>,
    /// Runs per cell.
    pub seeds: u64,
    /// Run length (seconds).
    pub duration: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            node_counts: vec![20, 50, 100, 150],
            densities: vec![8.0],
            seeds: 10,
            duration: 800.0,
        }
    }
}

/// One sweep cell.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Network size.
    pub nodes: usize,
    /// Average neighbors.
    pub avg_neighbors: f64,
    /// Fraction of runs where every colluder was detected.
    pub detection_rate: f64,
    /// Mean seconds from attack start to the first detection event.
    pub first_detection_latency: f64,
    /// Mean seconds to complete isolation (runs where it completed).
    pub isolation_latency: f64,
    /// Fraction of runs with complete isolation.
    pub isolation_rate: f64,
    /// Mean wormhole drops per run (plateau value).
    pub drops: f64,
    /// 95% confidence half-width of `drops`.
    pub drops_ci95: f64,
}

impl SweepRow {
    /// This row as JSON.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("nodes", Json::from(self.nodes)),
            ("avg_neighbors", Json::from(self.avg_neighbors)),
            ("detection_rate", Json::from(self.detection_rate)),
            (
                "first_detection_latency",
                Json::from(self.first_detection_latency),
            ),
            ("isolation_latency", Json::from(self.isolation_latency)),
            ("isolation_rate", Json::from(self.isolation_rate)),
            ("drops", Json::from(self.drops)),
            ("drops_ci95", Json::from(self.drops_ci95)),
        ])
    }
}

/// The sweep's cells, one per (size, density) pair — the exact work
/// [`run_with`] executes, exposed so services can submit the same sweep.
pub fn cells(cfg: &SweepConfig) -> Vec<SimCell> {
    let mut cells = Vec::new();
    for &nodes in &cfg.node_counts {
        for &n_b in &cfg.densities {
            cells.push(SimCell::snapshot(
                format!("sweep n={nodes} nb={n_b}"),
                Scenario {
                    nodes,
                    avg_neighbors: n_b,
                    malicious: 2,
                    protected: true,
                    ..Scenario::default()
                },
                cfg.seeds,
                4000,
                cfg.duration,
            ));
        }
    }
    cells
}

/// Runs the sweep (M = 2 colluders) on the parallel runner.
pub fn run_with(cfg: &SweepConfig, opts: &ExecOptions) -> (Vec<SweepRow>, Manifest) {
    let batch = run_cells(&cells(cfg), opts);
    let mut out = Vec::new();
    let mut cell_outcomes = batch.outcomes.into_iter();
    for &nodes in &cfg.node_counts {
        for &n_b in &cfg.densities {
            // lint: allow(P002) runner invariant: one outcome set per cell
            let outcomes = cell_outcomes.next().expect("one outcome set per cell");
            let n = outcomes.len().max(1) as f64;
            let detected = outcomes.iter().filter(|o| o.all_detected).count() as f64;
            // First-detection latency only counts runs where detection
            // completed, matching the serial harness.
            let first_latencies: Vec<f64> = outcomes
                .iter()
                .filter(|o| o.all_detected)
                .filter_map(|o| o.first_detection_latency)
                .collect();
            let iso_latencies: Vec<f64> = outcomes
                .iter()
                .filter_map(|o| o.isolation_latency)
                .collect();
            let drops = summarize(&outcomes, |o| o.drops);
            out.push(SweepRow {
                nodes,
                avg_neighbors: n_b,
                detection_rate: detected / n,
                first_detection_latency: mean(&first_latencies),
                isolation_latency: mean(&iso_latencies),
                isolation_rate: iso_latencies.len() as f64 / n,
                drops: drops.mean,
                drops_ci95: drops.ci95,
            });
        }
    }
    (out, batch.manifest)
}

/// Runs the sweep with default execution options.
pub fn run(cfg: &SweepConfig) -> Vec<SweepRow> {
    run_with(cfg, &ExecOptions::default()).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_detects_everything() {
        let cfg = SweepConfig {
            node_counts: vec![30],
            densities: vec![8.0],
            seeds: 2,
            duration: 400.0,
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].detection_rate > 0.99,
            "detection rate {}",
            rows[0].detection_rate
        );
    }
}
