//! The "100% detection over a wide range of scenarios" claim (Section 6):
//! detection and isolation across network sizes and densities.

use crate::report::mean;
use crate::scenario::Scenario;
use serde::Serialize;

/// Parameters of the detection sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Network sizes to test (paper: 20, 50, 100, 150).
    pub node_counts: Vec<usize>,
    /// Densities (average neighbors) to test.
    pub densities: Vec<f64>,
    /// Runs per cell.
    pub seeds: u64,
    /// Run length (seconds).
    pub duration: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            node_counts: vec![20, 50, 100, 150],
            densities: vec![8.0],
            seeds: 10,
            duration: 800.0,
        }
    }
}

/// One sweep cell.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Network size.
    pub nodes: usize,
    /// Average neighbors.
    pub avg_neighbors: f64,
    /// Fraction of runs where every colluder was detected.
    pub detection_rate: f64,
    /// Mean seconds from attack start to the first detection event.
    pub first_detection_latency: f64,
    /// Mean seconds to complete isolation (runs where it completed).
    pub isolation_latency: f64,
    /// Fraction of runs with complete isolation.
    pub isolation_rate: f64,
    /// Mean wormhole drops per run (plateau value).
    pub drops: f64,
}

/// Runs the sweep with M = 2 colluders.
pub fn run(cfg: &SweepConfig) -> Vec<SweepRow> {
    let mut out = Vec::new();
    for &nodes in &cfg.node_counts {
        for &n_b in &cfg.densities {
            let mut detected = 0u64;
            let mut first_latencies = Vec::new();
            let mut iso_latencies = Vec::new();
            let mut drops = Vec::new();
            for seed in 0..cfg.seeds {
                let mut run = Scenario {
                    nodes,
                    avg_neighbors: n_b,
                    malicious: 2,
                    protected: true,
                    seed: 4000 + seed,
                    ..Scenario::default()
                }
                .build();
                run.run_until_secs(cfg.duration);
                if run.all_detected() {
                    detected += 1;
                    if let Some(t) = run
                        .sim()
                        .trace()
                        .first_time("isolated")
                        .map(|t| t.saturating_since(run.attack_start()).as_secs_f64())
                    {
                        first_latencies.push(t);
                    }
                }
                if let Some(lat) = run.isolation_latency_secs() {
                    iso_latencies.push(lat);
                }
                drops.push(run.wormhole_dropped() as f64);
            }
            out.push(SweepRow {
                nodes,
                avg_neighbors: n_b,
                detection_rate: detected as f64 / cfg.seeds as f64,
                first_detection_latency: mean(&first_latencies),
                isolation_latency: mean(&iso_latencies),
                isolation_rate: iso_latencies.len() as f64 / cfg.seeds as f64,
                drops: mean(&drops),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_detects_everything() {
        let cfg = SweepConfig {
            node_counts: vec![30],
            densities: vec![8.0],
            seeds: 2,
            duration: 400.0,
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].detection_rate > 0.99,
            "detection rate {}",
            rows[0].detection_rate
        );
    }
}
