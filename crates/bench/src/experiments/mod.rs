//! Experiment implementations, one module per table/figure of the paper.

pub mod ablation;
pub mod cost;
pub mod fig10;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod scale_sweep;
pub mod sweep;
pub mod tables;
