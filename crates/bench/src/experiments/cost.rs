//! Section 5.2 — memory / bandwidth cost table: the paper's closed-form
//! accounting next to live measurements from a protected run.

use crate::scenario::Scenario;
use liteworp::config::Config;
use liteworp_analysis::cost::CostModel;
use liteworp_analysis::geometry::GuardGeometry;

/// One row of the cost comparison.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Quantity name.
    pub quantity: String,
    /// The paper's closed-form value.
    pub analytical: String,
    /// Measured value from a live run (empty when not measurable).
    pub measured: String,
}

/// Parameters for the live measurement run.
#[derive(Debug, Clone)]
pub struct CostConfig {
    /// Network size.
    pub nodes: usize,
    /// Average neighbors.
    pub avg_neighbors: f64,
    /// Run length (seconds).
    pub duration: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            nodes: 100,
            avg_neighbors: 8.0,
            duration: 500.0,
            seed: 4,
        }
    }
}

/// Builds the cost table.
pub fn cost_table(cfg: &CostConfig) -> Vec<CostRow> {
    let geo = GuardGeometry::new(30.0);
    let density = geo.density_from_neighbors(cfg.avg_neighbors);
    let model = CostModel {
        range: 30.0,
        density,
        total_nodes: cfg.nodes,
        avg_route_hops: 4.0,
        routes_per_time_unit: cfg.nodes as f64 / 50.0, // one per node per TOut_Route
        confidence_index: Config::default().confidence_index,
    };

    // Live run to measure actual state sizes and bandwidth overhead.
    let mut run = Scenario {
        nodes: cfg.nodes,
        malicious: 2,
        protected: true,
        seed: cfg.seed,
        avg_neighbors: cfg.avg_neighbors,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(cfg.duration);

    let mut storage: Vec<f64> = Vec::new();
    let mut watch_entries: Vec<f64> = Vec::new();
    for i in 0..cfg.nodes as u32 {
        let n = run.protocol_node(liteworp::types::NodeId(i));
        if let Some(lw) = n.liteworp() {
            storage.push(lw.storage_bytes() as f64);
            watch_entries.push(lw.monitor().watch().len() as f64);
        }
    }
    let mean_storage = crate::report::mean(&storage);
    let max_storage = storage.iter().fold(0.0f64, |a, &b| a.max(b));
    let mean_watch = crate::report::mean(&watch_entries);

    let m = run.sim().metrics();
    let alert_frames = m.get("alerts_sent") + m.get("alerts_relayed");
    let overhead_pct = 100.0 * alert_frames as f64 / m.frames_sent.max(1) as f64;

    let delta = Config::default().watch_timeout_us as f64 / 1e6;
    vec![
        CostRow {
            quantity: "Neighbor list entries (π r² d)".into(),
            analytical: format!("{:.1}", model.neighbor_list_entries()),
            measured: String::new(),
        },
        CostRow {
            quantity: "Neighbor storage NBLS = 5(π r² d)² B".into(),
            analytical: format!("{:.0} B", model.neighbor_storage_bytes()),
            measured: format!("mean {mean_storage:.0} B, max {max_storage:.0} B (incl. watch)"),
        },
        CostRow {
            quantity: "Alert buffer (4γ B per suspect)".into(),
            analytical: format!("{} B", model.alert_buffer_bytes()),
            measured: String::new(),
        },
        CostRow {
            quantity: "Nodes watching one reply N_REP".into(),
            analytical: format!("{:.1}", model.monitoring_nodes_per_reply()),
            measured: String::new(),
        },
        CostRow {
            quantity: "Watch buffer entries needed".into(),
            analytical: format!("{}", model.recommended_watch_entries(delta)),
            measured: format!("mean standing {mean_watch:.1}"),
        },
        CostRow {
            quantity: "Watch buffer bytes (20 B/entry)".into(),
            analytical: format!("{} B", model.watch_buffer_bytes(delta)),
            measured: String::new(),
        },
        CostRow {
            quantity: "Discovery messages per node".into(),
            analytical: format!("{:.1}", model.discovery_messages_per_node()),
            measured: "preloaded in experiments; exercised in tests".into(),
        },
        CostRow {
            quantity: "Alert frames / total frames".into(),
            analytical: "only on detection".into(),
            measured: format!("{alert_frames} / {} = {overhead_pct:.3}%", m.frames_sent),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_table_is_complete_and_cheap() {
        let rows = cost_table(&CostConfig {
            nodes: 25,
            duration: 120.0,
            ..CostConfig::default()
        });
        assert!(rows.len() >= 8);
        // Bandwidth overhead claim: alerts are a negligible share.
        let bw = rows
            .iter()
            .find(|r| r.quantity.contains("Alert frames"))
            .unwrap();
        assert!(bw.measured.contains('%'));
    }
}
