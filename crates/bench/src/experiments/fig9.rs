//! Figure 9 — snapshot at t = 2000 s: fraction of data packets dropped by
//! the wormhole and fraction of established routes that pass through it,
//! for M ∈ 0..=4 compromised nodes, baseline vs LITEWORP.

use crate::report::mean;
use crate::scenario::Scenario;
use serde::Serialize;

/// Parameters of the Figure 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Total nodes (paper: 100).
    pub nodes: usize,
    /// Colluder counts (paper: 0..=4).
    pub colluder_counts: Vec<usize>,
    /// Independent runs to average (paper: 30).
    pub seeds: u64,
    /// Snapshot time in seconds (paper: 2000).
    pub duration: f64,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            nodes: 100,
            colluder_counts: (0..=4).collect(),
            seeds: 10,
            duration: 2000.0,
        }
    }
}

/// One bar group of Figure 9.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Row {
    /// Number of compromised nodes M.
    pub colluders: usize,
    /// LITEWORP enabled?
    pub protected: bool,
    /// Mean fraction of originated data packets swallowed by the wormhole.
    pub fraction_dropped: f64,
    /// Mean fraction of established routes that relay through a colluder.
    pub fraction_malicious_routes: f64,
}

/// Runs the snapshot experiment.
pub fn run(cfg: &Fig9Config) -> Vec<Fig9Row> {
    let mut out = Vec::new();
    for &m in &cfg.colluder_counts {
        for protected in [false, true] {
            let mut fr_drop = Vec::new();
            let mut fr_mal = Vec::new();
            for seed in 0..cfg.seeds {
                let mut run = Scenario {
                    nodes: cfg.nodes,
                    malicious: m,
                    protected,
                    seed: 2000 + seed,
                    ..Scenario::default()
                }
                .build();
                run.run_until_secs(cfg.duration);
                let sent = run.data_sent().max(1) as f64;
                fr_drop.push(run.wormhole_dropped() as f64 / sent);
                let (total, bad) = run.route_counts();
                fr_mal.push(bad as f64 / total.max(1) as f64);
            }
            out.push(Fig9Row {
                colluders: m,
                protected,
                fraction_dropped: mean(&fr_drop),
                fraction_malicious_routes: mean(&fr_mal),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_colluders_mean_zero_fractions() {
        let cfg = Fig9Config {
            nodes: 20,
            colluder_counts: vec![0],
            seeds: 1,
            duration: 200.0,
        };
        let rows = run(&cfg);
        for r in &rows {
            assert_eq!(r.fraction_dropped, 0.0);
            assert_eq!(r.fraction_malicious_routes, 0.0);
        }
    }

    #[test]
    fn protection_reduces_both_fractions() {
        let cfg = Fig9Config {
            nodes: 30,
            colluder_counts: vec![2],
            seeds: 2,
            duration: 500.0,
        };
        let rows = run(&cfg);
        let base = rows.iter().find(|r| !r.protected).unwrap();
        let prot = rows.iter().find(|r| r.protected).unwrap();
        assert!(
            prot.fraction_dropped <= base.fraction_dropped,
            "dropped: {prot:?} vs {base:?}"
        );
        assert!(base.fraction_dropped > 0.0, "attack had no effect at all");
    }
}
