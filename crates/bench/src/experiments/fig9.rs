//! Figure 9 — snapshot at t = 2000 s: fraction of data packets dropped by
//! the wormhole and fraction of established routes that pass through it,
//! for M ∈ 0..=4 compromised nodes, baseline vs LITEWORP.

use crate::exec::{run_cells, summarize, ExecOptions, SimCell};
use crate::scenario::Scenario;
use liteworp_runner::{Json, Manifest};

/// Parameters of the Figure 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Total nodes (paper: 100).
    pub nodes: usize,
    /// Colluder counts (paper: 0..=4).
    pub colluder_counts: Vec<usize>,
    /// Independent runs to average (paper: 30).
    pub seeds: u64,
    /// Snapshot time in seconds (paper: 2000).
    pub duration: f64,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            nodes: 100,
            colluder_counts: (0..=4).collect(),
            seeds: 10,
            duration: 2000.0,
        }
    }
}

/// One bar group of Figure 9.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Number of compromised nodes M.
    pub colluders: usize,
    /// LITEWORP enabled?
    pub protected: bool,
    /// Mean fraction of originated data packets swallowed by the wormhole.
    pub fraction_dropped: f64,
    /// 95% confidence half-width of `fraction_dropped`.
    pub fraction_dropped_ci95: f64,
    /// Mean fraction of established routes that relay through a colluder.
    pub fraction_malicious_routes: f64,
    /// 95% confidence half-width of `fraction_malicious_routes`.
    pub fraction_malicious_routes_ci95: f64,
}

impl Fig9Row {
    /// This row as JSON.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("colluders", Json::from(self.colluders)),
            ("protected", Json::from(self.protected)),
            ("fraction_dropped", Json::from(self.fraction_dropped)),
            (
                "fraction_dropped_ci95",
                Json::from(self.fraction_dropped_ci95),
            ),
            (
                "fraction_malicious_routes",
                Json::from(self.fraction_malicious_routes),
            ),
            (
                "fraction_malicious_routes_ci95",
                Json::from(self.fraction_malicious_routes_ci95),
            ),
        ])
    }
}

/// The experiment's cells, one per (M, protected) pair — the exact work
/// [`run_with`] executes, exposed so services can submit the same sweep.
pub fn cells(cfg: &Fig9Config) -> Vec<SimCell> {
    let mut cells = Vec::new();
    for &m in &cfg.colluder_counts {
        for protected in [false, true] {
            cells.push(SimCell::snapshot(
                format!(
                    "fig9 m={m} {}",
                    if protected { "liteworp" } else { "baseline" }
                ),
                Scenario {
                    nodes: cfg.nodes,
                    malicious: m,
                    protected,
                    ..Scenario::default()
                },
                cfg.seeds,
                2000,
                cfg.duration,
            ));
        }
    }
    cells
}

/// Runs the snapshot experiment on the parallel runner.
pub fn run_with(cfg: &Fig9Config, opts: &ExecOptions) -> (Vec<Fig9Row>, Manifest) {
    let batch = run_cells(&cells(cfg), opts);
    let mut out = Vec::new();
    let mut cell_outcomes = batch.outcomes.into_iter();
    for &m in &cfg.colluder_counts {
        for protected in [false, true] {
            // lint: allow(P002) runner invariant: one outcome set per cell
            let outcomes = cell_outcomes.next().expect("one outcome set per cell");
            let dropped = summarize(&outcomes, |o| o.drops / o.data_sent.max(1.0));
            let malicious = summarize(&outcomes, |o| o.routes_malicious / o.routes_total.max(1.0));
            out.push(Fig9Row {
                colluders: m,
                protected,
                fraction_dropped: dropped.mean,
                fraction_dropped_ci95: dropped.ci95,
                fraction_malicious_routes: malicious.mean,
                fraction_malicious_routes_ci95: malicious.ci95,
            });
        }
    }
    (out, batch.manifest)
}

/// Runs the snapshot experiment with default execution options.
pub fn run(cfg: &Fig9Config) -> Vec<Fig9Row> {
    run_with(cfg, &ExecOptions::default()).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_colluders_mean_zero_fractions() {
        let cfg = Fig9Config {
            nodes: 20,
            colluder_counts: vec![0],
            seeds: 1,
            duration: 200.0,
        };
        let rows = run(&cfg);
        for r in &rows {
            assert_eq!(r.fraction_dropped, 0.0);
            assert_eq!(r.fraction_malicious_routes, 0.0);
        }
    }

    #[test]
    fn protection_reduces_both_fractions() {
        let cfg = Fig9Config {
            nodes: 30,
            colluder_counts: vec![2],
            seeds: 2,
            duration: 500.0,
        };
        let rows = run(&cfg);
        let base = rows.iter().find(|r| !r.protected).unwrap();
        let prot = rows.iter().find(|r| r.protected).unwrap();
        assert!(
            prot.fraction_dropped <= base.fraction_dropped,
            "dropped: {prot:?} vs {base:?}"
        );
        assert!(base.fraction_dropped > 0.0, "attack had no effect at all");
    }
}
