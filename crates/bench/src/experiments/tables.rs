//! Table 1 (attack-mode taxonomy, verified live) and Table 2 (the input
//! parameters the simulation actually uses).

use crate::scenario::{Scenario, ScenarioAttack};
use liteworp::config::Config;
use liteworp_attacks::mode::AttackMode;
use liteworp_routing::params::NodeParams;

/// One verified row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Attack-mode name.
    pub mode: String,
    /// Minimum compromised nodes (from the taxonomy).
    pub min_compromised: usize,
    /// Special requirement, if any.
    pub special_requirement: String,
    /// Whether the paper claims LITEWORP handles it.
    pub handled_by_liteworp: bool,
    /// Live verification: did the protected network neutralize the attack
    /// (detect the colluders, or reject the attack's packets)?
    pub verified_neutralized: bool,
    /// Live evidence string (metric observed).
    pub evidence: String,
}

/// Parameters for the live Table 1 verification runs.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Network size for the demonstration runs.
    pub nodes: usize,
    /// Run length in seconds.
    pub duration: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            nodes: 40,
            duration: 400.0,
            seed: 9,
        }
    }
}

/// Builds Table 1, running one protected scenario per attack mode to
/// verify the claimed coverage.
pub fn table1(cfg: &Table1Config) -> Vec<Table1Row> {
    AttackMode::ALL
        .iter()
        .map(|mode| {
            let (neutralized, evidence) = verify_mode(*mode, cfg);
            Table1Row {
                mode: mode.to_string(),
                min_compromised: mode.min_compromised_nodes(),
                special_requirement: mode.special_requirement().unwrap_or("none").to_string(),
                handled_by_liteworp: mode.handled_by_liteworp(),
                verified_neutralized: neutralized,
                evidence,
            }
        })
        .collect()
}

fn verify_mode(mode: AttackMode, cfg: &Table1Config) -> (bool, String) {
    let (attack, malicious, tunnel_latency) = match mode {
        AttackMode::PacketEncapsulation => (ScenarioAttack::Wormhole, 2, 0.05),
        AttackMode::OutOfBandChannel => (ScenarioAttack::Wormhole, 2, 0.0),
        AttackMode::HighPowerTransmission => (ScenarioAttack::HighPower(3.0), 1, 0.0),
        AttackMode::PacketRelay => (ScenarioAttack::Relay, 1, 0.0),
        AttackMode::ProtocolDeviation => (ScenarioAttack::Rushing { drop_data: true }, 1, 0.0),
    };
    let mut run = Scenario {
        nodes: cfg.nodes,
        malicious,
        protected: true,
        seed: cfg.seed,
        attack,
        tunnel_latency,
        ..Scenario::default()
    }
    .build();
    run.run_until_secs(cfg.duration);
    match mode {
        AttackMode::PacketEncapsulation | AttackMode::OutOfBandChannel => {
            let detected = run.all_detected();
            (
                detected,
                format!(
                    "colluders detected={detected}, wormhole drops plateau at {}",
                    run.wormhole_dropped()
                ),
            )
        }
        AttackMode::HighPowerTransmission | AttackMode::PacketRelay => {
            // Neutralized = the attack's long-range packets were rejected
            // and no established route traverses a fake (out-of-range)
            // link. The attacker may still relay honestly inside its own
            // real neighborhood — that is not a wormhole.
            let rejected: u64 = (0..cfg.nodes as u32)
                .map(|i| {
                    run.protocol_node(liteworp::types::NodeId(i))
                        .stats()
                        .frames_rejected
                })
                .sum();
            let fake = run.fake_link_routes();
            let neutralized = rejected > 0 && fake == 0;
            (
                neutralized,
                format!("{rejected} frames rejected, {fake} fake-link routes"),
            )
        }
        AttackMode::ProtocolDeviation => {
            // NOT handled: the rusher attracts routes and drops data while
            // never being detected. "Verified" here means we verified the
            // paper's negative claim.
            let dropped = run.sim().metrics().get("rushing_dropped");
            let detected = run.all_detected();
            (
                !detected && dropped > 0,
                format!("rusher detected={detected}, data dropped={dropped}"),
            )
        }
    }
}

/// The Table 2 parameter dump: the configuration the simulation actually
/// runs with, next to the paper's values.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Parameter name.
    pub parameter: String,
    /// Paper value (Table 2).
    pub paper: String,
    /// Value used in this reproduction.
    pub ours: String,
}

/// Builds Table 2 from the live defaults.
pub fn table2() -> Vec<Table2Row> {
    let s = Scenario::default();
    let p = NodeParams::default();
    let c = Config::default();
    let row = |parameter: &str, paper: &str, ours: String| Table2Row {
        parameter: parameter.to_string(),
        paper: paper.to_string(),
        ours,
    };
    vec![
        row("Tx range r", "30 m", format!("{} m", s.radio.range_m)),
        row(
            "Channel BW",
            "40 kbps",
            format!("{} kbps", s.radio.bitrate_bps / 1000),
        ),
        row(
            "Total nodes N",
            "20, 50, 100, 150",
            "20/50/100/150 (sweep)".into(),
        ),
        row("N_B (avg neighbors)", "8", format!("{}", s.avg_neighbors)),
        row(
            "Data inter-arrival",
            "1/10 s⁻¹ (mean 10 s)",
            format!("mean {} s", s.data_mean),
        ),
        row(
            "Destination change",
            "1/200 s⁻¹ (mean 200 s)",
            format!("mean {} s", s.dest_change_mean),
        ),
        row("TOut_Route", "50 s", format!("{} s", s.route_timeout)),
        row(
            "M (compromised)",
            "0–4",
            format!("{} (0–4 in sweeps)", s.malicious),
        ),
        row(
            "γ (confidence index)",
            "2–8",
            format!("{} (2–8 in Fig 10)", c.confidence_index),
        ),
        row(
            "MalC window T",
            "200",
            format!("{} s", c.malc_window_us / 1_000_000),
        ),
        row(
            "δ (watch timeout)",
            "(garbled in scan)",
            format!("{} s", c.watch_timeout_us as f64 / 1e6),
        ),
        row(
            "C_t / V_f / V_d",
            "(garbled in scan)",
            format!(
                "{} / {} / {}",
                c.malc_threshold, c.fabrication_weight, c.drop_weight
            ),
        ),
        row("Attack start", "50 s", format!("{} s", s.attack_start)),
        row(
            "Request fwd jitter",
            "random backoff (§3.5)",
            format!("U[0, {:.0} ms]", p.req_forward_jitter.as_secs_f64() * 1e3),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_core_parameters() {
        let rows = table2();
        assert!(rows.iter().any(|r| r.parameter.contains("Tx range")));
        assert!(rows.iter().any(|r| r.parameter.contains("TOut_Route")));
        assert!(rows.len() >= 12);
    }

    #[test]
    fn taxonomy_rows_match_table_1() {
        // Structural fields only (live verification exercised in the
        // integration suite; here keep it cheap with a stub config).
        let modes = AttackMode::ALL;
        assert_eq!(modes.len(), 5);
        assert_eq!(modes.iter().filter(|m| m.handled_by_liteworp()).count(), 4);
    }
}
