//! Scale sweep: the paper's detection-probability and guard-coverage
//! formulas checked on deployments far beyond paper scale (10³–10⁵
//! nodes), exercising the simulator's spatial grid, SoA state, and
//! indexed event queue end to end.
//!
//! Two comparisons per network size:
//!
//! * **Guard coverage** — the mean number of guards per sampled link in
//!   the deployed field against the exact geometric expectation
//!   `g ≈ 0.59 · N_B` (and the paper's Equation (I) `g = 0.51 · N_B`),
//!   both evaluated at the *measured* mean neighbor count so edge
//!   effects cancel.
//! * **Detection probability** — the fraction of runs where every
//!   wormhole colluder is detected against the Section 5.1 closed form,
//!   fed the measured guard count and the measured collision fraction
//!   (the model's one free parameter).
//!
//! Scale cells cap the number of traffic sources and skip the
//! connected-deployment retry (see [`Scenario::traffic_sources`] and
//! [`Scenario::require_connected`]): neither detection nor guard
//! geometry needs every node to source data, and random geometric
//! graphs at `N_B = 8` stop being fully connected long before 10⁵
//! nodes.

use crate::exec::{run_cells, ExecOptions, SimCell};
use crate::report::mean;
use crate::scenario::Scenario;
use liteworp_analysis::detection::{CollisionModel, DetectionModel};
use liteworp_analysis::geometry::GuardGeometry;
use liteworp_netsim::field::{Field, NodeId};
use liteworp_runner::rng::{Pcg32, Rng};
use liteworp_runner::{Json, Manifest};

/// Parameters of the scale sweep.
#[derive(Debug, Clone)]
pub struct ScaleSweepConfig {
    /// Network sizes to test (default: 10³, 10⁴, 10⁵).
    pub node_counts: Vec<usize>,
    /// Average neighbors per node (paper: 8).
    pub avg_neighbors: f64,
    /// Runs per cell at the smallest sizes; larger cells scale the count
    /// down (see [`ScaleSweepConfig::seeds_for`]).
    pub seeds: u64,
    /// Simulated duration in seconds (attack starts at 50 s).
    pub duration: f64,
    /// Nodes that originate data traffic per run (capped at the network
    /// size).
    pub traffic_sources: usize,
    /// Honest nodes near each colluder promoted to traffic sources, so
    /// the wormhole is exercised regardless of where the capped sources
    /// landed.
    pub wormhole_local_sources: usize,
    /// TTL of route-request floods, in hops. This is what makes
    /// per-discovery work independent of the network size: an unscoped
    /// flood costs O(N) transmissions.
    pub discovery_ttl: u8,
    /// Links sampled per size for the guard-coverage measurement.
    pub guard_links: usize,
}

impl Default for ScaleSweepConfig {
    fn default() -> Self {
        ScaleSweepConfig {
            node_counts: vec![1_000, 10_000, 100_000],
            avg_neighbors: 8.0,
            seeds: 6,
            duration: 150.0,
            traffic_sources: 64,
            wormhole_local_sources: 8,
            discovery_ttl: 8,
            guard_links: 2_000,
        }
    }
}

impl ScaleSweepConfig {
    /// Seeds to run at a given size: the configured count up to 2 000
    /// nodes, half of it up to 20 000, a single run beyond.
    pub fn seeds_for(&self, nodes: usize) -> u64 {
        if nodes <= 2_000 {
            self.seeds
        } else if nodes <= 20_000 {
            (self.seeds / 2).max(1)
        } else {
            1
        }
    }
}

/// Deployment geometry measured from a built field.
#[derive(Debug, Clone, Copy)]
pub struct GeometryStats {
    /// Mean neighbor count over every node.
    pub measured_neighbors: f64,
    /// Mean guards (common neighbors) per sampled in-range link.
    pub measured_guards: f64,
    /// Exact geometric expectation at the measured density
    /// (`≈ 0.59 · N_B`).
    pub predicted_guards_exact: f64,
    /// The paper's Equation (I) at the measured density (`0.51 · N_B`).
    pub predicted_guards_paper: f64,
}

/// One row of the sweep: measured vs predicted at one network size.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Network size.
    pub nodes: usize,
    /// Seeds actually aggregated.
    pub seeds: usize,
    /// Deployment geometry of this size.
    pub geometry: GeometryStats,
    /// Fraction of runs where every colluder was detected.
    pub detection_rate: f64,
    /// Closed-form detection probability at the measured guard count and
    /// collision fraction.
    pub predicted_detection: f64,
    /// Mean measured collision fraction (`P_C`).
    pub collision_fraction: f64,
    /// Mean data packets originated per run.
    pub data_sent: f64,
    /// Mean cumulative wormhole drops per run.
    pub drops: f64,
}

impl ScaleRow {
    /// This row as JSON.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("nodes", Json::from(self.nodes)),
            ("seeds", Json::from(self.seeds)),
            (
                "measured_neighbors",
                Json::from(self.geometry.measured_neighbors),
            ),
            ("measured_guards", Json::from(self.geometry.measured_guards)),
            (
                "predicted_guards_exact",
                Json::from(self.geometry.predicted_guards_exact),
            ),
            (
                "predicted_guards_paper",
                Json::from(self.geometry.predicted_guards_paper),
            ),
            ("detection_rate", Json::from(self.detection_rate)),
            ("predicted_detection", Json::from(self.predicted_detection)),
            ("collision_fraction", Json::from(self.collision_fraction)),
            ("data_sent", Json::from(self.data_sent)),
            ("drops", Json::from(self.drops)),
        ])
    }
}

/// Measures mean degree and per-link guard coverage of a deployment at
/// the given size and density, sampling `links` in-range links.
///
/// The field is built exactly like a scale scenario's (same generator
/// family), but with its own seed: this is a geometry question, not a
/// protocol one, so it needs no nodes or traffic.
pub fn measure_geometry(
    nodes: usize,
    avg_neighbors: f64,
    range: f64,
    links: usize,
    seed: u64,
) -> GeometryStats {
    let mut rng = Pcg32::seed_from_u64(seed);
    let field = Field::with_average_neighbors(nodes, avg_neighbors, range, &mut rng);

    let mut neighbor_lists: Vec<Vec<NodeId>> = Vec::with_capacity(nodes);
    let mut degree_prefix: Vec<usize> = Vec::with_capacity(nodes);
    let mut degree_total = 0usize;
    for i in 0..nodes {
        let n = field.in_range_of(NodeId(i as u32));
        degree_total += n.len();
        degree_prefix.push(degree_total);
        neighbor_lists.push(n);
    }
    let measured_neighbors = degree_total as f64 / nodes.max(1) as f64;

    // Sample links *uniformly over directed edges* (a uniform index into
    // the concatenated adjacency lists). The closed forms state the
    // expected guard count of a link in use, which is the edge-uniform
    // (Palm) expectation: picking a node first and then a neighbor would
    // under-weight dense regions and measure ≈ 0.59 · (N_B − 1) instead
    // of 0.59 · N_B.
    let mut guard_total = 0usize;
    let mut sampled = 0usize;
    while degree_total > 0 && sampled < links {
        let e = rng.gen_range(0..degree_total);
        let u = degree_prefix.partition_point(|&p| p <= e);
        let offset = e - (degree_prefix.get(u.wrapping_sub(1)).copied()).unwrap_or(0);
        let v = neighbor_lists[u][offset];
        guard_total += common_sorted(&neighbor_lists[u], &neighbor_lists[v.index()]);
        sampled += 1;
    }
    let measured_guards = guard_total as f64 / sampled.max(1) as f64;

    let geom = GuardGeometry::new(range);
    GeometryStats {
        measured_neighbors,
        measured_guards,
        predicted_guards_exact: geom.exact_guards_from_neighbors(measured_neighbors),
        predicted_guards_paper: GuardGeometry::paper_guards_from_neighbors(measured_neighbors),
    }
}

/// Size of the intersection of two ascending id lists. The endpoints of
/// a link never appear (neighbor lists exclude the node itself, and the
/// two lists' owners are each other's neighbors, not their own), so this
/// is exactly the guard count of the link.
fn common_sorted(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// The sweep's scenario for one size — shared between [`cells`] and the
/// smoke script so both run the identical cache key.
pub fn scenario_for(cfg: &ScaleSweepConfig, nodes: usize) -> Scenario {
    Scenario {
        nodes,
        avg_neighbors: cfg.avg_neighbors,
        malicious: 2,
        protected: true,
        traffic_sources: Some(cfg.traffic_sources.min(nodes)),
        wormhole_local_sources: cfg.wormhole_local_sources,
        require_connected: false,
        discovery_ttl: Some(cfg.discovery_ttl),
        local_traffic_hops: Some(cfg.discovery_ttl as u32),
        ..Scenario::default()
    }
}

/// The sweep's cells, one per network size.
pub fn cells(cfg: &ScaleSweepConfig) -> Vec<SimCell> {
    cfg.node_counts
        .iter()
        .map(|&nodes| {
            SimCell::snapshot(
                format!("scale n={nodes}"),
                scenario_for(cfg, nodes),
                cfg.seeds_for(nodes),
                7_000,
                cfg.duration,
            )
        })
        .collect()
}

/// Runs the sweep and pairs each size's simulation aggregate with its
/// measured deployment geometry and the closed-form predictions.
pub fn run_with(cfg: &ScaleSweepConfig, opts: &ExecOptions) -> (Vec<ScaleRow>, Manifest) {
    let batch = run_cells(&cells(cfg), opts);
    let mut out = Vec::new();
    let mut cell_outcomes = batch.outcomes.into_iter();
    for &nodes in &cfg.node_counts {
        // lint: allow(P002) runner invariant: one outcome set per cell
        let outcomes = cell_outcomes.next().expect("one outcome set per cell");
        let geometry = measure_geometry(
            nodes,
            cfg.avg_neighbors,
            Scenario::default().radio.range_m,
            cfg.guard_links,
            41 + nodes as u64,
        );
        let n = outcomes.len().max(1) as f64;
        let detected = outcomes.iter().filter(|o| o.all_detected).count() as f64;
        let p_c: Vec<f64> = outcomes.iter().map(|o| o.collision_fraction).collect();
        let collision_fraction = mean(&p_c);
        let model = detection_model(collision_fraction);
        let predicted_detection = model.detection_probability_with(
            geometry.measured_guards.round() as u64,
            collision_fraction,
        );
        out.push(ScaleRow {
            nodes,
            seeds: outcomes.len(),
            geometry,
            detection_rate: detected / n,
            predicted_detection,
            collision_fraction,
            data_sent: mean(&outcomes.iter().map(|o| o.data_sent).collect::<Vec<_>>()),
            drops: mean(&outcomes.iter().map(|o| o.drops).collect::<Vec<_>>()),
        });
    }
    (out, batch.manifest)
}

/// The Section 5.1 model at the protocol's γ and a measured `P_C` — the
/// same instantiation `tests/differential_detection.rs` validates at
/// paper scale.
pub fn detection_model(p_c: f64) -> DetectionModel {
    DetectionModel {
        window: 7,
        detections_needed: 5,
        confidence_index: Scenario::default().liteworp.confidence_index as u64,
        collisions: CollisionModel::Constant(p_c.clamp(0.0, 1.0)),
    }
}

/// Allowed |closed form − simulation| gap on detection probability (the
/// differential-test bound, widened for the single-seed largest cells).
pub const DETECTION_BOUND: f64 = 0.2;
/// Allowed relative error of measured guard coverage vs the exact
/// geometric expectation.
pub const GUARD_BOUND: f64 = 0.2;

/// Checks every row against the closed forms; returns one line per
/// violation (empty = the formulas hold at every size).
pub fn check(rows: &[ScaleRow]) -> Vec<String> {
    let mut bad = Vec::new();
    for r in rows {
        let g = &r.geometry;
        let guard_err = (g.measured_guards - g.predicted_guards_exact).abs()
            / g.predicted_guards_exact.max(1e-9);
        if guard_err > GUARD_BOUND {
            bad.push(format!(
                "n={}: guard coverage {:.2} vs exact prediction {:.2} ({:.0}% off, bound {:.0}%)",
                r.nodes,
                g.measured_guards,
                g.predicted_guards_exact,
                guard_err * 100.0,
                GUARD_BOUND * 100.0
            ));
        }
        let det_err = (r.detection_rate - r.predicted_detection).abs();
        if det_err > DETECTION_BOUND {
            bad.push(format!(
                "n={}: detection rate {:.3} vs closed form {:.3} (gap {:.3}, bound {:.2})",
                r.nodes, r.detection_rate, r.predicted_detection, det_err, DETECTION_BOUND
            ));
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_coverage_matches_exact_geometry_at_small_scale() {
        let g = measure_geometry(1_000, 8.0, 30.0, 1_000, 7);
        assert!(
            (g.measured_neighbors - 8.0).abs() < 2.0,
            "measured N_B {} far from target 8",
            g.measured_neighbors
        );
        let err = (g.measured_guards - g.predicted_guards_exact).abs() / g.predicted_guards_exact;
        assert!(
            err < GUARD_BOUND,
            "guards {:.2} vs exact {:.2}",
            g.measured_guards,
            g.predicted_guards_exact
        );
        // The exact expectation dominates the paper's Equation (I).
        assert!(g.predicted_guards_exact > g.predicted_guards_paper);
    }

    #[test]
    fn seeds_scale_down_with_network_size() {
        let cfg = ScaleSweepConfig::default();
        assert_eq!(cfg.seeds_for(1_000), 6);
        assert_eq!(cfg.seeds_for(10_000), 3);
        assert_eq!(cfg.seeds_for(100_000), 1);
    }

    #[test]
    fn small_scale_sweep_matches_closed_forms() {
        let cfg = ScaleSweepConfig {
            node_counts: vec![300],
            seeds: 2,
            duration: 300.0,
            traffic_sources: 48,
            guard_links: 500,
            ..ScaleSweepConfig::default()
        };
        let (rows, _) = run_with(&cfg, &ExecOptions::default());
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.data_sent > 0.0, "capped sources still generate data");
        let violations = check(&rows);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
