//! Ablation study — design choices beyond the paper's headline results.
//!
//! Each variant perturbs one knob of the full system and reports what it
//! costs: detection rate, time to complete isolation, wormhole damage,
//! and false isolations of honest nodes.
//!
//! | Variant | Question it answers |
//! |---|---|
//! | `baseline-attack` | reference: full system vs default wormhole |
//! | `forge-colluder` | what if colluders name each other as previous hop? (second-hop checks kill it instantly) |
//! | `forge-fixed` | fixed innocent neighbor vs rotating — rotation spreads `MalC` but also spreads accusing guards |
//! | `smart-reply` | colluders dodge drop detection by also forwarding replies legitimately |
//! | `no-collision-grace` | judge through collisions: how many honest nodes get falsely isolated? |
//! | `no-alert-relay` | alerts strictly one-hop: does isolation still complete? |
//! | `noise-2pct` | unexplained channel loss (no collision indication): false-positive sensitivity |
//! | `encapsulation-250ms` | slow tunnel: does the attack still win routes, is it still caught? |
//! | `monitor-data` | data-plane monitoring extension: watch data packets too |

use crate::exec::{run_cells, ExecOptions, SimCell};
use crate::report::mean;
use crate::scenario::Scenario;
use liteworp::config::Config;
use liteworp_attacks::wormhole::ForgeStrategy;
use liteworp_netsim::prelude::RadioConfig;
use liteworp_runner::{Json, Manifest};

/// Parameters of the ablation study.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Network size.
    pub nodes: usize,
    /// Runs per variant.
    pub seeds: u64,
    /// Run length (seconds).
    pub duration: f64,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            nodes: 50,
            seeds: 5,
            duration: 800.0,
        }
    }
}

/// Result of one ablation variant.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub variant: String,
    /// Fraction of runs with every colluder detected.
    pub detection_rate: f64,
    /// Mean full-isolation latency (s) over completing runs.
    pub isolation_latency: f64,
    /// Fraction of runs where isolation completed.
    pub isolation_rate: f64,
    /// Mean wormhole drops per run.
    pub drops: f64,
    /// Mean honest nodes falsely isolated per run.
    pub false_isolations: f64,
}

impl AblationRow {
    /// This row as JSON.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("variant", Json::from(self.variant.clone())),
            ("detection_rate", Json::from(self.detection_rate)),
            ("isolation_latency", Json::from(self.isolation_latency)),
            ("isolation_rate", Json::from(self.isolation_rate)),
            ("drops", Json::from(self.drops)),
            ("false_isolations", Json::from(self.false_isolations)),
        ])
    }
}

fn variants(base_nodes: usize) -> Vec<(&'static str, Scenario)> {
    let base = Scenario {
        nodes: base_nodes,
        malicious: 2,
        protected: true,
        ..Scenario::default()
    };
    vec![
        ("baseline-attack", base.clone()),
        (
            "forge-colluder",
            Scenario {
                forge: ForgeStrategy::Colluder,
                ..base.clone()
            },
        ),
        (
            "forge-fixed",
            Scenario {
                forge: ForgeStrategy::InnocentNeighbor,
                ..base.clone()
            },
        ),
        (
            "smart-reply",
            Scenario {
                smart_reply: true,
                ..base.clone()
            },
        ),
        (
            "no-collision-grace",
            Scenario {
                liteworp: Config {
                    collision_grace_us: 0,
                    ..Config::default()
                },
                ..base.clone()
            },
        ),
        (
            "no-alert-relay",
            Scenario {
                relay_alerts: false,
                ..base.clone()
            },
        ),
        (
            "noise-2pct",
            Scenario {
                radio: RadioConfig {
                    noise_loss: 0.02,
                    ..RadioConfig::default()
                },
                ..base.clone()
            },
        ),
        (
            "encapsulation-250ms",
            Scenario {
                tunnel_latency: 0.25,
                ..base.clone()
            },
        ),
        (
            "monitor-data",
            Scenario {
                liteworp: Config {
                    monitor_data: true,
                    ..Config::default()
                },
                ..base
            },
        ),
    ]
}

/// The study's cells, one per variant — the exact work [`run_with`]
/// executes, exposed so services can submit the same sweep.
pub fn cells(cfg: &AblationConfig) -> Vec<SimCell> {
    variants(cfg.nodes)
        .iter()
        .map(|(name, scenario)| {
            SimCell::snapshot(
                format!("ablation {name}"),
                scenario.clone(),
                cfg.seeds,
                5000,
                cfg.duration,
            )
        })
        .collect()
}

/// Runs the ablation study on the parallel runner.
pub fn run_with(cfg: &AblationConfig, opts: &ExecOptions) -> (Vec<AblationRow>, Manifest) {
    let variant_list = variants(cfg.nodes);
    let batch = run_cells(&cells(cfg), opts);
    let rows = variant_list
        .iter()
        .zip(&batch.outcomes)
        .map(|((name, _), outcomes)| {
            let n = outcomes.len().max(1) as f64;
            let detected = outcomes.iter().filter(|o| o.all_detected).count() as f64;
            let latencies: Vec<f64> = outcomes
                .iter()
                .filter_map(|o| o.isolation_latency)
                .collect();
            let drops: Vec<f64> = outcomes.iter().map(|o| o.drops).collect();
            let false_isolations: Vec<f64> = outcomes.iter().map(|o| o.false_isolations).collect();
            AblationRow {
                variant: name.to_string(),
                detection_rate: detected / n,
                isolation_latency: mean(&latencies),
                isolation_rate: latencies.len() as f64 / n,
                drops: mean(&drops),
                false_isolations: mean(&false_isolations),
            }
        })
        .collect();
    (rows, batch.manifest)
}

/// Runs the ablation study with default execution options.
pub fn run(cfg: &AblationConfig) -> Vec<AblationRow> {
    run_with(cfg, &ExecOptions::default()).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_list_is_complete() {
        let v = variants(30);
        assert_eq!(v.len(), 9);
        assert!(v.iter().any(|(n, _)| *n == "no-collision-grace"));
    }

    #[test]
    fn forge_colluder_never_wins_wormhole_routes() {
        // Naming the colluder as previous hop is rejected outright by the
        // second-hop checks, so the tunnel cannot attract routes: no
        // forged rebroadcast is ever accepted and no reply flows back
        // through the tunnel. (The colluders still blackhole data that
        // crosses them on natural routes — data-plane dropping is outside
        // LITEWORP's control-traffic monitoring.)
        let build = |forge| Scenario {
            nodes: 30,
            malicious: 2,
            protected: true,
            seed: 5100,
            forge,
            ..Scenario::default()
        };
        // A tunnel-won route shows up as a *fake link* in the relay
        // telemetry (the reply jumps the tunnel gap).
        let mut naming = build(ForgeStrategy::Colluder).build();
        naming.run_until_secs(400.0);
        assert_eq!(
            naming.fake_link_routes(),
            0,
            "a route crossed the tunnel despite colluder-naming"
        );
        // Positive control: without protection, neighbor-forging wins
        // tunnel routes (visible as fake links) for the same seed.
        let mut forging = Scenario {
            protected: false,
            ..build(ForgeStrategy::RotatingNeighbors)
        }
        .build();
        forging.run_until_secs(400.0);
        assert!(
            forging.fake_link_routes() > 0,
            "the neighbor-forging variant should win at least one tunnel route"
        );
    }
}
