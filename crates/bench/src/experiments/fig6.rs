//! Figure 6 — analytical coverage curves.
//!
//! * **Fig 6(a)**: probability of wormhole detection vs average number of
//!   neighbors, with `T = 7`, `k = 5`, `γ = 3`, `M = 2`, and `P_C = 0.05`
//!   at `N_B = 3` scaling linearly with density.
//! * **Fig 6(b)**: probability of false alarm over the same sweep —
//!   non-monotonic and negligible everywhere.

use liteworp_analysis::detection::{CollisionModel, DetectionModel};
use liteworp_analysis::false_alarm::FalseAlarmModel;

/// One point of the Figure 6 sweep.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Average neighbors per node.
    pub n_b: f64,
    /// Guards available (Equation I).
    pub guards: u64,
    /// Collision probability at this density.
    pub p_c: f64,
    /// Probability of wormhole detection (Fig 6(a)).
    pub p_detect: f64,
    /// Probability of falsely isolating an honest node (Fig 6(b)).
    pub p_false_alarm: f64,
}

/// The paper's Figure 6 parameterization.
pub fn paper_model() -> DetectionModel {
    DetectionModel {
        window: 7,
        detections_needed: 5,
        confidence_index: 3,
        collisions: CollisionModel::linear(0.05, 3.0),
    }
}

/// Computes the Figure 6 sweep over `n_b` values.
pub fn sweep(model: DetectionModel, n_b_values: impl IntoIterator<Item = f64>) -> Vec<Fig6Row> {
    let fa = FalseAlarmModel::new(model);
    n_b_values
        .into_iter()
        .map(|n_b| Fig6Row {
            n_b,
            guards: model.guards(n_b),
            p_c: model.collisions.collision_probability(n_b),
            p_detect: model.detection_probability(n_b),
            p_false_alarm: fa.false_isolation_probability(n_b),
        })
        .collect()
}

/// The default sweep grid used by the `fig6a` / `fig6b` binaries.
pub fn default_grid() -> Vec<f64> {
    (2..=30).map(|i| (2 * i) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_match_the_paper() {
        let rows = sweep(paper_model(), default_grid());
        assert_eq!(rows.len(), 29);
        // Detection: high plateau then collapse at extreme density.
        let peak = rows
            .iter()
            .map(|r| r.p_detect)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(peak > 0.99, "peak detection {peak}");
        let last = rows.last().unwrap();
        assert!(
            last.p_detect < 0.2,
            "dense-collapse missing: {}",
            last.p_detect
        );
        // False alarm: everywhere negligible.
        assert!(rows.iter().all(|r| r.p_false_alarm < 1e-6));
        // False alarm non-monotonic: rises then falls.
        let max_idx = rows
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.p_false_alarm.total_cmp(&b.1.p_false_alarm))
            .unwrap()
            .0;
        assert!(max_idx > 0 && max_idx < rows.len() - 1, "peak at {max_idx}");
    }

    #[test]
    fn guards_follow_equation_i() {
        let rows = sweep(paper_model(), [10.0]);
        assert_eq!(rows[0].guards, 5); // 0.51 * 10 = 5.1 -> 5
    }
}
