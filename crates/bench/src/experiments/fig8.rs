//! Figure 8 — cumulative data packets dropped by the wormhole over time,
//! 100 nodes, M ∈ {2, 4} colluders, with and without LITEWORP.
//!
//! The attack starts at t = 50 s. Baseline curves climb for the whole run;
//! LITEWORP curves flatten shortly after the colluders are isolated, with
//! a short tail while cached routes through the wormhole age out
//! (`TOut_Route` = 50 s).

use crate::exec::{run_cells, ExecOptions, SimCell};
use crate::report::mean;
use crate::scenario::Scenario;
use liteworp_runner::{Json, Manifest};

/// Parameters of the Figure 8 experiment.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Total nodes (paper: 100).
    pub nodes: usize,
    /// Colluder counts to plot (paper: 2 and 4).
    pub colluder_counts: Vec<usize>,
    /// Independent runs to average (paper: 30).
    pub seeds: u64,
    /// Simulated duration in seconds (paper: 2000).
    pub duration: f64,
    /// Sampling interval for the time series, seconds.
    pub sample_every: f64,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            nodes: 100,
            colluder_counts: vec![2, 4],
            seeds: 10,
            duration: 2000.0,
            sample_every: 50.0,
        }
    }
}

/// One time series: mean cumulative drops at each sample instant.
#[derive(Debug, Clone)]
pub struct DropSeries {
    /// Number of colluders.
    pub colluders: usize,
    /// LITEWORP enabled?
    pub protected: bool,
    /// Sample times in seconds.
    pub times: Vec<f64>,
    /// Mean cumulative packets dropped by the wormhole at each time.
    pub dropped: Vec<f64>,
}

impl DropSeries {
    /// This series as JSON (matching the old serialized field names).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("colluders", Json::from(self.colluders)),
            ("protected", Json::from(self.protected)),
            (
                "times",
                Json::Arr(self.times.iter().map(|&t| Json::from(t)).collect()),
            ),
            (
                "dropped",
                Json::Arr(self.dropped.iter().map(|&d| Json::from(d)).collect()),
            ),
        ])
    }
}

/// The experiment's cells, one per (M, protected) pair — the exact work
/// [`run_with`] executes, exposed so services can submit the same sweep.
pub fn cells(cfg: &Fig8Config) -> Vec<SimCell> {
    let times = sample_times(cfg);
    let mut cells = Vec::new();
    for &m in &cfg.colluder_counts {
        for protected in [false, true] {
            cells.push(SimCell {
                label: format!(
                    "fig8 m={m} {}",
                    if protected { "liteworp" } else { "baseline" }
                ),
                scenario: Scenario {
                    nodes: cfg.nodes,
                    malicious: m,
                    protected,
                    ..Scenario::default()
                },
                seeds: cfg.seeds,
                seed_base: 1000,
                duration: cfg.duration,
                sample_times: times.clone(),
            });
        }
    }
    cells
}

/// Runs the experiment on the parallel runner and returns one series per
/// (M, protected) pair plus the run manifest.
pub fn run_with(cfg: &Fig8Config, opts: &ExecOptions) -> (Vec<DropSeries>, Manifest) {
    let times = sample_times(cfg);
    let batch = run_cells(&cells(cfg), opts);
    let mut out = Vec::new();
    let mut cell_outcomes = batch.outcomes.into_iter();
    for &m in &cfg.colluder_counts {
        for protected in [false, true] {
            // lint: allow(P002) runner invariant: one outcome set per cell
            let outcomes = cell_outcomes.next().expect("one outcome set per cell");
            let dropped = (0..times.len())
                .map(|i| {
                    let at_i: Vec<f64> = outcomes.iter().map(|o| o.drops_at[i]).collect();
                    mean(&at_i)
                })
                .collect();
            out.push(DropSeries {
                colluders: m,
                protected,
                times: times.clone(),
                dropped,
            });
        }
    }
    (out, batch.manifest)
}

/// Runs the experiment with default execution options (all cores, no
/// cache).
pub fn run(cfg: &Fig8Config) -> Vec<DropSeries> {
    run_with(cfg, &ExecOptions::default()).0
}

fn sample_times(cfg: &Fig8Config) -> Vec<f64> {
    let mut t = cfg.sample_every;
    let mut out = Vec::new();
    while t <= cfg.duration + 1e-9 {
        out.push(t);
        t += cfg.sample_every;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_grid_covers_duration() {
        let cfg = Fig8Config {
            duration: 100.0,
            sample_every: 25.0,
            ..Fig8Config::default()
        };
        assert_eq!(sample_times(&cfg), vec![25.0, 50.0, 75.0, 100.0]);
    }

    #[test]
    fn small_run_has_paper_shape() {
        // Tiny version: 30 nodes, one seed, 400 s.
        let cfg = Fig8Config {
            nodes: 30,
            colluder_counts: vec![2],
            seeds: 1,
            duration: 400.0,
            sample_every: 100.0,
        };
        let series = run(&cfg);
        assert_eq!(series.len(), 2);
        let base = series.iter().find(|s| !s.protected).unwrap();
        let prot = series.iter().find(|s| s.protected).unwrap();
        // Baseline keeps dropping; LITEWORP ends with fewer drops.
        assert!(
            *base.dropped.last().unwrap() > *prot.dropped.last().unwrap(),
            "baseline {:?} vs protected {:?}",
            base.dropped,
            prot.dropped
        );
        // Both cumulative series are non-decreasing.
        for s in &series {
            assert!(s.dropped.windows(2).all(|w| w[1] >= w[0]));
        }
    }
}
