//! Figure 10 — detection probability (simulation + analytical) and
//! isolation latency as the detection confidence index γ varies, with
//! `N_B = 15` and `M = 2`.
//!
//! As γ grows, more guards must independently accuse before a neighbor
//! isolates, so detection probability falls and isolation latency rises
//! (the paper reports latencies that stay small, under ~30 s of attack
//! time at their density).

use crate::exec::{run_cells, ExecOptions, SimCell};
use crate::report::mean;
use crate::scenario::Scenario;
use liteworp::config::Config;
use liteworp_analysis::detection::{CollisionModel, DetectionModel};
use liteworp_runner::{Json, Manifest};

/// Parameters of the Figure 10 experiment.
#[derive(Debug, Clone)]
pub struct Fig10Config {
    /// Total nodes.
    pub nodes: usize,
    /// Average neighbors (paper: 15).
    pub avg_neighbors: f64,
    /// γ values to sweep (paper: 2..=8).
    pub gammas: Vec<usize>,
    /// Independent runs per γ.
    pub seeds: u64,
    /// Run duration in seconds.
    pub duration: f64,
    /// Fabrication opportunities per guard assumed by the analytical
    /// overlay (the `T` of Section 5.1).
    pub analytic_window: u64,
    /// Collision probability assumed by the analytical overlay.
    pub analytic_p_c: f64,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            nodes: 100,
            avg_neighbors: 15.0,
            gammas: (2..=8).collect(),
            seeds: 10,
            duration: 800.0,
            // Overlay parameters: T = 5 fabrication opportunities per
            // guard within the decision horizon, and the Figure 6 linear
            // collision model evaluated at N_B = 15 (P_C = 0.25).
            analytic_window: 5,
            analytic_p_c: 0.25,
        }
    }
}

/// One γ point.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Detection confidence index γ.
    pub gamma: usize,
    /// Fraction of runs in which every colluder was detected (isolated by
    /// at least one node).
    pub sim_detection: f64,
    /// Analytical detection probability at the same γ.
    pub analytic_detection: f64,
    /// Mean time (s, from attack start) until every honest neighbor of
    /// every colluder isolated it, over the runs where that completed.
    pub isolation_latency: f64,
    /// Fraction of runs where isolation completed within the run.
    pub isolation_completed: f64,
}

impl Fig10Row {
    /// This row as JSON.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("gamma", Json::from(self.gamma)),
            ("sim_detection", Json::from(self.sim_detection)),
            ("analytic_detection", Json::from(self.analytic_detection)),
            ("isolation_latency", Json::from(self.isolation_latency)),
            ("isolation_completed", Json::from(self.isolation_completed)),
        ])
    }
}

/// The experiment's cells, one per γ — the exact work [`run_with`]
/// executes, exposed so services can submit the same sweep.
pub fn cells(cfg: &Fig10Config) -> Vec<SimCell> {
    cfg.gammas
        .iter()
        .map(|&gamma| {
            SimCell::snapshot(
                format!("fig10 gamma={gamma}"),
                Scenario {
                    nodes: cfg.nodes,
                    avg_neighbors: cfg.avg_neighbors,
                    malicious: 2,
                    protected: true,
                    liteworp: Config {
                        confidence_index: gamma,
                        ..Config::default()
                    },
                    ..Scenario::default()
                },
                cfg.seeds,
                3000,
                cfg.duration,
            )
        })
        .collect()
}

/// Runs the γ sweep on the parallel runner.
pub fn run_with(cfg: &Fig10Config, opts: &ExecOptions) -> (Vec<Fig10Row>, Manifest) {
    let batch = run_cells(&cells(cfg), opts);
    let rows = cfg
        .gammas
        .iter()
        .zip(&batch.outcomes)
        .map(|(&gamma, outcomes)| {
            let analytic = DetectionModel {
                window: cfg.analytic_window,
                detections_needed: Config::default().fabrications_to_accuse() as u64,
                confidence_index: gamma as u64,
                collisions: CollisionModel::Constant(cfg.analytic_p_c),
            };
            let n = outcomes.len().max(1) as f64;
            let detected = outcomes.iter().filter(|o| o.all_detected).count() as f64;
            let latencies: Vec<f64> = outcomes
                .iter()
                .filter_map(|o| o.isolation_latency)
                .collect();
            Fig10Row {
                gamma,
                sim_detection: detected / n,
                analytic_detection: analytic.detection_probability(cfg.avg_neighbors),
                isolation_latency: mean(&latencies),
                isolation_completed: latencies.len() as f64 / n,
            }
        })
        .collect();
    (rows, batch.manifest)
}

/// Runs the γ sweep with default execution options.
pub fn run(cfg: &Fig10Config) -> Vec<Fig10Row> {
    run_with(cfg, &ExecOptions::default()).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_overlay_decreases_with_gamma() {
        let cfg = Fig10Config::default();
        let mut prev = f64::INFINITY;
        for gamma in &cfg.gammas {
            let m = DetectionModel {
                window: cfg.analytic_window,
                detections_needed: Config::default().fabrications_to_accuse() as u64,
                confidence_index: *gamma as u64,
                collisions: CollisionModel::Constant(cfg.analytic_p_c),
            };
            let p = m.detection_probability(cfg.avg_neighbors);
            assert!(p <= prev);
            prev = p;
        }
        assert!(prev < 1.0, "the curve must actually decline");
    }

    #[test]
    fn tiny_sim_sweep_detects_at_low_gamma() {
        let cfg = Fig10Config {
            nodes: 30,
            avg_neighbors: 10.0,
            gammas: vec![2],
            seeds: 1,
            duration: 300.0,
            ..Fig10Config::default()
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].sim_detection > 0.99, "{rows:?}");
    }
}
