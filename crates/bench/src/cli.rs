//! Minimal flag parsing for the experiment binaries (`--key value` pairs
//! and bare boolean switches like `--no-cache`).

use std::collections::BTreeMap;

/// Parsed `--key value` flags.
///
/// # Example
///
/// ```
/// use liteworp_bench::cli::Flags;
///
/// let f = Flags::parse(["--seeds", "30", "--no-cache", "--duration", "2000"]);
/// assert_eq!(f.get_u64("seeds", 10), 30);
/// assert_eq!(f.get_f64("duration", 500.0), 2000.0);
/// assert_eq!(f.get_u64("nodes", 100), 100); // default
/// assert!(f.get_bool("no-cache"));
/// assert!(!f.get_bool("verbose"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
}

impl Flags {
    /// Parses the process arguments (skipping `argv[0]`).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of arguments.
    ///
    /// A `--flag` immediately followed by another `--flag` (or by the end
    /// of the arguments) is a boolean switch and stores `"true"`.
    ///
    /// # Panics
    ///
    /// Panics on a bare positional argument, so typos fail loudly rather
    /// than silently running the default.
    pub fn parse<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut values = BTreeMap::new();
        let mut it = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                // lint: allow(P003) CLI usage error: aborting with the offending
                // argument is the intended bin-facing behavior
                .unwrap_or_else(|| panic!("expected --flag, got {arg:?}"))
                .to_string();
            let value = match it.peek() {
                // lint: allow(P002) invariant: peek() just returned Some
                Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                _ => "true".to_string(),
            };
            values.insert(key, value);
        }
        Flags { values }
    }

    /// Integer flag with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get_parsed(key).unwrap_or(default)
    }

    /// Float flag with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get_parsed(key).unwrap_or(default)
    }

    /// `usize` flag with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get_parsed(key).unwrap_or(default)
    }

    /// Optional `usize` flag (`None` when absent).
    pub fn get_opt_usize(&self, key: &str) -> Option<usize> {
        self.get_parsed(key)
    }

    /// Optional `u64` flag (`None` when absent).
    pub fn get_opt_u64(&self, key: &str) -> Option<u64> {
        self.get_parsed(key)
    }

    /// Optional float flag (`None` when absent).
    pub fn get_opt_f64(&self, key: &str) -> Option<f64> {
        self.get_parsed(key)
    }

    /// Boolean switch: `true` when passed bare (`--no-cache`) or as
    /// `--no-cache true`; `false` when absent or `--no-cache false`.
    pub fn get_bool(&self, key: &str) -> bool {
        self.get_parsed(key).unwrap_or(false)
    }

    /// String flag (`None` when absent), e.g. `--trace out.jsonl`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.values.get(key).map(|v| {
            v.parse()
                // lint: allow(P003) CLI usage error: abort with flag name and value
                .unwrap_or_else(|_| panic!("flag --{key}: cannot parse {v:?}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_overrides() {
        let f = Flags::parse(["--a", "1"]);
        assert_eq!(f.get_u64("a", 9), 1);
        assert_eq!(f.get_u64("b", 9), 9);
        assert_eq!(f.get_usize("a", 0), 1);
        assert_eq!(f.get_opt_usize("a"), Some(1));
        assert_eq!(f.get_opt_usize("b"), None);
        let f = Flags::parse(["--trace", "out.jsonl"]);
        assert_eq!(f.get_str("trace"), Some("out.jsonl"));
        assert_eq!(f.get_str("metrics"), None);
    }

    #[test]
    fn bare_flags_are_boolean_switches() {
        let f = Flags::parse(["--no-cache", "--jobs", "4", "--quiet"]);
        assert!(f.get_bool("no-cache"));
        assert!(f.get_bool("quiet"));
        assert!(!f.get_bool("verbose"));
        assert_eq!(f.get_usize("jobs", 1), 4);
        let f = Flags::parse(["--verbose", "false"]);
        assert!(!f.get_bool("verbose"));
    }

    #[test]
    #[should_panic(expected = "expected --flag")]
    fn positional_panics() {
        Flags::parse(["oops"]);
    }

    #[test]
    #[should_panic(expected = "cannot parse")]
    fn bad_number_panics() {
        Flags::parse(["--a", "zzz"]).get_u64("a", 0);
    }
}
